//! The crash-safe attack journal: a durable, versioned, CRC-guarded
//! snapshot of an in-flight attack.
//!
//! A long noisy campaign can be killed at any moment — power cut,
//! OOM, operator Ctrl-C — and restarting a metered attack from
//! scratch wastes every physical configuration already spent. The
//! attack driver persists its complete mutable state here after every
//! completed work item: the [`AttackCheckpoint`] (verified findings
//! plus exact loop cursors), the resilience layer's clock/stats and
//! adaptive-policy controller ([`ResilientSnapshot`]), and the
//! board's opaque fault state
//! ([`crate::oracle::KeystreamOracle::state_snapshot`]). Reloading
//! the journal resumes the run *mid-phase*, replaying the identical
//! query trace an uninterrupted run would have produced.
//!
//! # On-disk format (version 3)
//!
//! Version 2 dropped the resilience layer's 16-byte jitter-RNG state
//! (jitter became a pure function of `(seed, query index, read
//! ordinal)`, so the stats counters pin the resume point by
//! themselves) and added the adaptive-policy flag and controller
//! state. Version 3 appends the side-channel trace count of the
//! encrypted attack path (`sca_traces`, 0 for plaintext runs), so a
//! killed-and-resumed encrypted session replays its SCA accounting
//! bit-identically; version-2 journals still decode (the field
//! defaults to 0). Version-1 journals are refused with
//! [`JournalError::UnsupportedVersion`]-style typed errors rather
//! than being misread.
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"BMODJRNL"
//! 8       2     version (little-endian u16, currently 3)
//! 10      2     reserved (0)
//! 12      4     payload length (little-endian u32)
//! 16      n     payload (the encoded JournalDoc)
//! 16+n    4     CRC-32C over bytes 0..16+n (little-endian u32)
//! ```
//!
//! All integers are little-endian; the payload codec is hand-rolled
//! (no serde in this offline workspace) with length-prefixed
//! sequences and 0/1 option tags. The CRC is the same Castagnoli
//! polynomial the configuration logic uses
//! ([`bitstream::crc::ByteCrc`]).
//!
//! # Atomicity and corruption
//!
//! [`AttackJournal::save`] writes the frame to a sibling temporary
//! file, `sync_all`s it, and renames it over the journal path —
//! readers see either the previous complete journal or the new one,
//! never a mix. Whatever still goes wrong on disk (a torn write
//! leaves a short file; bit rot flips payload or even length-field
//! bits) is detected by the exact-length check and the CRC and
//! surfaces as a typed [`JournalError`] — a corrupt journal can
//! never decode into a silently wrong checkpoint, and no input
//! panics the decoder.

use core::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use bitstream::crc::ByteCrc;
use boolfn::{DualOutputInit, Permutation};

use crate::attack::{
    AttackCheckpoint, AttackPhase, FeedbackLut, LoadMuxHalf, SiteLattice, ZPathLut,
};
use crate::candidates::Catalogue;
use crate::findlut::LutHit;
use crate::resilient::adaptive::MAX_LEVEL;
use crate::resilient::{
    PolicyController, PolicyEvent, ResilienceConfig, ResilientSnapshot, ResilientStats, RetryPolicy,
};

/// The 8-byte file magic.
pub const MAGIC: [u8; 8] = *b"BMODJRNL";

/// The current format version.
pub const VERSION: u16 = 3;

/// Frame header size: magic + version + reserved + payload length.
const HEADER_BYTES: usize = 16;

/// A journal failure. Every corruption mode decodes to a typed error
/// — never a panic, never a silently wrong checkpoint.
#[derive(Debug)]
#[non_exhaustive]
pub enum JournalError {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// The file is shorter than a complete frame (torn write or
    /// truncation).
    TooShort {
        /// Bytes present.
        got: usize,
        /// Bytes a complete frame needs.
        need: usize,
    },
    /// The file does not start with the journal magic.
    BadMagic,
    /// The format version is newer than this build understands.
    UnsupportedVersion(u16),
    /// The file length disagrees with the header's payload length
    /// (torn write, trailing junk, or a flipped length bit).
    LengthMismatch {
        /// Length the header implies.
        expected: u64,
        /// Actual file length.
        actual: u64,
    },
    /// The frame CRC does not match (bit rot / partial overwrite).
    CrcMismatch {
        /// CRC stored in the frame.
        stored: u32,
        /// CRC computed over the frame.
        computed: u32,
    },
    /// The payload is structurally invalid (bad tag, impossible
    /// enum value, inconsistent invariants).
    Malformed(String),
    /// The journal was recorded against a different golden bitstream.
    GoldenMismatch {
        /// Golden-bitstream CRC the journal recorded.
        journalled: u32,
        /// CRC of the bitstream offered for resume.
        found: u32,
    },
    /// A resume override changed a trace-determining resilience
    /// parameter (see [`ResilienceConfig::same_trace`]).
    ConfigMismatch {
        /// The configuration the journal recorded.
        journalled: Box<ResilienceConfig>,
        /// The configuration requested for the resume.
        requested: Box<ResilienceConfig>,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O failure: {e}"),
            JournalError::TooShort { got, need } => {
                write!(f, "journal truncated: {got} bytes, a complete frame needs {need}")
            }
            JournalError::BadMagic => write!(f, "not an attack journal (bad magic)"),
            JournalError::UnsupportedVersion(v) => {
                write!(f, "journal format version {v} is newer than this build (max {VERSION})")
            }
            JournalError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "journal length mismatch: header implies {expected} bytes, file has {actual}"
                )
            }
            JournalError::CrcMismatch { stored, computed } => {
                write!(f, "journal CRC mismatch: stored {stored:#010x}, computed {computed:#010x}")
            }
            JournalError::Malformed(why) => write!(f, "malformed journal payload: {why}"),
            JournalError::GoldenMismatch { journalled, found } => write!(
                f,
                "journal was recorded against a different golden bitstream \
                 (CRC {journalled:#010x}, offered {found:#010x})"
            ),
            JournalError::ConfigMismatch { .. } => write!(
                f,
                "resume configuration changes a trace-determining parameter \
                 (votes, retry policy, seed or the adaptive flag); only budget \
                 and deadline may differ"
            ),
        }
    }
}

impl JournalError {
    /// Whether this failure means the on-disk journal *bytes* are
    /// unusable — a torn write, truncation, bit rot or an
    /// unrecognisable frame — as opposed to a sound journal the caller
    /// is holding wrong (I/O trouble reaching it, a golden or config
    /// mismatch). The fleet's resume policy uses this split: a
    /// corrupt journal is discarded and the session restarts fresh
    /// (trace-identical, because the fault streams are counter-keyed),
    /// while a mismatch is a refusal that must surface.
    #[must_use]
    pub fn is_corruption(&self) -> bool {
        matches!(
            self,
            JournalError::TooShort { .. }
                | JournalError::BadMagic
                | JournalError::UnsupportedVersion(_)
                | JournalError::LengthMismatch { .. }
                | JournalError::CrcMismatch { .. }
                | JournalError::Malformed(_)
        )
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// Everything a resumed run needs, exactly as the killed run left it.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalDoc {
    /// The resilience configuration of the journalled run.
    pub config: ResilienceConfig,
    /// Sub-vector stride (the device-family parameter `d`).
    pub d: usize,
    /// Keystream words per observation (`w`).
    pub words: usize,
    /// Length of the golden bitstream, in bytes.
    pub golden_len: u64,
    /// CRC-32C of the golden bitstream (resume refuses a different
    /// one — the checkpoint's byte offsets would silently corrupt a
    /// different stream).
    pub golden_crc: u32,
    /// The resilience layer's clock/stats and adaptive-policy state.
    pub resilient: ResilientSnapshot,
    /// The board's opaque fault-state snapshot (`None` for stateless
    /// oracles).
    pub oracle_state: Option<Vec<u8>>,
    /// Side-channel power traces collected before `K_E` was recovered
    /// (0 on plaintext runs; format v3).
    pub sca_traces: u32,
    /// The attack's verified findings and loop cursors.
    pub checkpoint: AttackCheckpoint,
}

/// A crash-safe journal file.
#[derive(Debug, Clone)]
pub struct AttackJournal {
    path: PathBuf,
}

impl AttackJournal {
    /// A journal at `path` (the file need not exist yet).
    #[must_use]
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self { path: path.into() }
    }

    /// The journal's on-disk location.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Atomically persists `doc`: the complete frame is written to a
    /// sibling temporary file, synced, and renamed over the journal
    /// path, so a crash mid-save leaves the previous journal intact.
    /// Returns the size of the written frame in bytes (what telemetry
    /// meters as `journal.bytes`).
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on any filesystem failure.
    pub fn save(&self, doc: &JournalDoc) -> Result<usize, JournalError> {
        let frame = encode_frame(doc);
        write_atomic(&self.path, &frame)?;
        Ok(frame.len())
    }

    /// Loads and verifies the journal.
    ///
    /// # Errors
    ///
    /// See [`JournalError`] — every corruption mode (truncation,
    /// trailing junk, flipped bits, structural nonsense) is a typed
    /// error, never a panic.
    pub fn load(&self) -> Result<JournalDoc, JournalError> {
        decode_frame(&fs::read(&self.path)?)
    }

    /// Deletes the journal file (e.g. after the attack completes).
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] if the file exists but cannot be removed.
    pub fn remove(&self) -> Result<(), JournalError> {
        match fs::remove_file(&self.path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }
}

/// Writes `bytes` to `path` atomically: sibling temp file,
/// `sync_all`, rename.
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), JournalError> {
    let tmp = path.with_extension("journal.tmp");
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Frames a payload: magic + version + reserved + length + payload +
/// CRC-32C over everything before the CRC.
pub(crate) fn frame(magic: [u8; 8], version: u16, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_BYTES + payload.len() + 4);
    out.extend_from_slice(&magic);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes());
    out.extend_from_slice(
        &u32::try_from(payload.len()).expect("journal payload < 4 GiB").to_le_bytes(),
    );
    out.extend_from_slice(payload);
    let crc = ByteCrc::of(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Verifies a frame and returns its payload. Every corruption mode
/// (short file, wrong magic, future version, length disagreement,
/// CRC failure) is a typed error.
pub(crate) fn unframe(
    magic: [u8; 8],
    max_version: u16,
    bytes: &[u8],
) -> Result<&[u8], JournalError> {
    if bytes.len() < HEADER_BYTES + 4 {
        return Err(JournalError::TooShort { got: bytes.len(), need: HEADER_BYTES + 4 });
    }
    if bytes[..8] != magic {
        return Err(JournalError::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[8], bytes[9]]);
    if version > max_version {
        return Err(JournalError::UnsupportedVersion(version));
    }
    let payload_len = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]) as usize;
    let expected = (HEADER_BYTES + 4) as u64 + payload_len as u64;
    // Exact-length enforcement: a flipped length bit, a torn tail or
    // appended junk all surface *before* the CRC is even consulted.
    if (bytes.len() as u64) < expected {
        return Err(JournalError::TooShort { got: bytes.len(), need: expected as usize });
    }
    if bytes.len() as u64 != expected {
        return Err(JournalError::LengthMismatch { expected, actual: bytes.len() as u64 });
    }
    let body = &bytes[..HEADER_BYTES + payload_len];
    let stored = u32::from_le_bytes(
        bytes[HEADER_BYTES + payload_len..].try_into().expect("4 CRC bytes (length checked)"),
    );
    let computed = ByteCrc::of(body);
    if stored != computed {
        return Err(JournalError::CrcMismatch { stored, computed });
    }
    Ok(&body[HEADER_BYTES..])
}

/// Encodes a complete frame (header + payload + CRC).
#[must_use]
pub fn encode_frame(doc: &JournalDoc) -> Vec<u8> {
    frame(MAGIC, VERSION, &encode_doc(doc))
}

/// Decodes and verifies a complete frame.
///
/// # Errors
///
/// See [`JournalError`].
pub fn decode_frame(bytes: &[u8]) -> Result<JournalDoc, JournalError> {
    let payload = unframe(MAGIC, VERSION, bytes)?;
    // `unframe` verified the header, so the version field is present.
    let version = u16::from_le_bytes([bytes[8], bytes[9]]);
    let mut dec = Dec::new(payload);
    let doc = decode_doc(&mut dec, version)?;
    if !dec.is_empty() {
        return Err(JournalError::Malformed(format!(
            "{} undecoded payload bytes",
            dec.remaining()
        )));
    }
    Ok(doc)
}

// ---------------------------------------------------------------
// Primitive encoder / decoder
// ---------------------------------------------------------------

pub(crate) struct Enc {
    out: Vec<u8>,
}

impl Enc {
    pub(crate) fn new() -> Self {
        Self { out: Vec::new() }
    }

    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.out
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.out.push(v);
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    pub(crate) fn raw(&mut self, bytes: &[u8]) {
        self.out.extend_from_slice(bytes);
    }

    pub(crate) fn bytes(&mut self, bytes: &[u8]) {
        self.u32(u32::try_from(bytes.len()).expect("journal field < 4 GiB"));
        self.raw(bytes);
    }

    pub(crate) fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    pub(crate) fn opt<T>(&mut self, v: Option<T>, mut f: impl FnMut(&mut Self, T)) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                f(self, x);
            }
        }
    }

    pub(crate) fn seq<T>(&mut self, items: &[T], mut f: impl FnMut(&mut Self, &T)) {
        self.u32(u32::try_from(items.len()).expect("journal sequence < 2^32 items"));
        for item in items {
            f(self, item);
        }
    }
}

pub(crate) struct Dec<'b> {
    rest: &'b [u8],
}

impl<'b> Dec<'b> {
    pub(crate) fn new(rest: &'b [u8]) -> Self {
        Self { rest }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.rest.is_empty()
    }

    pub(crate) fn remaining(&self) -> usize {
        self.rest.len()
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'b [u8], JournalError> {
        if self.rest.len() < n {
            return Err(JournalError::Malformed(format!(
                "payload exhausted: need {n} more bytes, have {}",
                self.rest.len()
            )));
        }
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        Ok(head)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, JournalError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, JournalError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, JournalError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub(crate) fn usize(&mut self) -> Result<usize, JournalError> {
        usize::try_from(self.u64()?)
            .map_err(|_| JournalError::Malformed("64-bit count on a 32-bit host".into()))
    }

    pub(crate) fn bytes(&mut self) -> Result<&'b [u8], JournalError> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    pub(crate) fn str(&mut self) -> Result<&'b str, JournalError> {
        std::str::from_utf8(self.bytes()?)
            .map_err(|_| JournalError::Malformed("non-UTF-8 string".into()))
    }

    pub(crate) fn opt<T>(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<T, JournalError>,
    ) -> Result<Option<T>, JournalError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(f(self)?)),
            t => Err(JournalError::Malformed(format!("option tag {t}"))),
        }
    }

    pub(crate) fn seq<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> Result<T, JournalError>,
    ) -> Result<Vec<T>, JournalError> {
        let n = self.u32()? as usize;
        // An honest length never exceeds the bytes actually present
        // (every element is ≥ 1 byte); a corrupt one must not drive a
        // pre-allocation.
        if n > self.rest.len() {
            return Err(JournalError::Malformed(format!(
                "sequence claims {n} items but only {} payload bytes remain",
                self.rest.len()
            )));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(f(self)?);
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------
// Domain codec
// ---------------------------------------------------------------

fn encode_doc(doc: &JournalDoc) -> Vec<u8> {
    let mut e = Enc::new();
    // Resilience configuration.
    e.u32(doc.config.votes);
    e.u32(doc.config.retry.max_attempts);
    e.u64(doc.config.retry.base_delay_ms);
    e.u64(doc.config.retry.max_delay_ms);
    e.opt(doc.config.budget, Enc::u64);
    e.opt(doc.config.deadline_ms, Enc::u64);
    e.u64(doc.config.seed);
    e.u8(u8::from(doc.config.adaptive));
    // Attack geometry.
    e.usize(doc.d);
    e.usize(doc.words);
    e.u64(doc.golden_len);
    e.u32(doc.golden_crc);
    // Resilience-layer state.
    e.u64(doc.resilient.stats.queries);
    e.u64(doc.resilient.stats.attempts);
    e.u64(doc.resilient.stats.votes_cast);
    e.u64(doc.resilient.stats.transient_errors);
    e.u64(doc.resilient.stats.backoff_ms);
    e.u64(doc.resilient.clock_ms);
    // Adaptive-policy controller state.
    let p = &doc.resilient.policy;
    e.u32(p.ewma_milli);
    e.u8(p.level);
    e.u32(p.cooldown);
    e.seq(&p.events, |e, ev| {
        e.u64(ev.at_query);
        e.u8(ev.from_level);
        e.u8(ev.to_level);
        e.u32(ev.ewma_milli);
    });
    // Board state.
    e.opt(doc.oracle_state.as_deref(), |e, s| e.bytes(s));
    // Encrypted-path accounting (format v3; decoded as 0 from v2).
    e.u32(doc.sca_traces);
    // Checkpoint.
    let c = &doc.checkpoint;
    e.u8(phase_code(c.phase));
    e.u8(c.pass);
    e.usize(c.cursor);
    e.u64(c.oracle_attempts);
    e.u64(c.dead_candidates);
    e.seq(&c.candidate_counts, |e, (name, count)| {
        e.str(name);
        e.usize(*count);
    });
    e.seq(&c.golden_keystream, |e, w| e.u32(*w));
    e.seq(&c.z_pass1, encode_z_lut);
    e.seq(&c.z_luts, encode_z_lut);
    e.seq(&c.feedback_luts, |e, f| {
        e.str(f.shape);
        encode_hit(e, &f.hit);
    });
    e.opt(c.lattice.as_ref(), |e, lat| {
        e.opt(lat.parity, Enc::usize);
        e.usize(lat.modulus);
        e.usize(lat.residue);
        e.usize(lat.d);
        for group in lat.order_of_group {
            e.opt(group, |e, o| e.u8(order_code(o)));
        }
    });
    e.seq(&c.mux_halves, |e, h| {
        encode_hit(e, &h.hit);
        e.u8(h.half);
        e.u8(h.pins.0);
        e.u8(h.pins.1);
    });
    e.seq(&c.stuck_masks, |e, m| e.u32(*m));
    e.out
}

fn decode_doc(d: &mut Dec<'_>, version: u16) -> Result<JournalDoc, JournalError> {
    let config = ResilienceConfig {
        votes: d.u32()?,
        retry: RetryPolicy {
            max_attempts: d.u32()?,
            base_delay_ms: d.u64()?,
            max_delay_ms: d.u64()?,
        },
        budget: d.opt(Dec::u64)?,
        deadline_ms: d.opt(Dec::u64)?,
        seed: d.u64()?,
        adaptive: match d.u8()? {
            0 => false,
            1 => true,
            t => return Err(JournalError::Malformed(format!("adaptive flag {t}"))),
        },
    };
    let stride = d.usize()?;
    if stride == 0 {
        return Err(JournalError::Malformed("zero sub-vector stride".into()));
    }
    let words = d.usize()?;
    let golden_len = d.u64()?;
    let golden_crc = d.u32()?;
    let resilient = ResilientSnapshot {
        stats: ResilientStats {
            queries: d.u64()?,
            attempts: d.u64()?,
            votes_cast: d.u64()?,
            transient_errors: d.u64()?,
            backoff_ms: d.u64()?,
        },
        clock_ms: d.u64()?,
        policy: decode_policy(d)?,
    };
    let oracle_state = d.opt(|d| Ok(d.bytes()?.to_vec()))?;
    // Version 2 journals predate the encrypted path: no traces field.
    let sca_traces = if version >= 3 { d.u32()? } else { 0 };

    // The catalogue owns the 'static shape names the checkpoint
    // references; decoded strings resolve against it.
    let catalogue = Catalogue::full();
    let resolve = |name: &str| -> Result<&'static str, JournalError> {
        catalogue
            .shapes
            .iter()
            .map(|s| s.name)
            .find(|n| *n == name)
            .ok_or_else(|| JournalError::Malformed(format!("unknown catalogue shape {name:?}")))
    };

    let phase = decode_phase(d.u8()?)?;
    let pass = d.u8()?;
    if pass > 1 {
        return Err(JournalError::Malformed(format!("pass {pass} (phases have at most 2)")));
    }
    let cursor = d.usize()?;
    let oracle_attempts = d.u64()?;
    let dead_candidates = d.u64()?;
    let candidate_counts = d.seq(|d| {
        let name = resolve(d.str()?)?;
        Ok((name, d.usize()?))
    })?;
    let golden_keystream = d.seq(Dec::u32)?;
    let z_pass1 = d.seq(decode_z_lut)?;
    let z_luts = d.seq(decode_z_lut)?;
    let feedback_luts = d.seq(|d| {
        let shape = resolve(d.str()?)?;
        Ok(FeedbackLut { shape, hit: decode_hit(d)? })
    })?;
    let lattice = d.opt(|d| {
        let parity = d.opt(Dec::usize)?;
        let modulus = d.usize()?;
        let residue = d.usize()?;
        let lat_d = d.usize()?;
        if modulus == 0 || lat_d == 0 || residue >= modulus || parity.is_some_and(|p| p > 1) {
            return Err(JournalError::Malformed("inconsistent site lattice".into()));
        }
        let mut order_of_group = [None, None];
        for group in &mut order_of_group {
            *group = d.opt(|d| decode_order(d.u8()?))?;
        }
        Ok(SiteLattice { parity, modulus, residue, d: lat_d, order_of_group })
    })?;
    let mux_halves = d.seq(|d| {
        let hit = decode_hit(d)?;
        let half = d.u8()?;
        if half > 1 {
            return Err(JournalError::Malformed(format!("LUT half {half}")));
        }
        Ok(LoadMuxHalf { hit, half, pins: (d.u8()?, d.u8()?) })
    })?;
    let stuck_masks = d.seq(Dec::u32)?;

    // Cross-field invariants a resumed run relies on: a malformed
    // combination must fail here, not panic mid-attack.
    if phase > AttackPhase::CandidateSearch && golden_keystream.len() != words {
        return Err(JournalError::Malformed(format!(
            "{} golden keystream words journalled, run reads {words}",
            golden_keystream.len()
        )));
    }
    if phase > AttackPhase::ZPathVerification && lattice.is_none() {
        return Err(JournalError::Malformed("past phase 2 without an inferred lattice".into()));
    }
    if phase == AttackPhase::PairDisambiguation && stuck_masks.len() != cursor {
        return Err(JournalError::Malformed(format!(
            "{} stuck masks journalled at disambiguation cursor {cursor}",
            stuck_masks.len()
        )));
    }
    if phase > AttackPhase::PairDisambiguation && stuck_masks.len() < 2 {
        return Err(JournalError::Malformed("past phase 5 without both stuck masks".into()));
    }

    Ok(JournalDoc {
        config,
        d: stride,
        words,
        golden_len,
        golden_crc,
        resilient,
        oracle_state,
        sca_traces,
        checkpoint: AttackCheckpoint {
            phase,
            pass,
            cursor,
            oracle_attempts,
            dead_candidates,
            candidate_counts,
            golden_keystream,
            z_pass1,
            z_luts,
            feedback_luts,
            lattice,
            mux_halves,
            stuck_masks,
        },
    })
}

fn decode_policy(d: &mut Dec<'_>) -> Result<PolicyController, JournalError> {
    let ewma_milli = d.u32()?;
    let level = d.u8()?;
    let cooldown = d.u32()?;
    if ewma_milli > 1000 || level > MAX_LEVEL {
        return Err(JournalError::Malformed(format!(
            "policy state out of range (ewma {ewma_milli} milli, level {level})"
        )));
    }
    let events = d.seq(|d| {
        let ev = PolicyEvent {
            at_query: d.u64()?,
            from_level: d.u8()?,
            to_level: d.u8()?,
            ewma_milli: d.u32()?,
        };
        if ev.from_level > MAX_LEVEL || ev.to_level > MAX_LEVEL || ev.from_level == ev.to_level {
            return Err(JournalError::Malformed(format!(
                "policy event {} -> {} at query {}",
                ev.from_level, ev.to_level, ev.at_query
            )));
        }
        Ok(ev)
    })?;
    Ok(PolicyController { ewma_milli, level, cooldown, events })
}

fn encode_hit(e: &mut Enc, hit: &LutHit) {
    e.usize(hit.l);
    e.u8(order_code(hit.order));
    e.bytes(hit.perm.as_slice());
    e.u64(hit.init.init());
}

fn decode_hit(d: &mut Dec<'_>) -> Result<LutHit, JournalError> {
    let l = d.usize()?;
    let order = decode_order(d.u8()?)?;
    let perm = Permutation::from_slice(d.bytes()?)
        .map_err(|_| JournalError::Malformed("invalid input permutation".into()))?;
    let init = DualOutputInit::new(d.u64()?);
    Ok(LutHit { l, order, perm, init })
}

fn encode_z_lut(e: &mut Enc, z: &ZPathLut) {
    encode_hit(e, &z.hit);
    e.u8(z.bit);
    e.opt(z.pair, |e, (a, b)| {
        e.u8(a);
        e.u8(b);
    });
}

fn decode_z_lut(d: &mut Dec<'_>) -> Result<ZPathLut, JournalError> {
    let hit = decode_hit(d)?;
    let bit = d.u8()?;
    if bit > 31 {
        return Err(JournalError::Malformed(format!("keystream bit {bit}")));
    }
    let pair = d.opt(|d| Ok((d.u8()?, d.u8()?)))?;
    Ok(ZPathLut { hit, bit, pair })
}

fn phase_code(phase: AttackPhase) -> u8 {
    match phase {
        AttackPhase::CandidateSearch => 0,
        AttackPhase::ZPathVerification => 1,
        AttackPhase::FeedbackHypothesis => 2,
        AttackPhase::KeyIndependent => 3,
        AttackPhase::PairDisambiguation => 4,
        AttackPhase::KeyExtraction => 5,
    }
}

fn decode_phase(code: u8) -> Result<AttackPhase, JournalError> {
    Ok(match code {
        0 => AttackPhase::CandidateSearch,
        1 => AttackPhase::ZPathVerification,
        2 => AttackPhase::FeedbackHypothesis,
        3 => AttackPhase::KeyIndependent,
        4 => AttackPhase::PairDisambiguation,
        5 => AttackPhase::KeyExtraction,
        c => return Err(JournalError::Malformed(format!("attack phase {c}"))),
    })
}

fn order_code(order: bitstream::SubVectorOrder) -> u8 {
    match order {
        bitstream::SubVectorOrder::SliceL => 0,
        bitstream::SubVectorOrder::SliceM => 1,
    }
}

fn decode_order(code: u8) -> Result<bitstream::SubVectorOrder, JournalError> {
    Ok(match code {
        0 => bitstream::SubVectorOrder::SliceL,
        1 => bitstream::SubVectorOrder::SliceM,
        c => return Err(JournalError::Malformed(format!("sub-vector order {c}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitstream::SubVectorOrder;

    pub(crate) fn sample_doc() -> JournalDoc {
        let hit = LutHit {
            l: 1234,
            order: SubVectorOrder::SliceM,
            perm: Permutation::from_slice(&[2, 0, 1, 3, 4, 5]).expect("valid"),
            init: DualOutputInit::new(0xDEAD_BEEF_0BAD_F00D),
        };
        JournalDoc {
            config: ResilienceConfig::noisy(7).with_budget(8000).with_deadline_ms(90_000),
            d: 101,
            words: 16,
            golden_len: 40_000,
            golden_crc: 0x1234_5678,
            resilient: ResilientSnapshot {
                stats: ResilientStats {
                    queries: 10,
                    attempts: 61,
                    votes_cast: 50,
                    transient_errors: 11,
                    backoff_ms: 420,
                },
                clock_ms: 420,
                policy: PolicyController {
                    ewma_milli: 250,
                    level: 1,
                    cooldown: 5,
                    events: vec![PolicyEvent {
                        at_query: 6,
                        from_level: 0,
                        to_level: 1,
                        ewma_milli: 231,
                    }],
                },
            },
            oracle_state: Some(vec![9u8; 96]),
            sca_traces: 40_000,
            checkpoint: AttackCheckpoint {
                phase: AttackPhase::KeyIndependent,
                pass: 1,
                cursor: 3,
                oracle_attempts: 61,
                dead_candidates: 4,
                candidate_counts: vec![("f2", 40), ("m1b", 2)],
                golden_keystream: (0..16).map(|i| 0xABC0_0000 | i).collect(),
                z_pass1: vec![ZPathLut { hit: hit.clone(), bit: 5, pair: None }],
                z_luts: vec![ZPathLut { hit: hit.clone(), bit: 5, pair: Some((2, 4)) }],
                feedback_luts: vec![FeedbackLut { shape: "f2", hit: hit.clone() }],
                lattice: Some(SiteLattice {
                    parity: Some(0),
                    modulus: 12,
                    residue: 4,
                    d: 101,
                    order_of_group: [Some(SubVectorOrder::SliceL), None],
                }),
                mux_halves: vec![LoadMuxHalf { hit, half: 1, pins: (2, 5) }],
                stuck_masks: vec![0xFFFF_0000, 0x0000_FFFF],
            },
        }
    }

    #[test]
    fn frame_roundtrip_is_identity() {
        let doc = sample_doc();
        let frame = encode_frame(&doc);
        let back = decode_frame(&frame).expect("clean frame decodes");
        assert_eq!(back, doc);
    }

    #[test]
    fn save_load_roundtrip_and_remove() {
        let dir = std::env::temp_dir().join(format!("bitmod-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let journal = AttackJournal::new(dir.join("attack.journal"));
        let doc = sample_doc();
        journal.save(&doc).expect("save");
        assert_eq!(journal.load().expect("load"), doc);
        // Overwrite with a different doc: rename replaces atomically.
        let mut doc2 = doc.clone();
        doc2.checkpoint.cursor = 99;
        journal.save(&doc2).expect("second save");
        assert_eq!(journal.load().expect("reload").checkpoint.cursor, 99);
        journal.remove().expect("remove");
        assert!(matches!(journal.load(), Err(JournalError::Io(_))));
        journal.remove().expect("removing an absent journal is not an error");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_2_frames_still_decode_with_zero_traces() {
        // A v2 payload is a v3 payload minus the 4-byte trace count
        // (the field was appended after `oracle_state`, which is the
        // last field before the checkpoint — so strip it by
        // re-encoding without it). Build the exact v2 bytes by
        // splicing the trace count out of the v3 payload.
        let mut doc = sample_doc();
        doc.sca_traces = 0x1234_5678;
        let v3_payload = encode_doc(&doc);
        // Locate the field: everything after oracle_state is
        // `sca_traces ‖ checkpoint`; re-encode with traces 0xDEAD to
        // find its offset by diffing.
        let mut probe = doc.clone();
        probe.sca_traces = 0xAA55_55AA;
        let probe_payload = encode_doc(&probe);
        let at = v3_payload
            .iter()
            .zip(&probe_payload)
            .position(|(a, b)| a != b)
            .expect("payloads differ at the trace field");
        let mut v2_payload = v3_payload.clone();
        v2_payload.drain(at..at + 4);
        let v2_frame = frame(MAGIC, 2, &v2_payload);
        let back = decode_frame(&v2_frame).expect("v2 journal decodes");
        let mut expected = doc.clone();
        expected.sca_traces = 0;
        assert_eq!(back, expected);
    }

    #[test]
    fn truncation_is_typed_at_every_length() {
        let frame = encode_frame(&sample_doc());
        for cut in [0, 4, 15, 16, 60, frame.len() - 5, frame.len() - 1] {
            let err = decode_frame(&frame[..cut]).expect_err("truncated frame rejected");
            assert!(matches!(err, JournalError::TooShort { .. }), "cut at {cut} gave {err:?}");
        }
    }

    #[test]
    fn trailing_junk_is_a_length_mismatch() {
        let mut frame = encode_frame(&sample_doc());
        frame.push(0xAA);
        assert!(matches!(decode_frame(&frame), Err(JournalError::LengthMismatch { .. })));
    }

    #[test]
    fn bad_magic_and_future_version_are_typed() {
        let mut frame = encode_frame(&sample_doc());
        frame[0] ^= 0xFF;
        assert!(matches!(decode_frame(&frame), Err(JournalError::BadMagic)));

        let mut frame = encode_frame(&sample_doc());
        frame[8] = 0xFF; // version 0x__FF
                         // Re-CRC so only the version field is at fault.
        let crc_at = frame.len() - 4;
        let crc = ByteCrc::of(&frame[..crc_at]);
        frame[crc_at..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(decode_frame(&frame), Err(JournalError::UnsupportedVersion(_))));
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let frame = encode_frame(&sample_doc());
        // Flip one bit at a spread of positions across the frame:
        // header, payload and CRC. Decode must fail with a typed
        // error (which one depends on the field hit) — never succeed,
        // never panic.
        for pos in (0..frame.len()).step_by(7) {
            for bit in [0u8, 5] {
                let mut bad = frame.clone();
                bad[pos] ^= 1 << bit;
                assert!(
                    decode_frame(&bad).is_err(),
                    "flip at byte {pos} bit {bit} went undetected"
                );
            }
        }
    }
}

/// Property tests: the codec is total — every structurally valid
/// document round-trips to itself, and *no* byte-level corruption
/// (truncation, bit flips, garbage) panics the decoder or slips
/// through as a silently wrong checkpoint.
#[cfg(test)]
mod proptests {
    use super::tests::sample_doc;
    use super::*;
    use proptest::prelude::*;

    /// A structurally valid document with the journalled state drawn
    /// at random, respecting the decoder's cross-field invariants
    /// (golden length, lattice presence, stuck-mask counts).
    fn arb_doc() -> impl Strategy<Value = JournalDoc> {
        (
            (0u8..6, 0u8..2, 0usize..8, any::<u64>(), any::<u64>(), any::<u64>()),
            (1usize..48, any::<u32>(), any::<bool>(), 0usize..120, 1u32..12, any::<bool>()),
        )
            .prop_map(|(a, b)| {
                let (phase_code, pass, cursor, attempts, clock, rng) = a;
                let (words, golden_crc, with_oracle, oracle_len, modulus, with_deadline) = b;
                let phase = match phase_code {
                    0 => AttackPhase::CandidateSearch,
                    1 => AttackPhase::ZPathVerification,
                    2 => AttackPhase::FeedbackHypothesis,
                    3 => AttackPhase::KeyIndependent,
                    4 => AttackPhase::PairDisambiguation,
                    _ => AttackPhase::KeyExtraction,
                };
                let mut doc = sample_doc();
                doc.checkpoint.phase = phase;
                doc.checkpoint.pass = pass;
                doc.checkpoint.cursor = cursor;
                doc.checkpoint.oracle_attempts = attempts;
                doc.checkpoint.dead_candidates = attempts / 7;
                doc.words = words;
                doc.checkpoint.golden_keystream =
                    (0..words as u32).map(|i| i.wrapping_mul(0x9E37)).collect();
                doc.golden_crc = golden_crc;
                doc.golden_len = u64::from(golden_crc) + 1;
                doc.resilient.clock_ms = clock;
                doc.resilient.policy = PolicyController {
                    ewma_milli: (rng % 1001) as u32,
                    level: (rng % (u64::from(MAX_LEVEL) + 1)) as u8,
                    cooldown: (clock % 9) as u32,
                    events: (0..(rng % 4))
                        .map(|i| PolicyEvent {
                            at_query: clock.wrapping_add(i),
                            from_level: (i % 2) as u8,
                            to_level: (i % 2) as u8 + 1,
                            ewma_milli: (rng % 1001) as u32,
                        })
                        .collect(),
                };
                doc.oracle_state = with_oracle.then(|| vec![0xA5u8; oracle_len]);
                if let Some(lattice) = &mut doc.checkpoint.lattice {
                    lattice.modulus = modulus as usize;
                    lattice.residue = (golden_crc as usize) % modulus as usize;
                }
                doc.config = if with_deadline {
                    ResilienceConfig::noisy(rng).with_deadline_ms(clock | 1)
                } else {
                    ResilienceConfig::noisy(rng).with_budget(attempts | 1)
                };
                if rng % 2 == 1 {
                    doc.config = doc.config.with_adaptive();
                }
                // Honour the decoder's cross-field invariants.
                doc.checkpoint.stuck_masks = match phase {
                    AttackPhase::PairDisambiguation => vec![rng as u32; cursor],
                    p if p > AttackPhase::PairDisambiguation => vec![rng as u32; 2 + cursor],
                    _ => vec![rng as u32; cursor % 3],
                };
                doc
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn every_valid_document_round_trips_to_itself(doc in arb_doc()) {
            let frame = encode_frame(&doc);
            let back = decode_frame(&frame);
            prop_assert!(back.is_ok(), "clean frame failed to decode: {:?}", back.err());
            prop_assert_eq!(back.expect("checked"), doc);
        }

        #[test]
        fn arbitrary_truncation_is_a_typed_error_never_a_panic(
            doc in arb_doc(),
            cut_salt in any::<u64>(),
        ) {
            let frame = encode_frame(&doc);
            let cut = (cut_salt as usize) % frame.len();
            match decode_frame(&frame[..cut]) {
                Err(JournalError::TooShort { .. }) => {}
                other => prop_assert!(false, "cut at {cut} of {}: {other:?}", frame.len()),
            }
        }

        #[test]
        fn arbitrary_bit_mutation_is_detected_never_a_panic(
            doc in arb_doc(),
            pos_salt in any::<u64>(),
            bit in 0u32..8,
            second in any::<bool>(),
        ) {
            // One or two flipped bits anywhere in the frame: CRC-32C
            // detects all 1-3 bit errors at these frame lengths, so
            // decode must return a typed error (which one depends on
            // the field hit) — and must never panic.
            let mut frame = encode_frame(&doc);
            let pos = (pos_salt as usize) % frame.len();
            frame[pos] ^= 1 << bit;
            if second {
                let pos2 = (pos_salt >> 32) as usize % frame.len();
                let bit2 = (7 - bit) % 8;
                if pos2 != pos || bit2 != bit {
                    frame[pos2] ^= 1 << bit2;
                }
            }
            prop_assert!(
                decode_frame(&frame).is_err(),
                "mutation at byte {pos} bit {bit} went undetected"
            );
        }

        #[test]
        fn random_garbage_never_panics_the_decoder(
            bytes in prop::collection::vec(any::<u8>(), 0..256),
        ) {
            // Totality: any byte string decodes to Ok or a typed
            // error. (An accidental Ok would need a forged magic,
            // version, length *and* CRC — not reachable from 256
            // random bytes.)
            prop_assert!(decode_frame(&bytes).is_err());
        }
    }
}
