//! An untargeted bitstream-fault-injection baseline, after
//! Swierczynski et al.'s *BiFI* (reference \[23\] of the paper:
//! "Bitstream Fault Injections (BiFI) — Automated Fault Attacks
//! against SRAM-based FPGAs").
//!
//! BiFI needs no reverse engineering: it blindly mutates one LUT at a
//! time (constant-0, constant-1, or inverted truth table), reloads,
//! and checks whether the faulted output leaks the key. It works on
//! ciphers where a *single* LUT fault collapses the algorithm (e.g.
//! zeroing an AES S-box byte). The paper's point — demonstrated
//! quantitatively by this module — is that SNOW 3G does *not* fall to
//! single-LUT faults: linearising the cipher needs a *coordinated*
//! 64-LUT modification (32 keystream-path + 32 feedback-path), which
//! requires the targeted search-and-verify machinery of [`crate::attack`].

use core::fmt;

use boolfn::DualOutputInit;

use bitstream::Bitstream;
use snow3g::recover::recover_key;
use snow3g::Key;

use crate::edit::{CrcStrategy, EditSession};
use crate::findlut::LutHit;
use crate::oracle::{KeystreamOracle, OracleError};

/// A single-LUT mutation rule.
///
/// # Example
///
/// ```
/// use bitmod::bifi::MutationRule;
/// use boolfn::DualOutputInit;
///
/// let init = DualOutputInit::new(0xFF00);
/// assert_eq!(MutationRule::Invert.apply(init).init(), !0xFF00u64);
/// assert_eq!(MutationRule::Const0.apply(init).init(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MutationRule {
    /// Replace the LUT content with all zeros.
    Const0,
    /// Replace the LUT content with all ones.
    Const1,
    /// Invert every truth-table bit.
    Invert,
}

impl MutationRule {
    /// All rules, in the order BiFI applies them.
    #[must_use]
    pub fn all() -> [MutationRule; 3] {
        [MutationRule::Const0, MutationRule::Const1, MutationRule::Invert]
    }

    /// Applies the rule to an INIT value.
    #[must_use]
    pub fn apply(self, init: DualOutputInit) -> DualOutputInit {
        match self {
            MutationRule::Const0 => DualOutputInit::new(0),
            MutationRule::Const1 => DualOutputInit::new(u64::MAX),
            MutationRule::Invert => DualOutputInit::new(!init.init()),
        }
    }
}

impl fmt::Display for MutationRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MutationRule::Const0 => write!(f, "const-0"),
            MutationRule::Const1 => write!(f, "const-1"),
            MutationRule::Invert => write!(f, "invert"),
        }
    }
}

/// Configuration of a BiFI campaign.
#[derive(Debug, Clone)]
pub struct BifiConfig {
    /// Keystream words observed per trial.
    pub words: usize,
    /// Cap on the number of (position, rule) trials; `None` runs the
    /// full campaign.
    pub max_trials: Option<usize>,
    /// Mutation rules to apply.
    pub rules: Vec<MutationRule>,
}

impl Default for BifiConfig {
    fn default() -> Self {
        Self { words: 16, max_trials: None, rules: MutationRule::all().to_vec() }
    }
}

/// The outcome of a BiFI campaign.
#[derive(Debug, Clone, Default)]
pub struct BifiReport {
    /// Total (position, rule) mutations tried.
    pub trials: usize,
    /// Mutations whose keystream differed from the golden one.
    pub keystream_changed: usize,
    /// Mutations with no observable effect (dead or don't-care bits).
    pub keystream_unchanged: usize,
    /// Mutations the device refused (should be zero: the CRC is
    /// repaired per trial).
    pub rejected: usize,
    /// Keys recovered by interpreting a faulty keystream as an
    /// exposed LFSR state. For SNOW 3G this stays empty: no single
    /// LUT fault linearises the cipher.
    pub recovered_keys: Vec<(usize, MutationRule, Key)>,
}

/// Enumerates the non-empty LUT slots of the payload: 2-byte-aligned
/// positions whose decoded INIT is non-zero under some sub-vector
/// order. (BiFI tooling knows LUT slot granularity but nothing about
/// the design.)
#[must_use]
pub fn candidate_positions(payload: &[u8], d: usize) -> Vec<LutHit> {
    let mut out = Vec::new();
    if payload.len() < 3 * d + 2 {
        return out;
    }
    let last = payload.len() - (3 * d + 2);
    for l in (0..=last).step_by(2) {
        for order in bitstream::SubVectorOrder::both() {
            let mut stored = [0u16; 4];
            for (j, sv) in stored.iter_mut().enumerate() {
                let at = l + j * d;
                *sv = u16::from_le_bytes([payload[at], payload[at + 1]]);
            }
            let init = bitstream::codec::decode(stored, order);
            if init.init() != 0 {
                out.push(LutHit { l, order, perm: boolfn::Permutation::identity(6), init });
                break;
            }
        }
    }
    out
}

/// Runs a BiFI campaign against a device.
///
/// # Errors
///
/// Propagates oracle errors other than configuration rejections
/// (rejections are counted in the report).
pub fn run(
    oracle: &dyn KeystreamOracle,
    golden: &Bitstream,
    config: &BifiConfig,
) -> Result<BifiReport, OracleError> {
    let range =
        golden.fdri_data_range().ok_or_else(|| OracleError::Rejected("no FDRI payload".into()))?;
    let payload = &golden.as_bytes()[range];
    let d = bitstream::FRAME_BYTES;
    let golden_keystream = oracle.keystream(golden, config.words)?;

    let mut report = BifiReport::default();
    'campaign: for hit in candidate_positions(payload, d) {
        for &rule in &config.rules {
            if let Some(max) = config.max_trials {
                if report.trials >= max {
                    break 'campaign;
                }
            }
            report.trials += 1;
            let mut session = EditSession::new(golden, d);
            session.write_init(&hit, rule.apply(hit.init));
            let bs = session.finish(CrcStrategy::Recompute);
            let z = match oracle.keystream(&bs, config.words) {
                Ok(z) => z,
                Err(OracleError::Rejected(_)) => {
                    report.rejected += 1;
                    continue;
                }
                // The untargeted campaign has no resilience layer;
                // a transiently failed trial is simply abandoned.
                Err(e) if e.is_transient() => {
                    report.rejected += 1;
                    continue;
                }
                Err(e) => return Err(e),
            };
            if z == golden_keystream {
                report.keystream_unchanged += 1;
                continue;
            }
            report.keystream_changed += 1;
            // The BiFI success criterion for a stream cipher: does
            // the faulty keystream expose a recoverable LFSR state?
            if let Ok(secret) = recover_key(&z) {
                report.recovered_keys.push((hit.l, rule, secret.key));
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitstream::{codec, BitstreamBuilder, FrameData, LutLocation, SubVectorOrder};

    #[test]
    fn rules_apply() {
        let init = DualOutputInit::new(0x1234_5678_9ABC_DEF0);
        assert_eq!(MutationRule::Const0.apply(init).init(), 0);
        assert_eq!(MutationRule::Const1.apply(init).init(), u64::MAX);
        assert_eq!(MutationRule::Invert.apply(init).init(), !0x1234_5678_9ABC_DEF0);
    }

    #[test]
    fn candidate_positions_find_planted_luts() {
        let mut frames = FrameData::new(6);
        let loc = LutLocation { l: 40, d: bitstream::FRAME_BYTES, order: SubVectorOrder::SliceL };
        codec::write_lut(frames.as_mut_bytes(), loc, DualOutputInit::new(0xDEAD));
        let bs = BitstreamBuilder::new(frames).build();
        let range = bs.fdri_data_range().unwrap();
        let positions = candidate_positions(&bs.as_bytes()[range], bitstream::FRAME_BYTES);
        assert!(positions.iter().any(|h| h.l == 40));
        // Odd positions are never proposed.
        assert!(positions.iter().all(|h| h.l % 2 == 0));
    }

    #[test]
    fn empty_payload_yields_no_candidates() {
        let positions =
            candidate_positions(&[0u8; 4 * bitstream::FRAME_BYTES], bitstream::FRAME_BYTES);
        assert!(positions.is_empty());
    }
}
