//! The candidate-function catalogue.
//!
//! Step 2 of the paper's strategy (Section IV-B) guesses which
//! k-variable Boolean function implements the target node `v` in the
//! mapped netlist, based on the cipher's block diagram and the LUT
//! architecture. Table II lists the paper's 21 guesses for their
//! Vivado-mapped VHDL implementation; this module carries those rows
//! *and* the cover shapes produced by this repository's
//! implementation flow (see `techmap`'s `snow3g_mapping` tests for
//! the frozen ground truth), each annotated with its stuck-at-0 fault
//! semantics:
//!
//! * `alpha` — the truth table with `v := 0`, used in the final key
//!   extraction configuration (`γ(K, IV)` loading preserved);
//! * `keyindep` — the truth table with `v := 0` *and* the `γ` load
//!   constant forced to 0, used in the key-independent configuration
//!   of Section VI-D (`α₁ + β`);
//! * `variants` — for keystream-path shapes, the per-pair `α₂` forms
//!   used to disambiguate which LUT inputs feed `v`.

use boolfn::expr::{var, Expr};
use boolfn::TruthTable;

/// What part of the design a shape belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// Covers `v` on the keystream (z_t) path — the paper's `LUT₁`.
    ZPath,
    /// Covers `v` on the LFSR feedback path — the paper's
    /// `LUT₂`/`LUT₃`.
    Feedback,
    /// An `s₁₅` load-multiplexer shape that does *not* contain `v`
    /// (the outer-byte covers of our flow); edited only by `β`.
    LoadMux,
    /// A Table II row kept for candidate counting only.
    TableRow,
}

/// A pair-disambiguation variant for keystream-path shapes: dropping
/// the XOR pair `(i, j)` (1-based pins of the *candidate* function)
/// yields `faulted`.
#[derive(Debug, Clone)]
pub struct PairVariant {
    /// The hypothesised inputs of `v`.
    pub pair: (u8, u8),
    /// The candidate function with that pair's XOR forced to 0.
    pub faulted: TruthTable,
}

/// A candidate cover shape.
#[derive(Debug, Clone)]
pub struct Shape {
    /// Short identifier (e.g. `"f2"`, `"m0b"`).
    pub name: &'static str,
    /// Human-readable formula.
    pub formula: String,
    /// The candidate function (always extended to 6 variables).
    pub truth: TruthTable,
    /// Design role.
    pub role: Role,
    /// `v := 0` form for the final `α` configuration.
    pub alpha: Option<TruthTable>,
    /// `v := 0` and load-0 form for the key-independent
    /// configuration.
    pub keyindep: Option<TruthTable>,
    /// `α₂` pair variants (keystream path only).
    pub variants: Vec<PairVariant>,
}

impl Shape {
    fn new(name: &'static str, role: Role, e: &Expr) -> Self {
        Self {
            name,
            formula: format!("{e}"),
            truth: e.truth_table(6),
            role,
            alpha: None,
            keyindep: None,
            variants: Vec::new(),
        }
    }

    fn with_alpha(mut self, e: &Expr) -> Self {
        self.alpha = Some(e.truth_table(6));
        self
    }

    fn with_keyindep(mut self, e: &Expr) -> Self {
        self.keyindep = Some(e.truth_table(6));
        self
    }

    fn with_variant(mut self, pair: (u8, u8), e: &Expr) -> Self {
        self.variants.push(PairVariant { pair, faulted: e.truth_table(6) });
        self
    }
}

/// A set of candidate shapes.
///
/// # Example
///
/// ```
/// use bitmod::Catalogue;
///
/// let cat = Catalogue::full();
/// let f2 = cat.shape("f2").expect("the keystream-path cover");
/// assert_eq!(f2.variants.len(), 3, "three α₂ pair hypotheses");
/// assert_eq!(cat.shape("f19").unwrap().variants.len(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct Catalogue {
    /// The shapes, in search priority order.
    pub shapes: Vec<Shape>,
}

impl Catalogue {
    /// The paper's Table II rows `f1..f21`, verbatim.
    #[must_use]
    pub fn paper_table2() -> Self {
        let v = || var(1) ^ var(2);
        let x3 = || var(1) ^ var(2) ^ var(3);
        let rows: Vec<(&'static str, Expr)> = vec![
            ("f1", x3() & var(4) & var(5) & var(6)),
            ("f2", x3() & var(4) & var(5) & !var(6)),
            ("f3", x3() & var(4) & !var(5) & !var(6)),
            ("f4", x3() & !var(4) & !var(5) & !var(6)),
            ("f5", x3() & !var(4) & !var(5)),
            ("f6", x3() & !var(4) & var(5)),
            ("f7", x3() & var(4) & var(5)),
            ("f8", (v() & !var(3) & var(4) & var(5)) ^ var(6)),
            ("f9", (v() & !var(3) & !var(4) & var(5)) ^ var(6)),
            ("f10", (v() & !var(3) & !var(4) & !var(5)) ^ var(6)),
            ("f11", (v() & var(3) & var(4) & var(5)) ^ var(6)),
            ("f12", (v() & var(4) & var(5)) ^ (var(3) & var(6))),
            ("f13", (v() & var(4) & var(5)) ^ (!var(3) & var(6))),
            ("f14", (v() & var(4) & !var(5)) ^ (var(3) & var(6))),
            ("f15", (v() & var(4) & !var(5)) ^ (!var(3) & var(6))),
            ("f16", (v() & !var(4) & !var(5)) ^ (var(3) & var(6))),
            ("f17", (v() & !var(4) & !var(5)) ^ (!var(3) & var(6))),
            ("f18", (v() & var(4)) ^ (var(3) & var(6))),
            ("f19", (v() & !var(4)) ^ (var(3) & var(6))),
            ("f20", (v() & var(4)) ^ (!var(3) & var(6))),
            ("f21", (v() & !var(4)) ^ (!var(3) & var(6))),
        ];
        Self { shapes: rows.into_iter().map(|(n, e)| Shape::new(n, Role::TableRow, &e)).collect() }
    }

    /// The cover shapes of this repository's implementation flow,
    /// with fault semantics (the frozen ground truth of the
    /// `techmap` mapping tests — but usable blindly: the attack
    /// verifies every hit through the keystream oracle).
    #[must_use]
    pub fn implementation_family() -> Self {
        let v = || var(1) ^ var(2);
        let x3 = || var(1) ^ var(2) ^ var(3);
        let x4 = || var(1) ^ var(2) ^ var(3) ^ var(4);
        let x5 = || var(2) ^ var(3) ^ var(4) ^ var(5) ^ var(6);
        let zero = Expr::Const(false);

        // LUT1: z path, f2 = (a1⊕a2⊕a3)·a4·a5·ā6 with the three α₂
        // pair variants of Section VI-D.
        let f2 = Shape::new("f2", Role::ZPath, &(x3() & var(4) & var(5) & !var(6)))
            .with_variant((1, 2), &(var(3) & var(4) & var(5) & !var(6)))
            .with_variant((1, 3), &(var(2) & var(4) & var(5) & !var(6)))
            .with_variant((2, 3), &(var(1) & var(4) & var(5) & !var(6)));

        // Feedback middle bits: the s15 load mux folded with the key
        // constant (γ bit 0 / 1) — the analog of the paper's
        // f19-style gated-linear shapes.
        let m0_full = !var(3) & ((v() & var(4) & var(5)) ^ var(6));
        let m0 = Shape::new("m0", Role::Feedback, &m0_full)
            .with_alpha(&(!var(3) & var(6)))
            .with_keyindep(&(!var(3) & var(6)));
        let m0b_full = var(3) | ((v() & var(4) & var(5)) ^ var(6));
        let m0b = Shape::new("m0b", Role::Feedback, &m0b_full)
            .with_alpha(&(var(3) | var(6)))
            .with_keyindep(&(!var(3) & var(6)));

        // Feedback outer bits: the gated XOR covers rooted at the
        // W-gating AND chain. Forcing v = 0 zeroes the whole LUT.
        let g4 = Shape::new("g4", Role::Feedback, &(x4() & var(5) & var(6)))
            .with_alpha(&zero)
            .with_keyindep(&zero);
        let f7 = Shape::new("f7", Role::Feedback, &(x3() & var(4) & var(5)))
            .with_alpha(&zero)
            .with_keyindep(&zero);
        let g3c = Shape::new(
            "g3c",
            Role::Feedback,
            &((var(1) ^ (var(2) & var(3)) ^ var(4)) & var(5) & var(6)),
        )
        .with_alpha(&zero)
        .with_keyindep(&zero);

        // s15 outer-bit load-mux covers (lin absorbed, v NOT inside):
        // only the γ = 1 form needs a β edit (load 0 instead of 1).
        let m1 = Shape::new("m1", Role::LoadMux, &(!var(1) & x5()));
        let m1b =
            Shape::new("m1b", Role::LoadMux, &(var(1) | x5())).with_keyindep(&(!var(1) & x5()));

        Self { shapes: vec![f2, m0, m0b, g4, f7, g3c, m1, m1b] }
    }

    /// The full catalogue: implementation family first (search
    /// priority), then the remaining Table II rows for candidate
    /// counting.
    #[must_use]
    pub fn full() -> Self {
        let mut shapes = Self::implementation_family().shapes;
        for row in Self::paper_table2().shapes {
            if !shapes.iter().any(|s| s.name == row.name) {
                shapes.push(row);
            }
        }
        Self { shapes }
    }

    /// Looks a shape up by name.
    #[must_use]
    pub fn shape(&self, name: &str) -> Option<&Shape> {
        self.shapes.iter().find(|s| s.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boolfn::pclass;

    #[test]
    fn paper_rows_count() {
        assert_eq!(Catalogue::paper_table2().shapes.len(), 21);
    }

    #[test]
    fn all_shapes_distinct_p_classes() {
        // The whole point of a candidate table: rows must be
        // distinguishable by the search.
        let cat = Catalogue::full();
        for (i, a) in cat.shapes.iter().enumerate() {
            for b in &cat.shapes[i + 1..] {
                assert!(
                    !pclass::equivalent(a.truth, b.truth),
                    "{} and {} are P-equivalent",
                    a.name,
                    b.name
                );
            }
        }
    }

    #[test]
    fn f2_variants_drop_one_xor_input() {
        let cat = Catalogue::implementation_family();
        let f2 = cat.shape("f2").unwrap();
        assert_eq!(f2.variants.len(), 3);
        for vnt in &f2.variants {
            // The variant no longer depends on the dropped pair.
            assert!(!vnt.faulted.depends_on(vnt.pair.0));
            assert!(!vnt.faulted.depends_on(vnt.pair.1));
            // And it agrees with f2 wherever the pair XOR is 0.
            for input in 0..64u8 {
                let pa = (input >> (vnt.pair.0 - 1)) & 1;
                let pb = (input >> (vnt.pair.1 - 1)) & 1;
                if pa == pb {
                    assert_eq!(
                        vnt.faulted
                            .eval(input & !(1 << (vnt.pair.0 - 1)) & !(1 << (vnt.pair.1 - 1))),
                        f2.truth.eval(input & !(1 << (vnt.pair.0 - 1)) & !(1 << (vnt.pair.1 - 1))),
                    );
                }
            }
        }
    }

    #[test]
    fn m0b_keyindep_matches_m0_alpha() {
        // Load-0 + v = 0 collapses both γ variants to the same form.
        let cat = Catalogue::implementation_family();
        let m0 = cat.shape("m0").unwrap();
        let m0b = cat.shape("m0b").unwrap();
        assert_eq!(m0.keyindep, m0b.keyindep);
        assert_ne!(m0b.alpha, m0b.keyindep, "α preserves the γ = 1 load");
    }

    #[test]
    fn feedback_gated_shapes_fault_to_zero() {
        let cat = Catalogue::implementation_family();
        for name in ["g4", "f7", "g3c"] {
            let s = cat.shape(name).unwrap();
            assert_eq!(s.alpha, Some(TruthTable::zero(6)), "{name}");
        }
    }

    #[test]
    fn m1b_beta_form_is_m1() {
        let cat = Catalogue::implementation_family();
        let m1 = cat.shape("m1").unwrap();
        let m1b = cat.shape("m1b").unwrap();
        assert_eq!(m1b.keyindep, Some(m1.truth));
        assert!(m1.keyindep.is_none(), "γ = 0 already loads 0");
    }

    #[test]
    fn full_catalogue_merges_without_duplicates() {
        let cat = Catalogue::full();
        // f2 and f7 appear once (implementation family wins).
        assert_eq!(cat.shapes.iter().filter(|s| s.name == "f2").count(), 1);
        assert_eq!(cat.shapes.iter().filter(|s| s.name == "f7").count(), 1);
        assert_eq!(cat.shapes.len(), 8 + 21 - 2);
        assert!(cat.shape("f2").unwrap().variants.len() == 3, "family f2 kept");
    }
}
