//! Attack-phase telemetry: spans, counters, histograms and an NDJSON
//! event sink.
//!
//! The paper's evaluation is an *effort* story — candidate counts per
//! round, keystream queries per phase, overhead of the countermeasure
//! — yet the attack pipeline only ever reported totals. This module
//! records where the work actually goes:
//!
//! * **hierarchical spans** over the attack phases (candidate search,
//!   z-path verification, feedback recovery, key-independent
//!   configuration / lattice inference, pair disambiguation, key
//!   extraction), each closing with the oracle-effort delta it
//!   consumed;
//! * **counters and histograms** hung at the oracle chokepoints
//!   ([`crate::resilient::ResilientOracle`] and
//!   [`crate::campaign::SupervisedOracle`]): bitstream loads,
//!   keystream reads, retries, virtual-clock backoff, journal writes,
//!   and board faults observed vs. injected;
//! * an **NDJSON event sink** (`bitmod attack --trace out.ndjson`)
//!   plus an end-of-run [`Telemetry::summary_table`].
//!
//! ## Inertness
//!
//! The recorder is *provably inert*: it never draws from any RNG,
//! never advances the virtual clock, and never changes the order or
//! count of oracle queries. It only reads counter deltas that the
//! instrumented code already maintains and writes to its own sink.
//! An instrumented run therefore produces a bit-identical query trace
//! — same keys, same stats, same journal bytes — as an uninstrumented
//! one (pinned by the differential test in `tests/telemetry.rs`).
//! Wall-clock span durations appear **only** in the NDJSON events,
//! never in [`Metrics`], so the metrics map itself is deterministic.
//!
//! ## Merge algebra
//!
//! [`Metrics::merge`] is associative and commutative (counters add,
//! histogram buckets add bucket-wise, min/max combine by min/max), so
//! campaign cells can be rolled up in any split order — the property
//! the proptests at the bottom of this file pin.

use core::fmt;
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Well-known metric names. Free-form names are allowed everywhere;
/// these constants are the ones the built-in instrumentation emits.
pub mod names {
    /// Logical oracle queries (majority-voted reads).
    pub const ORACLE_QUERIES: &str = "oracle.queries";
    /// Physical bitstream loads (what the budget caps).
    pub const ORACLE_LOADS: &str = "oracle.loads";
    /// Successful full keystream reads (majority-vote ballots).
    pub const ORACLE_READS: &str = "oracle.reads";
    /// Transient faults observed and absorbed by retry.
    pub const ORACLE_RETRIES: &str = "oracle.retries";
    /// Virtual milliseconds spent backing off.
    pub const ORACLE_BACKOFF_MS: &str = "oracle.backoff_ms";
    /// Histogram: physical loads per logical query.
    pub const ORACLE_LOADS_PER_QUERY: &str = "oracle.loads_per_query";
    /// Histogram: backoff milliseconds per logical query.
    pub const ORACLE_BACKOFF_PER_QUERY: &str = "oracle.backoff_ms_per_query";
    /// Crash-safe journal writes.
    pub const JOURNAL_WRITES: &str = "journal.writes";
    /// Bytes written to the crash-safe journal (cumulative).
    pub const JOURNAL_BYTES: &str = "journal.bytes";
    /// Histogram: bytes per journal write.
    pub const JOURNAL_BYTES_PER_WRITE: &str = "journal.bytes_per_write";
    /// Keystream calls seen by the campaign's supervised oracle.
    pub const SUPERVISED_CALLS: &str = "supervised.keystream_calls";
    /// Queries rejected by cancellation or a cell deadline.
    pub const SUPERVISED_REJECTIONS: &str = "supervised.rejections";
    /// Board: load attempts the (simulated) device saw.
    pub const BOARD_LOADS: &str = "board.loads_attempted";
    /// Board: transient load failures injected.
    pub const BOARD_TRANSIENT: &str = "board.faults.transient_load";
    /// Board: configuration timeouts injected.
    pub const BOARD_TIMEOUTS: &str = "board.faults.timeout";
    /// Board: truncated keystream reads injected.
    pub const BOARD_TRUNCATED: &str = "board.faults.truncated_read";
    /// Board: keystream bits flipped by glitch injection.
    pub const BOARD_BITS_FLIPPED: &str = "board.faults.bits_flipped";
    /// Board: total faults injected across all classes.
    pub const BOARD_INJECTED: &str = "board.faults.injected";
    /// Board: faults the board injected that the oracle layer never
    /// observed as retries — the observed-vs-injected gap. Truncations
    /// surface as short reads (observed), but bit glitches only show
    /// up when a majority ballot is outvoted, so a persistent gap on a
    /// glitchy board means the vote count is too low to *see* the
    /// noise it is absorbing.
    pub const BOARD_FAULT_GAP: &str = "board.faults.unobserved_gap";
    /// Adaptive policy: escalation transitions.
    pub const POLICY_ESCALATIONS: &str = "policy.escalations";
    /// Adaptive policy: de-escalation transitions.
    pub const POLICY_DEESCALATIONS: &str = "policy.de_escalations";
    /// Histogram: policy level after each transition.
    pub const POLICY_LEVEL: &str = "policy.level";
    /// FINDLUT candidates found (phase 1, all shapes).
    pub const SCAN_CANDIDATES: &str = "scan.candidates";
    /// Batched oracle calls issued (each covers many candidates).
    pub const ORACLE_BATCHES: &str = "oracle.batches";
    /// Logical queries served through the batched path.
    pub const ORACLE_BATCHED_QUERIES: &str = "oracle.batched_queries";
    /// Histogram: candidates per batched oracle call.
    pub const ORACLE_BATCH_SIZE: &str = "oracle.batch_size";
    /// Histogram: percent of gang lanes occupied per batched call
    /// (`100 × items / (gang passes × lanes per pass)`).
    pub const ORACLE_LANE_UTILISATION_PCT: &str = "oracle.lane_utilisation_pct";
    /// Fleet: sessions admitted to the scheduler.
    pub const FLEET_SESSIONS_SUBMITTED: &str = "fleet.sessions_submitted";
    /// Fleet: histogram of concurrently-running sessions, observed at
    /// every session start and finish.
    pub const FLEET_SESSIONS_ACTIVE: &str = "fleet.sessions_active";
    /// Fleet: sessions driven to a terminal state.
    pub const FLEET_SESSIONS_DONE: &str = "fleet.sessions_done";
    /// Fleet: sessions that changed hands — stolen from a busy or
    /// killed worker's queue.
    pub const FLEET_STEAL_COUNT: &str = "fleet.steal_count";
    /// Fleet: sessions that started from an existing journal (a boot
    /// recovery or a kill-and-steal resume).
    pub const FLEET_SESSIONS_RESUMED: &str = "fleet.sessions_resumed";
    /// Fleet: histogram of per-worker busy-time percentages, observed
    /// once per worker at shutdown.
    pub const FLEET_WORKER_UTILISATION_PCT: &str = "fleet.worker_utilisation_pct";
    /// Fleet: workers that exited after a kill switch.
    pub const FLEET_WORKERS_KILLED: &str = "fleet.workers_killed";
    /// Fleet: boards quarantined after failing a health check.
    pub const FLEET_BOARDS_QUARANTINED: &str = "fleet.boards_quarantined";
    /// Fleet: sessions migrated off a quarantined board to a healthy
    /// peer.
    pub const FLEET_SESSIONS_MIGRATED: &str = "fleet.sessions_migrated";
    /// Fleet: quarantined boards that answered the boot re-probe and
    /// rejoined the pool.
    pub const FLEET_BOARDS_REPROBED: &str = "fleet.boards_reprobed";
    /// Fleet wire: connections the server accepted.
    pub const FLEET_NET_CONNECTIONS: &str = "fleet.net.connections";
    /// Fleet wire: request frames rejected before dispatch — torn
    /// (unterminated) lines, oversized lines, invalid UTF-8, unknown
    /// verbs and malformed specs all count here.
    pub const FLEET_NET_FRAMES_REJECTED: &str = "fleet.net.frames_rejected";
    /// Fleet wire: reconnect-shaped arrivals — deduplicated submit
    /// retries and cursor-resumed tails, the server-side shadow of
    /// client reconnect loops.
    pub const FLEET_NET_RECONNECTS: &str = "fleet.net.reconnects";
    /// Fleet wire: submit retries answered with an existing session id
    /// via the idempotency token instead of a double enqueue.
    pub const FLEET_NET_SUBMIT_DEDUPED: &str = "fleet.net.submit_deduped";
    /// Fleet wire: tail streams opened (leases granted).
    pub const FLEET_NET_TAILS_OPENED: &str = "fleet.net.tails_opened";
    /// Fleet wire: tail leases reaped after a dead subscriber stopped
    /// acknowledging writes (the heartbeat surfaced the broken pipe).
    pub const FLEET_NET_LEASES_REAPED: &str = "fleet.net.leases_reaped";
    /// Fleet wire: connections closed by the per-connection read
    /// deadline (idle or stalled peers).
    pub const FLEET_NET_IDLE_CLOSED: &str = "fleet.net.idle_closed";
    /// Fleet wire: faults the chaos transport layer injected
    /// (partial/garbled/duplicated writes, drops, delays).
    pub const FLEET_NET_CHAOS_FAULTS: &str = "fleet.net.chaos_faults";
    /// Fleet: running sessions parked (checkpointed and requeued) by a
    /// graceful drain, as distinct from steals and kills.
    pub const FLEET_DRAIN_PARKED: &str = "fleet.drain_parked";
    /// Journals discarded as torn (corruption-class load failure under
    /// the fleet resume policy); the session restarts fresh, which the
    /// counter-keyed fault streams make trace-identical.
    pub const JOURNAL_TORN_DISCARDED: &str = "journal.torn_discarded";
    /// Encrypted path: side-channel power traces collected before
    /// `K_E` was recovered (recorded once per encrypted session).
    pub const SCA_TRACES: &str = "sca.traces_collected";
    /// Encrypted path: candidate loads shipped through the container
    /// (patch-seal + device-side open round trips).
    pub const ENCRYPTED_LOADS: &str = "encrypted.loads";
    /// Encrypted path: CBC blocks re-encrypted across all patches (the
    /// dirty windows).
    pub const ENCRYPTED_BLOCKS_REENCRYPTED: &str = "encrypted.blocks_reencrypted";
    /// Encrypted path: ciphertext blocks reused untouched from the
    /// golden container (the clean prefixes the seekable oracle never
    /// re-processes).
    pub const ENCRYPTED_BLOCKS_REUSED: &str = "encrypted.blocks_reused";
    /// Encrypted path: CBC blocks the device-side seekable verifier
    /// actually decrypted.
    pub const ENCRYPTED_BLOCKS_DECRYPTED: &str = "encrypted.blocks_decrypted";
    /// Encrypted path: body bytes absorbed by incremental re-MACs
    /// (midstate checkpoints make this a suffix, not the whole body).
    pub const ENCRYPTED_MAC_BYTES: &str = "encrypted.mac_bytes";
    /// Partial reconfiguration: loads shipped as frame-delta partial
    /// bitstreams instead of full configurations.
    pub const PR_PARTIAL_LOADS: &str = "pr.partial_loads";
    /// Partial reconfiguration: loads that fell back to (or started
    /// as) full configurations.
    pub const PR_FULL_LOADS: &str = "pr.full_loads";
    /// Partial reconfiguration: configuration frames written through
    /// the partial port (cumulative).
    pub const PR_FRAMES_WRITTEN: &str = "pr.frames_written";
    /// Configuration bytes shipped over the wire, partial and full
    /// loads combined — the quantity delta loading exists to shrink.
    pub const PR_BYTES_SHIPPED: &str = "pr.bytes_shipped";
    /// Histogram: logical queries occupying each gang pass of a
    /// batched call — the per-pass companion of
    /// [`ORACLE_LANE_UTILISATION_PCT`], which averages over the whole
    /// batch and hides the ragged final pass.
    pub const BATCH_OCCUPANCY: &str = "batch.occupancy";
}

/// Number of histogram buckets: bucket 0 holds the value 0; bucket
/// `i ≥ 1` holds values in `[2^(i-1), 2^i)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-bucket power-of-two histogram of `u64` observations.
///
/// The bucket layout never changes, so merging two histograms is a
/// bucket-wise add — the associativity/commutativity and bucket-count
/// conservation that campaign rollup relies on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self { buckets: [0; HISTOGRAM_BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index a value falls into.
    #[must_use]
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds another histogram in. Associative and commutative.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (`None` when empty).
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of the observations (`None` when empty).
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The raw bucket counts.
    #[must_use]
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }
}

/// A mergeable bag of named counters and histograms.
///
/// `merge` forms a commutative monoid with [`Metrics::new`] as the
/// identity, which is what makes per-cell campaign rollup
/// order-independent.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// An empty metrics bag (the merge identity).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to a counter (creating it at 0).
    pub fn incr(&mut self, name: &str, by: u64) {
        let slot = self.counters.entry(name.to_string()).or_insert(0);
        *slot = slot.saturating_add(by);
    }

    /// Records one observation into a histogram (creating it empty).
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms.entry(name.to_string()).or_default().observe(value);
    }

    /// A counter's value (0 when absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A histogram, when present.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters, in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All histograms, in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Folds another metrics bag in: counters add, histograms merge
    /// bucket-wise. Associative and commutative, with the empty bag
    /// as identity — campaign cells may be rolled up in any order.
    pub fn merge(&mut self, other: &Metrics) {
        for (name, v) in &other.counters {
            let slot = self.counters.entry(name.clone()).or_insert(0);
            *slot = slot.saturating_add(*v);
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
    }
}

/// A typed telemetry-sink failure: opening the trace file or writing
/// an event to it. Recording APIs never return errors (they are
/// called from oracle chokepoints that must stay inert); the first
/// write failure is captured and surfaced by [`Telemetry::finish`].
#[derive(Debug)]
#[non_exhaustive]
pub enum TelemetryError {
    /// The NDJSON sink could not be created.
    Open {
        /// The path that failed to open.
        path: PathBuf,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// A write to the sink failed mid-run.
    Sink(io::Error),
}

impl fmt::Display for TelemetryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TelemetryError::Open { path, source } => {
                write!(f, "cannot open trace sink {}: {source}", path.display())
            }
            TelemetryError::Sink(e) => write!(f, "trace sink write failed: {e}"),
        }
    }
}

impl std::error::Error for TelemetryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TelemetryError::Open { source, .. } => Some(source),
            TelemetryError::Sink(e) => Some(e),
        }
    }
}

/// One open span's bookkeeping.
struct SpanFrame {
    id: u64,
    name: String,
    opened: Instant,
    /// Oracle-effort counters at open, for the close-event delta.
    counters_at_open: BTreeMap<String, u64>,
}

/// The shared recorder state behind an enabled [`Telemetry`] handle.
struct State {
    metrics: Metrics,
    sink: Option<BufWriter<Box<dyn Write + Send>>>,
    sink_error: Option<io::Error>,
    spans: Vec<SpanFrame>,
    next_span_id: u64,
    seq: u64,
}

impl State {
    fn new(sink: Option<Box<dyn Write + Send>>) -> Self {
        Self {
            metrics: Metrics::new(),
            sink: sink.map(BufWriter::new),
            sink_error: None,
            spans: Vec::new(),
            next_span_id: 1,
            seq: 0,
        }
    }

    /// Writes one NDJSON line; the first failure is latched.
    fn emit(&mut self, line: &str) {
        let Some(sink) = &mut self.sink else { return };
        if self.sink_error.is_some() {
            return;
        }
        if let Err(e) = sink.write_all(line.as_bytes()).and_then(|()| sink.write_all(b"\n")) {
            self.sink_error = Some(e);
        }
    }
}

/// A minimal single-line JSON object builder (no escaping surprises:
/// keys are static, strings go through `escape_default`).
struct Json(String);

impl Json {
    fn event(seq: u64, ev: &str) -> Self {
        Self(format!("{{\"seq\":{seq},\"ev\":\"{ev}\""))
    }

    fn num(mut self, key: &str, v: u64) -> Self {
        use fmt::Write as _;
        let _ = write!(self.0, ",\"{key}\":{v}");
        self
    }

    fn opt_num(self, key: &str, v: Option<u64>) -> Self {
        match v {
            Some(v) => self.num(key, v),
            None => self,
        }
    }

    fn str(mut self, key: &str, v: &str) -> Self {
        use fmt::Write as _;
        let _ = write!(self.0, ",\"{key}\":\"{}\"", v.escape_default());
        self
    }

    fn finish(mut self) -> String {
        self.0.push('}');
        self.0
    }
}

/// The oracle-effort counters whose per-span deltas the span-close
/// events report.
const SPAN_DELTA_COUNTERS: [&str; 5] = [
    names::ORACLE_QUERIES,
    names::ORACLE_LOADS,
    names::ORACLE_READS,
    names::ORACLE_RETRIES,
    names::ORACLE_BACKOFF_MS,
];

/// A cloneable, thread-safe telemetry handle. [`Telemetry::off`] is a
/// free no-op at every recording site (a single `Option` check), so
/// instrumented code pays nothing when tracing is disabled.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Mutex<State>>>,
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            Some(_) => f.write_str("Telemetry(on)"),
            None => f.write_str("Telemetry(off)"),
        }
    }
}

impl Telemetry {
    /// The disabled recorder: every call is a no-op.
    #[must_use]
    pub fn off() -> Self {
        Self { inner: None }
    }

    /// An enabled recorder accumulating metrics in memory, with no
    /// event sink.
    #[must_use]
    pub fn new() -> Self {
        Self { inner: Some(Arc::new(Mutex::new(State::new(None)))) }
    }

    /// An enabled recorder that also streams NDJSON events to `sink`.
    #[must_use]
    pub fn with_sink(sink: Box<dyn Write + Send>) -> Self {
        let t = Self { inner: Some(Arc::new(Mutex::new(State::new(Some(sink))))) };
        t.with_state(|s| {
            let line =
                Json::event(s.seq, "trace_start").num("schema", TRACE_SCHEMA_VERSION).finish();
            s.seq += 1;
            s.emit(&line);
        });
        t
    }

    /// An enabled recorder streaming NDJSON to a file at `path`
    /// (created or truncated).
    ///
    /// # Errors
    ///
    /// [`TelemetryError::Open`] when the file cannot be created —
    /// typed, so CLI surfaces can report the path instead of
    /// panicking.
    pub fn to_path(path: impl AsRef<Path>) -> Result<Self, TelemetryError> {
        let path = path.as_ref();
        let file = File::create(path)
            .map_err(|source| TelemetryError::Open { path: path.to_path_buf(), source })?;
        Ok(Self::with_sink(Box::new(file)))
    }

    /// Whether this handle records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Runs `f` on the state when enabled.
    fn with_state<R>(&self, f: impl FnOnce(&mut State) -> R) -> Option<R> {
        let inner = self.inner.as_ref()?;
        let mut state = inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        Some(f(&mut state))
    }

    /// A snapshot of the accumulated metrics (empty when disabled).
    #[must_use]
    pub fn metrics(&self) -> Metrics {
        self.with_state(|s| s.metrics.clone()).unwrap_or_default()
    }

    /// Adds `by` to a counter.
    pub fn incr(&self, name: &str, by: u64) {
        self.with_state(|s| s.metrics.incr(name, by));
    }

    /// Records one histogram observation.
    pub fn observe(&self, name: &str, value: u64) {
        self.with_state(|s| s.metrics.observe(name, value));
    }

    /// Opens a hierarchical span. The returned guard closes it on
    /// drop, emitting a `span_close` event carrying the span's
    /// wall-clock time and oracle-effort delta.
    #[must_use]
    pub fn span(&self, name: &str) -> Span {
        let id = self
            .with_state(|s| {
                let id = s.next_span_id;
                s.next_span_id += 1;
                let parent = s.spans.last().map(|f| f.id);
                let line = Json::event(s.seq, "span_open")
                    .num("id", id)
                    .opt_num("parent", parent)
                    .str("name", name)
                    .finish();
                s.seq += 1;
                s.emit(&line);
                s.spans.push(SpanFrame {
                    id,
                    name: name.to_string(),
                    opened: Instant::now(),
                    counters_at_open: s.metrics.counters.clone(),
                });
                id
            })
            .unwrap_or(0);
        Span { telemetry: self.clone(), id }
    }

    /// Closes the span with `id` (invoked by the guard's drop).
    fn close_span(&self, id: u64) {
        self.with_state(|s| {
            let Some(pos) = s.spans.iter().rposition(|f| f.id == id) else { return };
            // Close abandoned inner frames first (a guard leaked by
            // an early return); closing strictly inner-to-outer keeps
            // the event stream well nested.
            while s.spans.len() > pos {
                let frame = s.spans.pop().expect("pos < len");
                let wall_us = u64::try_from(frame.opened.elapsed().as_micros()).unwrap_or(u64::MAX);
                let mut line = Json::event(s.seq, "span_close")
                    .num("id", frame.id)
                    .str("name", &frame.name)
                    .num("wall_us", wall_us);
                for name in SPAN_DELTA_COUNTERS {
                    let now = s.metrics.counter(name);
                    let then = frame.counters_at_open.get(name).copied().unwrap_or(0);
                    let short = name.rsplit('.').next().unwrap_or(name);
                    line = line.num(short, now - then);
                }
                let line = line.finish();
                s.seq += 1;
                s.emit(&line);
            }
        });
    }

    /// Records one logical oracle query: the per-query effort deltas
    /// and its outcome. Called from the resilience layer *after* the
    /// query completed — the recorder observes, never participates.
    pub fn record_query(
        &self,
        loads: u64,
        reads: u64,
        retries: u64,
        backoff_ms: u64,
        outcome: &str,
    ) {
        self.with_state(|s| {
            s.metrics.incr(names::ORACLE_QUERIES, 1);
            s.metrics.incr(names::ORACLE_LOADS, loads);
            s.metrics.incr(names::ORACLE_READS, reads);
            s.metrics.incr(names::ORACLE_RETRIES, retries);
            s.metrics.incr(names::ORACLE_BACKOFF_MS, backoff_ms);
            s.metrics.observe(names::ORACLE_LOADS_PER_QUERY, loads);
            s.metrics.observe(names::ORACLE_BACKOFF_PER_QUERY, backoff_ms);
            let span = s.spans.last().map(|f| f.id);
            let line = Json::event(s.seq, "query")
                .opt_num("span", span)
                .num("loads", loads)
                .num("reads", reads)
                .num("retries", retries)
                .num("backoff_ms", backoff_ms)
                .str("outcome", outcome)
                .finish();
            s.seq += 1;
            s.emit(&line);
        });
    }

    /// Records one batched oracle call of `items` logical queries
    /// dispatched over gang passes of `lanes` lanes each. Like every
    /// recorder entry point this is called *after* the batch
    /// completed and never feeds back into control flow.
    pub fn record_batch(&self, items: u64, lanes: u64) {
        self.with_state(|s| {
            s.metrics.incr(names::ORACLE_BATCHES, 1);
            s.metrics.incr(names::ORACLE_BATCHED_QUERIES, items);
            s.metrics.observe(names::ORACLE_BATCH_SIZE, items);
            // Occupancy across the gang passes the batch needed:
            // a 64-lane device running 65 items takes two passes at
            // ~51% average occupancy.
            let lanes = lanes.max(1);
            let passes = items.div_ceil(lanes).max(1);
            let utilisation = (items * 100) / (passes * lanes);
            s.metrics.observe(names::ORACLE_LANE_UTILISATION_PCT, utilisation);
            // Per-pass occupancy: every full pass carries `lanes`
            // queries; the last carries the remainder.
            let remainder = items - (passes - 1) * lanes;
            for _ in 1..passes {
                s.metrics.observe(names::BATCH_OCCUPANCY, lanes);
            }
            s.metrics.observe(names::BATCH_OCCUPANCY, remainder);
            let span = s.spans.last().map(|f| f.id);
            let line = Json::event(s.seq, "batch")
                .opt_num("span", span)
                .num("items", items)
                .num("lanes", lanes)
                .num("utilisation_pct", utilisation)
                .finish();
            s.seq += 1;
            s.emit(&line);
        });
    }

    /// Records one crash-safe journal write of `bytes` bytes.
    pub fn record_journal_write(&self, bytes: u64) {
        self.with_state(|s| {
            s.metrics.incr(names::JOURNAL_WRITES, 1);
            s.metrics.incr(names::JOURNAL_BYTES, bytes);
            s.metrics.observe(names::JOURNAL_BYTES_PER_WRITE, bytes);
            let line = Json::event(s.seq, "journal_write").num("bytes", bytes).finish();
            s.seq += 1;
            s.emit(&line);
        });
    }

    /// Records the board-side fault accounting (faults *injected*, to
    /// set against the `oracle.retries` faults *observed*). Call once
    /// at end of run with the board's final counters, or with deltas
    /// when metering incrementally.
    pub fn record_board_faults(
        &self,
        loads_attempted: u64,
        transient: u64,
        timeouts: u64,
        truncated: u64,
        bits_flipped: u64,
    ) {
        self.with_state(|s| {
            let injected = transient + timeouts + truncated + bits_flipped;
            s.metrics.incr(names::BOARD_LOADS, loads_attempted);
            s.metrics.incr(names::BOARD_TRANSIENT, transient);
            s.metrics.incr(names::BOARD_TIMEOUTS, timeouts);
            s.metrics.incr(names::BOARD_TRUNCATED, truncated);
            s.metrics.incr(names::BOARD_BITS_FLIPPED, bits_flipped);
            s.metrics.incr(names::BOARD_INJECTED, injected);
            // The observed-vs-injected gap, against the retries this
            // same recorder saw at the oracle chokepoint. Recompute
            // the cumulative gap rather than a per-call delta so the
            // counter stays right however the calls interleave.
            let observed = s.metrics.counter(names::ORACLE_RETRIES);
            let injected_total = s.metrics.counter(names::BOARD_INJECTED);
            let gap = injected_total.saturating_sub(observed);
            s.metrics.counters.insert(names::BOARD_FAULT_GAP.to_string(), gap);
            let line = Json::event(s.seq, "board")
                .num("loads_attempted", loads_attempted)
                .num("transient", transient)
                .num("timeouts", timeouts)
                .num("truncated", truncated)
                .num("bits_flipped", bits_flipped)
                .num("injected", injected)
                .num("unobserved_gap", gap)
                .finish();
            s.seq += 1;
            s.emit(&line);
        });
    }

    /// Records one adaptive-policy transition (called from the
    /// resilience layer *after* the controller already switched —
    /// observation only, never a control input).
    pub fn record_policy(&self, at_query: u64, from_level: u8, to_level: u8, ewma_milli: u32) {
        self.with_state(|s| {
            let name = if to_level > from_level {
                names::POLICY_ESCALATIONS
            } else {
                names::POLICY_DEESCALATIONS
            };
            s.metrics.incr(name, 1);
            s.metrics.observe(names::POLICY_LEVEL, u64::from(to_level));
            let line = Json::event(s.seq, "policy")
                .num("at_query", at_query)
                .num("from_level", u64::from(from_level))
                .num("to_level", u64::from(to_level))
                .num("ewma_milli", u64::from(ewma_milli))
                .finish();
            s.seq += 1;
            s.emit(&line);
        });
    }

    /// Records the phase-1 candidate counts as one event plus a
    /// total counter.
    pub fn record_candidates(&self, counts: &[(&'static str, usize)]) {
        self.with_state(|s| {
            let total: usize = counts.iter().map(|(_, n)| n).sum();
            s.metrics.incr(names::SCAN_CANDIDATES, total as u64);
            let mut line = Json::event(s.seq, "candidates").num("total", total as u64);
            for (name, n) in counts {
                line = line.num(name, *n as u64);
            }
            let line = line.finish();
            s.seq += 1;
            s.emit(&line);
        });
    }

    /// Records one campaign cell's outcome and merged metrics into
    /// this (campaign-level) recorder.
    pub fn record_cell(&self, label: &str, outcome: &str, cell: &Metrics) {
        self.with_state(|s| {
            s.metrics.merge(cell);
            let line = Json::event(s.seq, "cell")
                .str("label", label)
                .str("outcome", outcome)
                .num("loads", cell.counter(names::ORACLE_LOADS))
                .num("queries", cell.counter(names::ORACLE_QUERIES))
                .num("retries", cell.counter(names::ORACLE_RETRIES))
                .num("backoff_ms", cell.counter(names::ORACLE_BACKOFF_MS))
                .finish();
            s.seq += 1;
            s.emit(&line);
        });
    }

    /// Folds an external metrics bag into this recorder.
    pub fn merge_metrics(&self, other: &Metrics) {
        self.with_state(|s| s.metrics.merge(other));
    }

    /// Emits the `summary` event, flushes the sink, and surfaces the
    /// first sink error (if any) — the typed alternative to panicking
    /// inside a recording chokepoint.
    ///
    /// # Errors
    ///
    /// [`TelemetryError::Sink`] if any event write or the final flush
    /// failed.
    pub fn finish(&self) -> Result<(), TelemetryError> {
        self.with_state(|s| {
            let mut line = Json::event(s.seq, "summary");
            let counters: Vec<(String, u64)> =
                s.metrics.counters.iter().map(|(k, v)| (k.clone(), *v)).collect();
            for (name, v) in counters {
                line = line.num(&name, v);
            }
            let line = line.finish();
            s.seq += 1;
            s.emit(&line);
            if let Some(sink) = &mut s.sink {
                if let Err(e) = sink.flush() {
                    if s.sink_error.is_none() {
                        s.sink_error = Some(e);
                    }
                }
            }
            match s.sink_error.take() {
                Some(e) => Err(TelemetryError::Sink(e)),
                None => Ok(()),
            }
        })
        .unwrap_or(Ok(()))
    }

    /// Renders the end-of-run summary table (empty string when
    /// disabled or nothing was recorded).
    #[must_use]
    pub fn summary_table(&self) -> String {
        let metrics = self.metrics();
        if metrics.is_empty() {
            return String::new();
        }
        let mut out = String::new();
        use fmt::Write as _;
        let _ = writeln!(out, "telemetry summary");
        let width =
            metrics.counters().map(|(n, _)| n.len()).max().unwrap_or(7).max("counter".len());
        let _ = writeln!(out, "  {:width$} | {:>12}", "counter", "value");
        for (name, v) in metrics.counters() {
            let _ = writeln!(out, "  {name:width$} | {v:>12}");
        }
        if metrics.histograms().next().is_some() {
            let hwidth = metrics
                .histograms()
                .map(|(n, _)| n.len())
                .max()
                .unwrap_or(9)
                .max("histogram".len());
            let _ = writeln!(
                out,
                "  {:hwidth$} | {:>8} | {:>8} | {:>8} | {:>10}",
                "histogram", "count", "min", "max", "mean"
            );
            for (name, h) in metrics.histograms() {
                let _ = writeln!(
                    out,
                    "  {:hwidth$} | {:>8} | {:>8} | {:>8} | {:>10.1}",
                    name,
                    h.count(),
                    h.min().unwrap_or(0),
                    h.max().unwrap_or(0),
                    h.mean().unwrap_or(0.0)
                );
            }
        }
        out
    }
}

/// The `--trace` NDJSON schema version (the `trace_start` event's
/// `schema` field). Bump on breaking event-shape changes.
pub const TRACE_SCHEMA_VERSION: u64 = 1;

/// A span guard: closes its span when dropped. Obtained from
/// [`Telemetry::span`]; inert when the telemetry is disabled.
pub struct Span {
    telemetry: Telemetry,
    id: u64,
}

impl Span {
    /// The span's id (0 for the inert guard of a disabled recorder).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.id != 0 {
            self.telemetry.close_span(self.id);
        }
    }
}

impl fmt::Debug for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Span({})", self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    /// A sink that hands every write to a channel (so the test can
    /// inspect what was emitted) and optionally fails.
    struct ChannelSink {
        tx: mpsc::Sender<Vec<u8>>,
        fail: bool,
    }

    impl Write for ChannelSink {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.fail {
                return Err(io::Error::other("sink full"));
            }
            self.tx.send(buf.to_vec()).expect("receiver alive");
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            if self.fail {
                Err(io::Error::other("sink full"))
            } else {
                Ok(())
            }
        }
    }

    fn collect_lines(rx: &mpsc::Receiver<Vec<u8>>) -> Vec<String> {
        let mut bytes = Vec::new();
        while let Ok(chunk) = rx.try_recv() {
            bytes.extend(chunk);
        }
        String::from_utf8(bytes).expect("events are UTF-8").lines().map(str::to_string).collect()
    }

    #[test]
    fn histogram_bucket_layout() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1 << 20), 21);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1006);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[2], 2, "2 and 3 share bucket [2,4)");
        assert_eq!(h.buckets().iter().sum::<u64>(), h.count(), "buckets partition observations");
    }

    #[test]
    fn empty_histogram_has_no_extrema() {
        let h = Histogram::new();
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn disabled_telemetry_is_a_no_op() {
        let t = Telemetry::off();
        assert!(!t.is_enabled());
        t.incr("x", 5);
        t.observe("y", 7);
        t.record_query(3, 1, 2, 40, "ok");
        let span = t.span("phase");
        assert_eq!(span.id(), 0);
        drop(span);
        assert!(t.metrics().is_empty());
        assert!(t.summary_table().is_empty());
        t.finish().expect("no sink, no error");
    }

    #[test]
    fn record_query_updates_counters_and_histograms() {
        let t = Telemetry::new();
        t.record_query(3, 1, 2, 40, "ok");
        t.record_query(1, 1, 0, 0, "ok");
        let m = t.metrics();
        assert_eq!(m.counter(names::ORACLE_QUERIES), 2);
        assert_eq!(m.counter(names::ORACLE_LOADS), 4);
        assert_eq!(m.counter(names::ORACLE_READS), 2);
        assert_eq!(m.counter(names::ORACLE_RETRIES), 2);
        assert_eq!(m.counter(names::ORACLE_BACKOFF_MS), 40);
        let h = m.histogram(names::ORACLE_LOADS_PER_QUERY).expect("histogram exists");
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), Some(3));
    }

    #[test]
    fn spans_nest_and_emit_effort_deltas() {
        let (tx, rx) = mpsc::channel();
        let t = Telemetry::with_sink(Box::new(ChannelSink { tx, fail: false }));
        {
            let _outer = t.span("attack");
            t.record_query(2, 1, 1, 10, "ok");
            {
                let _inner = t.span("phase:z-path-verification");
                t.record_query(5, 1, 4, 100, "ok");
            }
        }
        t.finish().expect("sink healthy");
        let lines = collect_lines(&rx);
        assert!(lines[0].contains("\"ev\":\"trace_start\""), "{}", lines[0]);
        assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')), "NDJSON lines");
        let open_inner = lines
            .iter()
            .find(|l| l.contains("span_open") && l.contains("z-path"))
            .expect("inner span opened");
        assert!(open_inner.contains("\"parent\":1"), "inner span nests under outer: {open_inner}");
        let close_inner = lines
            .iter()
            .find(|l| l.contains("span_close") && l.contains("z-path"))
            .expect("closed");
        assert!(close_inner.contains("\"loads\":5"), "inner delta is inner-only: {close_inner}");
        let close_outer = lines
            .iter()
            .find(|l| l.contains("span_close") && l.contains("\"name\":\"attack\""))
            .expect("outer closed");
        assert!(close_outer.contains("\"loads\":7"), "outer delta spans both: {close_outer}");
        assert!(lines.last().expect("summary").contains("\"ev\":\"summary\""));
        // Sequence numbers are strictly increasing from 0.
        for (i, line) in lines.iter().enumerate() {
            assert!(line.contains(&format!("\"seq\":{i},")), "line {i}: {line}");
        }
    }

    #[test]
    fn leaked_inner_spans_are_closed_with_their_parent() {
        let (tx, rx) = mpsc::channel();
        let t = Telemetry::with_sink(Box::new(ChannelSink { tx, fail: false }));
        let outer = t.span("outer");
        let inner = t.span("inner");
        // Drop out of order: outer first. The recorder must close the
        // abandoned inner frame to keep the event stream well nested.
        drop(outer);
        drop(inner);
        t.finish().expect("sink healthy");
        let lines = collect_lines(&rx);
        let closes: Vec<&String> = lines.iter().filter(|l| l.contains("span_close")).collect();
        assert_eq!(closes.len(), 2);
        assert!(closes[0].contains("\"name\":\"inner\""), "inner closes first: {closes:?}");
        assert!(closes[1].contains("\"name\":\"outer\""));
    }

    #[test]
    fn sink_failures_are_latched_and_typed_not_panics() {
        let (tx, _rx) = mpsc::channel();
        let t = Telemetry::with_sink(Box::new(ChannelSink { tx, fail: true }));
        t.record_query(1, 1, 0, 0, "ok"); // must not panic
        let err = t.finish().expect_err("sink failed");
        assert!(matches!(err, TelemetryError::Sink(_)), "{err:?}");
        assert!(err.to_string().contains("sink"), "{err}");
        // Metrics still accumulated despite the dead sink.
        assert_eq!(t.metrics().counter(names::ORACLE_QUERIES), 1);
    }

    #[test]
    fn to_path_reports_unwritable_sinks_as_typed_errors() {
        let dir = std::env::temp_dir().join(format!("bitmod-no-such-dir-{}", std::process::id()));
        let err = Telemetry::to_path(dir.join("trace.ndjson")).expect_err("directory missing");
        assert!(matches!(err, TelemetryError::Open { .. }), "{err:?}");
        assert!(err.to_string().contains("trace.ndjson"), "{err}");
        use std::error::Error as _;
        assert!(err.source().is_some());
    }

    #[test]
    fn summary_table_lists_counters_and_histograms() {
        let t = Telemetry::new();
        t.incr(names::JOURNAL_WRITES, 3);
        t.observe(names::JOURNAL_BYTES_PER_WRITE, 100);
        t.observe(names::JOURNAL_BYTES_PER_WRITE, 300);
        let table = t.summary_table();
        assert!(table.contains("journal.writes"), "{table}");
        assert!(table.contains("journal.bytes_per_write"), "{table}");
        assert!(table.contains("200.0"), "mean rendered: {table}");
    }

    #[test]
    fn board_faults_expose_the_observed_vs_injected_gap() {
        let t = Telemetry::new();
        // The oracle observed 3 retries; the board injected 10 faults
        // (2 transient + 1 timeout + 3 truncated + 4 flipped bits):
        // 7 slipped past the retry layer.
        t.record_query(4, 1, 3, 30, "ok");
        t.record_board_faults(20, 2, 1, 3, 4);
        let m = t.metrics();
        assert_eq!(m.counter(names::BOARD_INJECTED), 10);
        assert_eq!(m.counter(names::BOARD_FAULT_GAP), 7);
        assert!(t.summary_table().contains("board.faults.unobserved_gap"));
        // A later delta call refreshes the cumulative gap.
        t.record_board_faults(5, 0, 0, 0, 2);
        assert_eq!(t.metrics().counter(names::BOARD_FAULT_GAP), 9);
    }

    #[test]
    fn policy_transitions_are_counted_by_direction() {
        let (tx, rx) = mpsc::channel();
        let t = Telemetry::with_sink(Box::new(ChannelSink { tx, fail: false }));
        t.record_policy(10, 0, 1, 240);
        t.record_policy(25, 1, 2, 310);
        t.record_policy(80, 2, 1, 40);
        t.finish().expect("sink healthy");
        let m = t.metrics();
        assert_eq!(m.counter(names::POLICY_ESCALATIONS), 2);
        assert_eq!(m.counter(names::POLICY_DEESCALATIONS), 1);
        let h = m.histogram(names::POLICY_LEVEL).expect("level histogram");
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), Some(2));
        let lines = collect_lines(&rx);
        let policy_line = lines.iter().find(|l| l.contains("\"ev\":\"policy\"")).expect("event");
        assert!(policy_line.contains("\"ewma_milli\":240"), "{policy_line}");
    }

    #[test]
    fn merge_is_identity_on_empty() {
        let mut a = Metrics::new();
        a.incr("x", 2);
        a.observe("h", 9);
        let mut b = a.clone();
        b.merge(&Metrics::new());
        assert_eq!(a, b);
        let mut c = Metrics::new();
        c.merge(&a);
        assert_eq!(a, c);
    }

    #[test]
    fn cell_rollup_merges_into_campaign_metrics() {
        let campaign = Telemetry::new();
        let cell1 = Telemetry::new();
        cell1.record_query(4, 1, 3, 30, "ok");
        let cell2 = Telemetry::new();
        cell2.record_query(1, 1, 0, 0, "ok");
        campaign.record_cell("cell-1", "recovered", &cell1.metrics());
        campaign.record_cell("cell-2", "recovered", &cell2.metrics());
        let m = campaign.metrics();
        assert_eq!(m.counter(names::ORACLE_QUERIES), 2);
        assert_eq!(m.counter(names::ORACLE_LOADS), 5);
        let h = m.histogram(names::ORACLE_LOADS_PER_QUERY).expect("merged histogram");
        assert_eq!(h.count(), 2, "bucket counts conserved across the merge");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// One recording operation, drawn from a small name alphabet so
    /// merges actually collide on keys.
    fn apply_ops(ops: &[(u8, u8, u64)]) -> Metrics {
        let mut m = Metrics::new();
        for &(kind, name, value) in ops {
            let name = ["a", "b", "c", "d"][name as usize % 4];
            if kind % 2 == 0 {
                m.incr(name, value);
            } else {
                m.observe(name, value);
            }
        }
        m
    }

    fn merged(a: &Metrics, b: &Metrics) -> Metrics {
        let mut out = a.clone();
        out.merge(b);
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn merge_is_commutative(
            xs in prop::collection::vec((any::<u8>(), any::<u8>(), 0u64..1_000_000), 0..24),
            ys in prop::collection::vec((any::<u8>(), any::<u8>(), 0u64..1_000_000), 0..24),
        ) {
            let (a, b) = (apply_ops(&xs), apply_ops(&ys));
            prop_assert_eq!(merged(&a, &b), merged(&b, &a));
        }

        #[test]
        fn merge_is_associative(
            xs in prop::collection::vec((any::<u8>(), any::<u8>(), 0u64..1_000_000), 0..16),
            ys in prop::collection::vec((any::<u8>(), any::<u8>(), 0u64..1_000_000), 0..16),
            zs in prop::collection::vec((any::<u8>(), any::<u8>(), 0u64..1_000_000), 0..16),
        ) {
            let (a, b, c) = (apply_ops(&xs), apply_ops(&ys), apply_ops(&zs));
            prop_assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
        }

        #[test]
        fn histogram_buckets_are_conserved_under_arbitrary_splits(
            values in prop::collection::vec(any::<u64>(), 1..64),
            cut_a in 0usize..64,
            cut_b in 0usize..64,
            reverse in any::<bool>(),
        ) {
            // Reference: all observations into one histogram.
            let mut reference = Histogram::new();
            for &v in &values {
                reference.observe(v);
            }
            // Split the same observations into three chunks, build a
            // histogram per chunk, and merge in an arbitrary order.
            let i = cut_a % (values.len() + 1);
            let j = cut_b % (values.len() + 1);
            let (i, j) = (i.min(j), i.max(j));
            let chunks = [&values[..i], &values[i..j], &values[j..]];
            let mut parts: Vec<Histogram> = chunks
                .iter()
                .map(|chunk| {
                    let mut h = Histogram::new();
                    for &v in *chunk {
                        h.observe(v);
                    }
                    h
                })
                .collect();
            if reverse {
                parts.reverse();
            }
            let mut rebuilt = Histogram::new();
            for part in &parts {
                rebuilt.merge(part);
            }
            prop_assert_eq!(&rebuilt, &reference);
            prop_assert_eq!(rebuilt.buckets().iter().sum::<u64>(), values.len() as u64);
        }

        #[test]
        fn counter_totals_survive_split_merge(
            ops in prop::collection::vec((any::<u8>(), any::<u8>(), 0u64..1_000_000), 1..48),
            cut in 0usize..48,
        ) {
            let whole = apply_ops(&ops);
            let i = cut % (ops.len() + 1);
            let split = merged(&apply_ops(&ops[..i]), &apply_ops(&ops[i..]));
            prop_assert_eq!(whole, split);
        }
    }
}
