//! Sequential dual-output half scan (Section VII-B) for predicates
//! that are not [`Sync`]; the parallel equivalent is
//! [`Scanner::scan_halves`](super::Scanner::scan_halves).

use bitstream::{codec, SubVectorOrder};
use boolfn::{Permutation, TruthTable};

use super::{stored_at, LutHit};

/// Scans every byte position, decoding the dual-output LUT stored
/// there under each sub-vector order, and reports positions where
/// `predicate` accepts the two 5-variable halves `(O5, O6)`.
///
/// This is the Section VII-B search ("all LUTs having the 2-input XOR
/// in one half of their truth table and any Boolean function of up to
/// 5 dependent variables in another"), generalised to an arbitrary
/// predicate. `range` restricts the scan (the paper's "constrained
/// search over an interval of 200,000 byte positions").
///
/// Unlike [`Scanner::scan_halves`](super::Scanner::scan_halves) the
/// predicate may be a stateful [`FnMut`], and the scan stays on the
/// calling thread.
///
/// # Example
///
/// ```
/// use bitmod::findlut::scan_halves;
/// use bitstream::FRAME_BYTES;
///
/// let data = vec![0u8; 6 * FRAME_BYTES];
/// // Count LUTs whose O5 half is a 2-input XOR (none in zeroed data).
/// let hits = scan_halves(&data, FRAME_BYTES, 0..data.len(), |o5, _| {
///     o5.as_xor_pair().is_some()
/// });
/// assert!(hits.is_empty());
/// ```
#[must_use]
pub fn scan_halves<P>(
    data: &[u8],
    d: usize,
    range: core::ops::Range<usize>,
    mut predicate: P,
) -> Vec<LutHit>
where
    P: FnMut(TruthTable, TruthTable) -> bool,
{
    let mut hits = Vec::new();
    if data.len() < 3 * d + 2 {
        return hits;
    }
    let last = (data.len() - (3 * d + 2)).min(range.end.saturating_sub(1));
    for l in range.start..=last {
        for order in SubVectorOrder::both() {
            let init = codec::decode(stored_at(data, l, d), order);
            if predicate(init.o5(), init.o6_fractured()) {
                hits.push(LutHit { l, order, perm: Permutation::identity(6), init });
                // No break: a position can satisfy the predicate
                // under both sub-vector orders, and only the order
                // matching the hosting slice type survives the
                // caller's oracle tests.
            }
        }
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitstream::{LutLocation, FRAME_BYTES};
    use boolfn::expr::var;
    use boolfn::DualOutputInit;

    #[test]
    fn scan_halves_finds_xor_half() {
        let xor = (var(2) ^ var(4)).truth_table(5);
        let other = (var(1) & var(3)).truth_table(5);
        let mut data = vec![0u8; 6 * FRAME_BYTES];
        codec::write_lut(
            &mut data,
            LutLocation { l: 99, d: FRAME_BYTES, order: SubVectorOrder::SliceL },
            DualOutputInit::from_pair(xor, other),
        );
        let hits = scan_halves(&data, FRAME_BYTES, 0..data.len(), |o5, o6| {
            o5.as_xor_pair().is_some() || o6.as_xor_pair().is_some()
        });
        assert!(hits.iter().any(|h| h.l == 99));
    }

    #[test]
    fn scan_halves_respects_range() {
        let xor = (var(1) ^ var(2)).truth_table(5);
        let mut data = vec![0u8; 6 * FRAME_BYTES];
        codec::write_lut(
            &mut data,
            LutLocation { l: 900, d: FRAME_BYTES, order: SubVectorOrder::SliceL },
            DualOutputInit::from_pair(xor, xor),
        );
        let hits = scan_halves(&data, FRAME_BYTES, 0..100, |o5, _| o5.as_xor_pair().is_some());
        assert!(hits.iter().all(|h| h.l < 100));
    }

    #[test]
    fn stateful_predicate_allowed() {
        let data = vec![0u8; 6 * FRAME_BYTES];
        let mut count = 0usize;
        let _ = scan_halves(&data, FRAME_BYTES, 0..data.len(), |_, _| {
            count += 1;
            false
        });
        assert!(count > 0);
    }
}
