//! Algorithm 1: finding all k-input LUTs implementing given Boolean
//! functions in a bitstream.
//!
//! The module is organised around the [`Scanner`] engine, which makes
//! **one pass** over an FDRI payload for an arbitrary *set* of
//! candidate functions:
//!
//! * every input permutation of every candidate is ξ-permuted,
//!   partitioned into stored sub-vectors per sub-vector order, and
//!   deduplicated into a single hash index keyed by the packed stored
//!   sub-vectors ([`index`]);
//! * byte positions are then scanned in parallel over frame-aligned
//!   chunks, each position costing one 8-byte strided read and at most
//!   one hash lookup, gated by a 2¹⁶-entry prefilter bitmap over the
//!   first sub-vector that rejects ~99% of positions after a two-byte
//!   read ([`scanner`]);
//! * per-chunk hit vectors are merged in chunk order, so the hit list
//!   is deterministic regardless of thread count, and per candidate it
//!   is **byte-identical** to [`find_lut_reference`], the literal
//!   transcription of the paper's pseudo-code kept as differential-test
//!   ground truth ([`reference`]).
//!
//! This realises the paper's "all Boolean functions within the same
//! P equivalence class" search for free, and restores the Section VI-B
//! performance figure ("for bitstreams of size less than 10 MB and
//! k = 6, our tool takes less than 4 sec") with ample margin even when
//! the whole Table II catalogue is scanned at once.
//!
//! [`Scanner::scan_halves`] is the complementary tool of Section
//! VII-B: an exhaustive scan that decodes a whole dual-output LUT at
//! every byte position and applies an arbitrary predicate to its two
//! halves. The free function [`scan_halves`] is the sequential
//! equivalent for non-[`Sync`] predicates.
//!
//! The pre-Scanner entry point [`find_lut`] survives as a thin
//! deprecated wrapper over a single-candidate [`Scanner`].

use std::collections::HashMap;

use boolfn::{DualOutputInit, Permutation, TruthTable};

use bitstream::{codec, LutLocation, SubVectorOrder};

mod halves;
mod index;
mod reference;
mod scanner;

pub use halves::scan_halves;
pub use reference::find_lut_reference;
pub use scanner::{ScanConfigError, ScanHit, Scanner, ScannerBuilder};

/// Search parameters (the `k`, `d` and `r` of Algorithm 1).
///
/// `r` is fixed at 4 by the 7-series LUT partitioning; `d` is the
/// sub-vector stride in bytes (one frame on our device model).
///
/// New code should configure an equivalent [`Scanner`] via
/// [`Scanner::builder`]; this type remains the parameter block of the
/// ground-truth [`find_lut_reference`].
#[derive(Debug, Clone, Copy)]
pub struct FindLutParams {
    /// Number of LUT inputs `k` (2..=6).
    pub k: u8,
    /// Byte offset between consecutive sub-vectors.
    pub d: usize,
    /// Sub-vector orders to try; `None` means both known orders
    /// (SLICEL and SLICEM).
    pub orders: Option<SubVectorOrder>,
}

impl FindLutParams {
    /// Parameters for a 6-input search at sub-vector stride `d`.
    #[must_use]
    pub fn k6(d: usize) -> Self {
        Self { k: 6, d, orders: None }
    }

    pub(crate) fn order_list(&self) -> Vec<SubVectorOrder> {
        match self.orders {
            Some(o) => vec![o],
            None => SubVectorOrder::both().to_vec(),
        }
    }
}

/// A search hit: where a LUT implementing the function may live, and
/// under which input permutation / sub-vector order it matched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LutHit {
    /// Byte index of the first sub-vector.
    pub l: usize,
    /// Matching sub-vector order.
    pub order: SubVectorOrder,
    /// Input permutation `p` such that `candidate.permute(p)` equals
    /// the stored function.
    pub perm: Permutation,
    /// The full decoded 64-bit INIT at this location.
    pub init: DualOutputInit,
}

impl LutHit {
    /// The [`LutLocation`] of this hit at stride `d`.
    #[must_use]
    pub fn location(&self, d: usize) -> LutLocation {
        LutLocation { l: self.l, d, order: self.order }
    }
}

/// Extends a k-pin permutation to 6 pins (identity on the rest).
pub(crate) fn extend_permutation(p: &Permutation, k: u8) -> Permutation {
    let mut full = [0u8; 6];
    for (j, &x) in p.as_slice().iter().enumerate() {
        full[j] = x;
    }
    for (j, slot) in full.iter_mut().enumerate().skip(k as usize) {
        *slot = j as u8;
    }
    Permutation::from_slice(&full).expect("valid permutation")
}

/// Builds the deduplicated map from permuted truth table to the
/// minimal-rank permutation producing it.
pub(crate) fn permuted_tables(f: TruthTable, k: u8) -> HashMap<u64, Permutation> {
    let f6 = f.extend(6);
    let mut map = HashMap::new();
    for p in Permutation::all(k) {
        let p6 = extend_permutation(&p, k);
        map.entry(f6.permute(&p6).bits()).or_insert(p);
    }
    map
}

#[inline]
pub(crate) fn pack_stored(s: [u16; 4]) -> u64 {
    u64::from(s[0]) | (u64::from(s[1]) << 16) | (u64::from(s[2]) << 32) | (u64::from(s[3]) << 48)
}

/// Reads the four stored sub-vectors at byte position `l`, stride `d`.
#[inline]
pub(crate) fn stored_at(data: &[u8], l: usize, d: usize) -> [u16; 4] {
    [
        u16::from_le_bytes([data[l], data[l + 1]]),
        u16::from_le_bytes([data[l + d], data[l + d + 1]]),
        u16::from_le_bytes([data[l + 2 * d], data[l + 2 * d + 1]]),
        u16::from_le_bytes([data[l + 3 * d], data[l + 3 * d + 1]]),
    ]
}

/// Single-candidate FINDLUT: returns all candidate locations of `f` in
/// `data`, in ascending byte order.
#[deprecated(
    since = "0.2.0",
    note = "build a (multi-candidate, parallel) `Scanner` via `Scanner::builder()` \
            and call `Scanner::scan` instead"
)]
#[must_use]
pub fn find_lut(data: &[u8], f: TruthTable, params: &FindLutParams) -> Vec<LutHit> {
    let scanner = Scanner::builder()
        .k(params.k)
        .stride(params.d)
        .orders(params.orders)
        .candidate(f)
        .build()
        .expect("legacy FindLutParams were never validated; invalid k or d");
    scanner.scan(data).into_iter().map(|h| h.hit).collect()
}

/// Re-attempts a candidate match at a single position under a given
/// sub-vector order, returning the hit (with its permutation) if the
/// stored content is a permutation of `f`.
#[must_use]
pub fn rematch_at(
    data: &[u8],
    l: usize,
    d: usize,
    order: SubVectorOrder,
    f: TruthTable,
) -> Option<LutHit> {
    if l + 3 * d + 2 > data.len() {
        return None;
    }
    let tables = permuted_tables(f, 6);
    let stored = stored_at(data, l, d);
    let init = codec::decode(stored, order);
    tables.get(&init.init()).map(|&perm| LutHit { l, order, perm, init })
}

#[cfg(test)]
#[allow(deprecated)] // the wrapper is pinned to the Scanner here
mod tests {
    use super::*;
    use bitstream::FRAME_BYTES;
    use boolfn::expr::var;

    fn plant(data: &mut [u8], l: usize, order: SubVectorOrder, tt: TruthTable) {
        codec::write_lut(
            data,
            LutLocation { l, d: FRAME_BYTES, order },
            DualOutputInit::from_single(tt.extend(6)),
        );
    }

    #[test]
    fn finds_planted_lut_exact_position() {
        let f2 = ((var(1) ^ var(2) ^ var(3)) & var(4) & var(5) & !var(6)).truth_table(6);
        let mut data = vec![0u8; 8 * FRAME_BYTES];
        plant(&mut data, 123, SubVectorOrder::SliceL, f2);
        let hits = find_lut(&data, f2, &FindLutParams::k6(FRAME_BYTES));
        let planted: Vec<_> = hits.iter().filter(|h| h.l == 123).collect();
        assert_eq!(planted.len(), 1);
        assert_eq!(planted[0].order, SubVectorOrder::SliceL);
    }

    #[test]
    fn finds_permuted_plant() {
        // Plant f2 with scrambled pins; the search must still hit and
        // report the permutation that maps the candidate onto it.
        let f2 = ((var(1) ^ var(2) ^ var(3)) & var(4) & var(5) & !var(6)).truth_table(6);
        let p = Permutation::from_slice(&[4, 0, 5, 1, 3, 2]).unwrap();
        let stored = f2.permute(&p);
        let mut data = vec![0u8; 8 * FRAME_BYTES];
        plant(&mut data, 200, SubVectorOrder::SliceM, stored);
        let hits = find_lut(&data, f2, &FindLutParams::k6(FRAME_BYTES));
        let hit = hits.iter().find(|h| h.l == 200).expect("found");
        assert_eq!(f2.permute(&hit.perm), stored, "reported permutation reproduces storage");
    }

    #[test]
    fn optimized_equals_reference() {
        let f = (((var(1) ^ var(2)) & !var(3) & var(4) & var(5)) ^ var(6)).truth_table(6);
        // Data with structured and random-ish content.
        let mut data = vec![0u8; 6 * FRAME_BYTES];
        let mut x = 0x12345u32;
        for b in data.iter_mut() {
            x = x.wrapping_mul(1_103_515_245).wrapping_add(12_345);
            *b = (x >> 16) as u8;
        }
        plant(&mut data, 77, SubVectorOrder::SliceL, f);
        plant(
            &mut data,
            400,
            SubVectorOrder::SliceM,
            f.permute(&Permutation::from_slice(&[1, 0, 2, 3, 4, 5]).unwrap()),
        );
        let fast = find_lut(&data, f, &FindLutParams::k6(FRAME_BYTES));
        let slow = find_lut_reference(&data, f, &FindLutParams::k6(FRAME_BYTES));
        assert_eq!(fast, slow);
        let fast_pos: Vec<usize> = fast.iter().map(|h| h.l).collect();
        assert!(fast_pos.contains(&77) && fast_pos.contains(&400));
    }

    #[test]
    fn small_k_functions_found() {
        // A 2-input XOR stored in a 6-LUT (unused pins don't-care).
        let xor2 = (var(1) ^ var(2)).truth_table(2);
        let mut data = vec![0u8; 6 * FRAME_BYTES];
        plant(&mut data, 50, SubVectorOrder::SliceL, xor2.extend(6));
        let hits = find_lut(&data, xor2.extend(6), &FindLutParams::k6(FRAME_BYTES));
        assert!(hits.iter().any(|h| h.l == 50));
    }

    #[test]
    fn no_false_negatives_across_all_positions() {
        let f = ((var(1) ^ var(2) ^ var(3)) & var(4) & var(5) & !var(6)).truth_table(6);
        for l in [0usize, 1, 2, 3, 401, 402] {
            let mut data = vec![0u8; 6 * FRAME_BYTES];
            plant(&mut data, l, SubVectorOrder::SliceL, f);
            let hits = find_lut(&data, f, &FindLutParams::k6(FRAME_BYTES));
            assert!(hits.iter().any(|h| h.l == l), "missed plant at {l}");
        }
    }

    #[test]
    fn empty_and_tiny_data() {
        let f = (var(1) & var(2)).truth_table(6);
        assert!(find_lut(&[], f, &FindLutParams::k6(FRAME_BYTES)).is_empty());
        assert!(find_lut(&[0u8; 64], f, &FindLutParams::k6(FRAME_BYTES)).is_empty());
    }

    #[test]
    fn rematch_at_roundtrip() {
        let f = ((var(1) ^ var(2)) & var(3)).truth_table(6);
        let mut data = vec![0u8; 6 * FRAME_BYTES];
        plant(&mut data, 60, SubVectorOrder::SliceL, f);
        let hit = rematch_at(&data, 60, FRAME_BYTES, SubVectorOrder::SliceL, f).expect("rematch");
        assert_eq!(hit.l, 60);
        assert!(rematch_at(&data, 61, FRAME_BYTES, SubVectorOrder::SliceL, f).is_none());
    }
}
