//! Literal transcription of the paper's Algorithm 1, kept as the
//! differential-test ground truth for the [`Scanner`](super::Scanner).

use bitstream::{codec, xi};
use boolfn::Permutation;
use boolfn::TruthTable;

use super::{extend_permutation, FindLutParams, LutHit};

/// Literal transcription of Algorithm 1 (reference implementation,
/// used to validate the optimized [`Scanner`](super::Scanner)).
#[must_use]
pub fn find_lut_reference(data: &[u8], f: TruthTable, params: &FindLutParams) -> Vec<LutHit> {
    let mut found: Vec<LutHit> = Vec::new();
    let mut marked = vec![false; data.len()];
    if data.len() < 3 * params.d + 2 {
        return found;
    }
    let last = data.len() - (3 * params.d + 2);
    let f6 = f.extend(6);
    // for each (i1..ik) ∈ Pk
    for p in Permutation::all(params.k) {
        // F = GETTRUTHTABLE(f, i1..ik), B = ξ(F), partitioned.
        let p6 = extend_permutation(&p, params.k);
        let b = xi::permute(f6.permute(&p6).bits());
        let parts = codec::split(b);
        // for each l, for each (j1..jr) ∈ Pr (we restrict to the two
        // orders that occur in hardware, as the paper's Section V
        // does).
        #[allow(clippy::needless_range_loop)] // l is also the byte offset being tested
        for l in 0..=last {
            if marked[l] {
                continue;
            }
            for order in params.order_list() {
                let idx = order.indices();
                let matches = (0..4).all(|j| {
                    let at = l + j * params.d;
                    u16::from_le_bytes([data[at], data[at + 1]]) == parts[idx[j]]
                });
                if matches {
                    let mut stored = [0u16; 4];
                    for (j, sv) in stored.iter_mut().enumerate() {
                        let at = l + j * params.d;
                        *sv = u16::from_le_bytes([data[at], data[at + 1]]);
                    }
                    found.push(LutHit { l, order, perm: p, init: codec::decode(stored, order) });
                    marked[l] = true;
                    break;
                }
            }
        }
    }
    found.sort_by_key(|h| h.l);
    found
}
