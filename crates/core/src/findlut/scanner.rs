//! The parallel multi-candidate scan engine.
//!
//! A [`Scanner`] is configured once via [`Scanner::builder`] and then
//! reused across payloads: the candidate index (see [`super::index`])
//! is compiled at `build()` time, and each [`Scanner::scan`] call is a
//! single pass over the data.
//!
//! # Parallelism and determinism
//!
//! The position range is split into frame-aligned chunks of
//! [`CHUNK_FRAMES`] frames. Worker threads (scoped `std::thread`s —
//! the build environment has no network access, so the `rayon`
//! dependency is replaced by a small dynamic work queue over an
//! `AtomicUsize`) claim chunk indices from the queue, scan their chunk
//! sequentially, and deposit `(chunk_index, hits)` pairs. The pairs
//! are merged in chunk order, so the final hit list — ascending in
//! `(l, candidate)` — is identical for every thread count, including
//! the sequential path. A determinism test pins this.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use boolfn::{Permutation, TruthTable};

use bitstream::{codec, SubVectorOrder, FRAME_BYTES};

use super::index::CandidateIndex;
use super::{pack_stored, stored_at, LutHit};

/// Frames per parallel work unit. At the default stride this is
/// ~100 KiB of payload per chunk: small enough to balance load across
/// threads, large enough that the per-chunk bookkeeping is noise.
const CHUNK_FRAMES: usize = 256;

/// Payload size below which the scan stays on the calling thread.
const PARALLEL_THRESHOLD: usize = 4 * CHUNK_FRAMES * FRAME_BYTES;

/// An invalid [`ScannerBuilder`] configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanConfigError {
    /// `k` outside the supported 2..=6 range.
    KOutOfRange(u8),
    /// The sub-vector stride `d` was zero.
    ZeroStride,
}

impl core::fmt::Display for ScanConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::KOutOfRange(k) => {
                write!(f, "LUT input count k={k} out of range (supported: 2..=6)")
            }
            Self::ZeroStride => write!(f, "sub-vector stride d must be positive"),
        }
    }
}

impl std::error::Error for ScanConfigError {}

/// A hit produced by [`Scanner::scan`], tagging the [`LutHit`] with
/// the index of the candidate that matched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanHit {
    /// Index of the matching candidate in the order the candidates
    /// were added to the builder.
    pub candidate: usize,
    /// The location-level hit.
    pub hit: LutHit,
}

/// Configures a [`Scanner`]. See [`Scanner::builder`].
#[derive(Debug, Clone)]
pub struct ScannerBuilder {
    k: u8,
    d: usize,
    orders: Option<SubVectorOrder>,
    threads: usize,
    candidates: Vec<TruthTable>,
}

impl ScannerBuilder {
    /// Sets the number of LUT inputs `k` (validated to 2..=6 at
    /// [`build`](Self::build) time). Defaults to 6.
    #[must_use]
    pub fn k(mut self, k: u8) -> Self {
        self.k = k;
        self
    }

    /// Sets the byte offset between consecutive sub-vectors (validated
    /// to be positive at [`build`](Self::build) time). Defaults to
    /// [`FRAME_BYTES`].
    #[must_use]
    pub fn stride(mut self, d: usize) -> Self {
        self.d = d;
        self
    }

    /// Restricts the scan to one sub-vector order; `None` (the
    /// default) tries both known orders (SLICEL and SLICEM).
    #[must_use]
    pub fn orders(mut self, orders: Option<SubVectorOrder>) -> Self {
        self.orders = orders;
        self
    }

    /// Sets the worker thread count; `0` (the default) uses the
    /// available parallelism.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Adds one candidate function.
    #[must_use]
    pub fn candidate(mut self, f: TruthTable) -> Self {
        self.candidates.push(f);
        self
    }

    /// Adds a set of candidate functions (e.g. every
    /// [`Shape::truth`](crate::candidates::Shape) of a
    /// [`Catalogue`](crate::candidates::Catalogue)).
    #[must_use]
    pub fn candidates(mut self, fs: impl IntoIterator<Item = TruthTable>) -> Self {
        self.candidates.extend(fs);
        self
    }

    /// Adds every shape of a catalogue as a candidate, in catalogue
    /// order (so scan results can be zipped back onto the shapes).
    #[must_use]
    pub fn catalogue(self, catalogue: &crate::candidates::Catalogue) -> Self {
        self.candidates(catalogue.shapes.iter().map(|s| s.truth))
    }

    /// Validates the configuration and compiles the candidate index.
    ///
    /// # Errors
    ///
    /// [`ScanConfigError::KOutOfRange`] unless `2 <= k <= 6`;
    /// [`ScanConfigError::ZeroStride`] if `d == 0`.
    pub fn build(self) -> Result<Scanner, ScanConfigError> {
        if !(2..=6).contains(&self.k) {
            return Err(ScanConfigError::KOutOfRange(self.k));
        }
        if self.d == 0 {
            return Err(ScanConfigError::ZeroStride);
        }
        let order_list = match self.orders {
            Some(o) => vec![o],
            None => SubVectorOrder::both().to_vec(),
        };
        let index = CandidateIndex::build(&self.candidates, self.k, &order_list);
        Ok(Scanner { d: self.d, threads: self.threads, n_candidates: self.candidates.len(), index })
    }
}

/// The one-pass multi-candidate FINDLUT engine (Algorithm 1 over a
/// candidate *set*).
///
/// ```
/// use bitmod::findlut::Scanner;
/// use bitmod::Catalogue;
/// use bitstream::FRAME_BYTES;
///
/// let scanner = Scanner::builder()
///     .k(6)
///     .stride(FRAME_BYTES)
///     .catalogue(&Catalogue::full())
///     .build()
///     .expect("valid configuration");
/// let hits = scanner.scan(&vec![0u8; 8 * FRAME_BYTES]);
/// assert!(hits.iter().all(|h| h.candidate < Catalogue::full().shapes.len()));
/// ```
#[derive(Debug)]
pub struct Scanner {
    d: usize,
    threads: usize,
    n_candidates: usize,
    index: CandidateIndex,
}

impl Scanner {
    /// Starts building a scanner. Defaults: `k = 6`, stride
    /// [`FRAME_BYTES`], both sub-vector orders, automatic thread
    /// count, no candidates.
    #[must_use]
    pub fn builder() -> ScannerBuilder {
        ScannerBuilder { k: 6, d: FRAME_BYTES, orders: None, threads: 0, candidates: Vec::new() }
    }

    /// The configured sub-vector stride.
    #[must_use]
    pub fn stride(&self) -> usize {
        self.d
    }

    /// The number of candidate functions in the index.
    #[must_use]
    pub fn candidate_count(&self) -> usize {
        self.n_candidates
    }

    /// Last scannable byte position in a payload of `len` bytes, or
    /// `None` if the payload is too short for even one LUT window.
    fn last_pos(&self, len: usize) -> Option<usize> {
        len.checked_sub(3 * self.d + 2)
    }

    fn worker_count(&self, positions: usize) -> usize {
        let auto = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let n = if self.threads == 0 { auto } else { self.threads };
        n.min(positions.div_ceil(CHUNK_FRAMES * self.d).max(1))
    }

    /// Scans the payload for every candidate in one pass.
    ///
    /// Hits are sorted by `(l, candidate)`; per candidate the hit list
    /// is byte-identical to
    /// [`find_lut_reference`](super::find_lut_reference) run on that
    /// candidate alone.
    #[must_use]
    pub fn scan(&self, data: &[u8]) -> Vec<ScanHit> {
        let Some(last) = self.last_pos(data.len()) else { return Vec::new() };
        if self.n_candidates == 0 {
            return Vec::new();
        }
        self.chunked(data, 0..last + 1, |range, out| self.scan_positions(data, range, out))
    }

    /// Scans and groups hits per candidate (index-aligned with the
    /// builder's candidate order). Each inner list is byte-identical
    /// to [`find_lut_reference`](super::find_lut_reference).
    #[must_use]
    pub fn scan_grouped(&self, data: &[u8]) -> Vec<Vec<LutHit>> {
        let mut grouped = vec![Vec::new(); self.n_candidates];
        for h in self.scan(data) {
            grouped[h.candidate].push(h.hit);
        }
        grouped
    }

    /// Scans every byte position in `range`, decoding the dual-output
    /// LUT stored there under each sub-vector order, and reports
    /// positions where `predicate` accepts the two 5-variable halves
    /// `(O5, O6)` — the Section VII-B search, parallelised.
    ///
    /// The candidate index is not consulted, so a candidate-less
    /// scanner is sufficient:
    ///
    /// ```
    /// use bitmod::findlut::Scanner;
    /// use bitstream::FRAME_BYTES;
    ///
    /// let scanner = Scanner::builder().stride(FRAME_BYTES).build().unwrap();
    /// let data = vec![0u8; 6 * FRAME_BYTES];
    /// let hits = scanner.scan_halves(&data, 0..data.len(), |o5, _| o5.as_xor_pair().is_some());
    /// assert!(hits.is_empty());
    /// ```
    #[must_use]
    pub fn scan_halves<P>(&self, data: &[u8], range: Range<usize>, predicate: P) -> Vec<LutHit>
    where
        P: Fn(TruthTable, TruthTable) -> bool + Sync,
    {
        self.scan_halves_where(data, range, |_| true, predicate)
    }

    /// [`scan_halves`](Self::scan_halves) with a byte-position
    /// prefilter: positions rejected by `pos_filter` are skipped
    /// *before* the stored sub-vectors are decoded. Decoding and
    /// half-table extraction dominate the scan, so a cheap structural
    /// filter (e.g. [`SiteLattice::accepts`]) turns a full-payload
    /// walk into a sparse one while returning exactly the
    /// `pos_filter`-accepted subset of the unfiltered hit list.
    ///
    /// [`SiteLattice::accepts`]: crate::attack::SiteLattice::accepts
    #[must_use]
    pub fn scan_halves_where<F, P>(
        &self,
        data: &[u8],
        range: Range<usize>,
        pos_filter: F,
        predicate: P,
    ) -> Vec<LutHit>
    where
        F: Fn(usize) -> bool + Sync,
        P: Fn(TruthTable, TruthTable) -> bool + Sync,
    {
        let Some(last) = self.last_pos(data.len()) else { return Vec::new() };
        let last = last.min(range.end.saturating_sub(1));
        if range.start > last {
            return Vec::new();
        }
        self.chunked(data, range.start..last + 1, |r, out: &mut Vec<LutHit>| {
            for l in r {
                if !pos_filter(l) {
                    continue;
                }
                for order in SubVectorOrder::both() {
                    let init = codec::decode(stored_at(data, l, self.d), order);
                    if predicate(init.o5(), init.o6_fractured()) {
                        out.push(LutHit { l, order, perm: Permutation::identity(6), init });
                        // No break: a position can satisfy the
                        // predicate under both sub-vector orders, and
                        // only the order matching the hosting slice
                        // type survives the caller's oracle tests.
                    }
                }
            }
        })
    }

    /// Runs `scan_chunk` over frame-aligned sub-ranges of `positions`,
    /// in parallel when profitable, and returns the concatenation of
    /// the per-chunk outputs in chunk order.
    fn chunked<T, F>(&self, data: &[u8], positions: Range<usize>, scan_chunk: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Range<usize>, &mut Vec<T>) + Sync,
    {
        let total = positions.len();
        let chunk_len = CHUNK_FRAMES * self.d;
        let workers = self.worker_count(total);
        if workers <= 1 || data.len() < PARALLEL_THRESHOLD {
            let mut out = Vec::new();
            scan_chunk(positions, &mut out);
            return out;
        }
        let n_chunks = total.div_ceil(chunk_len);
        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<(usize, Vec<T>)>> = Mutex::new(Vec::with_capacity(n_chunks));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n_chunks {
                        break;
                    }
                    let start = positions.start + i * chunk_len;
                    let end = (start + chunk_len).min(positions.end);
                    let mut hits = Vec::new();
                    scan_chunk(start..end, &mut hits);
                    if !hits.is_empty() {
                        results.lock().expect("no panics while locked").push((i, hits));
                    }
                });
            }
        });
        let mut per_chunk = results.into_inner().expect("no panics while locked");
        per_chunk.sort_unstable_by_key(|&(i, _)| i);
        per_chunk.into_iter().flat_map(|(_, hits)| hits).collect()
    }

    /// Sequentially scans one position range against the candidate
    /// index, appending hits in `(l, candidate)` order.
    fn scan_positions(&self, data: &[u8], range: Range<usize>, out: &mut Vec<ScanHit>) {
        for l in range {
            let s0 = u16::from_le_bytes([data[l], data[l + 1]]);
            if !self.index.may_start_with(s0) {
                continue;
            }
            let stored = stored_at(data, l, self.d);
            let Some(entries) = self.index.entries(pack_stored(stored)) else { continue };
            // Entries are sorted by (cand, rank, order_pos): the first
            // entry per candidate is the reference algorithm's winner
            // (permutations outermost, then order, with marking).
            let mut last_cand = u32::MAX;
            for e in entries {
                if e.cand == last_cand {
                    continue;
                }
                last_cand = e.cand;
                out.push(ScanHit {
                    candidate: e.cand as usize,
                    hit: LutHit {
                        l,
                        order: e.order,
                        perm: e.perm,
                        init: codec::decode(stored, e.order),
                    },
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{find_lut_reference, FindLutParams};
    use super::*;
    use bitstream::{codec, LutLocation};
    use boolfn::expr::var;
    use boolfn::DualOutputInit;

    fn noisy_payload(frames: usize, planted: &[(usize, SubVectorOrder, TruthTable)]) -> Vec<u8> {
        let mut data = vec![0u8; frames * FRAME_BYTES];
        let mut x = 0x2545_f491u32;
        for b in data.iter_mut() {
            x = x.wrapping_mul(1_103_515_245).wrapping_add(12_345);
            *b = (x >> 16) as u8;
        }
        for &(l, order, tt) in planted {
            codec::write_lut(
                &mut data,
                LutLocation { l, d: FRAME_BYTES, order },
                DualOutputInit::from_single(tt.extend(6)),
            );
        }
        data
    }

    #[test]
    fn builder_validates() {
        assert_eq!(Scanner::builder().k(1).build().unwrap_err(), ScanConfigError::KOutOfRange(1));
        assert_eq!(Scanner::builder().k(7).build().unwrap_err(), ScanConfigError::KOutOfRange(7));
        assert_eq!(Scanner::builder().stride(0).build().unwrap_err(), ScanConfigError::ZeroStride);
        assert!(Scanner::builder().k(2).stride(1).build().is_ok());
        let err = Scanner::builder().k(9).build().unwrap_err();
        assert!(err.to_string().contains("k=9"));
    }

    #[test]
    fn one_pass_matches_reference_per_candidate() {
        let f = ((var(1) ^ var(2) ^ var(3)) & var(4) & var(5) & !var(6)).truth_table(6);
        let g = ((var(1) & var(2)) ^ (var(3) & var(4))).truth_table(6);
        let h = (var(1) ^ var(2)).truth_table(6);
        let data = noisy_payload(
            12,
            &[
                (77, SubVectorOrder::SliceL, f),
                (500, SubVectorOrder::SliceM, g),
                (900, SubVectorOrder::SliceL, h),
            ],
        );
        let cands = [f, g, h];
        let scanner = Scanner::builder().stride(FRAME_BYTES).candidates(cands).build().unwrap();
        let grouped = scanner.scan_grouped(&data);
        for (i, &c) in cands.iter().enumerate() {
            let reference = find_lut_reference(&data, c, &FindLutParams::k6(FRAME_BYTES));
            assert_eq!(grouped[i], reference, "candidate {i} diverges from reference");
        }
        assert!(grouped[0].iter().any(|h| h.l == 77));
        assert!(grouped[1].iter().any(|h| h.l == 500));
        assert!(grouped[2].iter().any(|h| h.l == 900));
    }

    #[test]
    fn scan_is_sorted_by_position_then_candidate() {
        let f = (var(1) ^ var(2)).truth_table(6);
        // f appears twice in the candidate list: every position that
        // matches candidate 0 also matches candidate 1.
        let data = noisy_payload(8, &[(300, SubVectorOrder::SliceL, f)]);
        let scanner =
            Scanner::builder().stride(FRAME_BYTES).candidate(f).candidate(f).build().unwrap();
        let hits = scanner.scan(&data);
        let keys: Vec<(usize, usize)> = hits.iter().map(|h| (h.hit.l, h.candidate)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
        assert!(keys.windows(2).any(|w| w[0].0 == w[1].0 && w[0].1 < w[1].1));
    }

    #[test]
    fn thread_counts_agree() {
        let f = ((var(1) ^ var(2) ^ var(3)) & var(4) & var(5) & !var(6)).truth_table(6);
        // Large enough to clear PARALLEL_THRESHOLD.
        let plants: Vec<(usize, SubVectorOrder, TruthTable)> = (0..40)
            .map(|i| {
                let order =
                    if i % 2 == 0 { SubVectorOrder::SliceL } else { SubVectorOrder::SliceM };
                (i * 31 * FRAME_BYTES + 13 * i, order, f)
            })
            .collect();
        let data = noisy_payload(1300, &plants);
        let scan_with = |threads: usize| {
            Scanner::builder()
                .stride(FRAME_BYTES)
                .threads(threads)
                .candidate(f)
                .build()
                .unwrap()
                .scan(&data)
        };
        let sequential = scan_with(1);
        assert!(!sequential.is_empty());
        for threads in [2, 3, 8] {
            assert_eq!(scan_with(threads), sequential, "thread count {threads} diverges");
        }
    }

    #[test]
    fn empty_candidates_and_tiny_payloads() {
        let scanner = Scanner::builder().build().unwrap();
        assert!(scanner.scan(&vec![0u8; 8 * FRAME_BYTES]).is_empty());
        let f = (var(1) & var(2)).truth_table(6);
        let one = Scanner::builder().candidate(f).build().unwrap();
        assert!(one.scan(&[]).is_empty());
        assert!(one.scan(&[0u8; 64]).is_empty());
    }

    #[test]
    fn scan_halves_parallel_matches_sequential_wrapper() {
        let xor = (var(2) ^ var(4)).truth_table(5);
        let other = (var(1) & var(3)).truth_table(5);
        let mut data = noisy_payload(1100, &[]);
        for l in [99, 40_000, 300_000] {
            codec::write_lut(
                &mut data,
                LutLocation { l, d: FRAME_BYTES, order: SubVectorOrder::SliceL },
                DualOutputInit::from_pair(xor, other),
            );
        }
        let scanner = Scanner::builder().stride(FRAME_BYTES).build().unwrap();
        let par = scanner.scan_halves(&data, 0..data.len(), |o5, o6| {
            o5.as_xor_pair().is_some() || o6.as_xor_pair().is_some()
        });
        let seq = super::super::scan_halves(&data, FRAME_BYTES, 0..data.len(), |o5, o6| {
            o5.as_xor_pair().is_some() || o6.as_xor_pair().is_some()
        });
        assert_eq!(par, seq);
        for l in [99, 40_000, 300_000] {
            assert!(par.iter().any(|h| h.l == l), "missed plant at {l}");
        }
    }

    #[test]
    fn scan_halves_respects_range() {
        let xor = (var(1) ^ var(2)).truth_table(5);
        let mut data = vec![0u8; 6 * FRAME_BYTES];
        codec::write_lut(
            &mut data,
            LutLocation { l: 900, d: FRAME_BYTES, order: SubVectorOrder::SliceL },
            DualOutputInit::from_pair(xor, xor),
        );
        let scanner = Scanner::builder().stride(FRAME_BYTES).build().unwrap();
        let hits = scanner.scan_halves(&data, 0..100, |o5, _| o5.as_xor_pair().is_some());
        assert!(hits.iter().all(|h| h.l < 100));
        // A start past the clamped end yields nothing.
        let past_end = data.len() + 100;
        assert!(scanner.scan_halves(&data, past_end..past_end + 10, |_, _| true).is_empty());
    }
}
