//! The one-pass candidate index.
//!
//! All candidate functions of a [`super::Scanner`] are compiled into a
//! single `HashMap` keyed by the packed stored sub-vectors: for every
//! candidate, every deduplicated input permutation of its truth table
//! is ξ-permuted, partitioned, and projected into the stored domain
//! once per sub-vector order. Scanning then reads the four stored
//! sub-vectors at a byte position exactly once — the packed key is the
//! same under every order; only the index construction differs — and a
//! single lookup yields every `(candidate, permutation, order)` triple
//! matching there.
//!
//! Entries carry the *rank* of their permutation in `P_k` enumeration
//! order so the scan can reproduce the reference algorithm's hit
//! selection exactly: [`find_lut_reference`](super::find_lut_reference)
//! iterates permutations in rank order outside the position loop and
//! marks positions, so the surviving hit per `(position, candidate)`
//! minimises `(rank, order_position)`. Entry lists are pre-sorted by
//! `(candidate, rank, order_position)`, making "first entry per
//! candidate" the correct winner during the scan.

use std::collections::HashMap;

use boolfn::{Permutation, TruthTable};

use bitstream::{codec, xi, SubVectorOrder};

use super::{extend_permutation, pack_stored};

/// One `(candidate, permutation, order)` triple that matches a packed
/// stored key.
#[derive(Debug, Clone)]
pub(crate) struct Entry {
    /// Index of the candidate in the scanner's candidate list.
    pub cand: u32,
    /// Rank of `perm` in `Permutation::all(k)` enumeration order.
    pub rank: u16,
    /// Position of `order` in the scanner's order list.
    pub order_pos: u8,
    /// Matching sub-vector order.
    pub order: SubVectorOrder,
    /// Input permutation mapping the candidate onto the stored bits.
    pub perm: Permutation,
}

/// Deduplicated permuted-truth-table index over all candidates.
#[derive(Debug, Default)]
pub(crate) struct CandidateIndex {
    /// Packed stored sub-vectors → matching entries, sorted by
    /// `(cand, rank, order_pos)`.
    map: HashMap<u64, Vec<Entry>>,
    /// 65536-bit prefilter over sub-vector 0 (union of all orders and
    /// candidates).
    first: Vec<u64>,
}

impl CandidateIndex {
    /// Compiles the index for `candidates` under permutation width `k`
    /// and the given sub-vector order list.
    pub(crate) fn build(candidates: &[TruthTable], k: u8, orders: &[SubVectorOrder]) -> Self {
        let mut map: HashMap<u64, Vec<Entry>> = HashMap::new();
        let mut first = vec![0u64; 1024];
        for (cand, &f) in candidates.iter().enumerate() {
            let f6 = f.extend(6);
            // Deduplicate permuted tables, keeping the minimal rank:
            // two permutations producing the same stored bits are
            // indistinguishable at scan time, and the reference
            // algorithm reports the first.
            let mut tables: HashMap<u64, (u16, Permutation)> = HashMap::new();
            for (rank, p) in Permutation::all(k).enumerate() {
                let p6 = extend_permutation(&p, k);
                tables.entry(f6.permute(&p6).bits()).or_insert((rank as u16, p));
            }
            for (&bits, &(rank, perm)) in &tables {
                let parts = codec::split(xi::permute(bits));
                for (order_pos, &order) in orders.iter().enumerate() {
                    let idx = order.indices();
                    let stored = [parts[idx[0]], parts[idx[1]], parts[idx[2]], parts[idx[3]]];
                    first[(stored[0] >> 6) as usize] |= 1 << (stored[0] & 63);
                    map.entry(pack_stored(stored)).or_default().push(Entry {
                        cand: cand as u32,
                        rank,
                        order_pos: order_pos as u8,
                        order,
                        perm,
                    });
                }
            }
        }
        for entries in map.values_mut() {
            entries.sort_by_key(|e| (e.cand, e.rank, e.order_pos));
        }
        Self { map, first }
    }

    /// Whether any indexed key starts with sub-vector `s0`.
    #[inline]
    pub(crate) fn may_start_with(&self, s0: u16) -> bool {
        self.first[(s0 >> 6) as usize] & (1 << (s0 & 63)) != 0
    }

    /// The entries matching a packed stored key, if any.
    #[inline]
    pub(crate) fn entries(&self, key: u64) -> Option<&[Entry]> {
        self.map.get(&key).map(Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boolfn::expr::var;

    #[test]
    fn entries_sorted_and_prefilter_consistent() {
        let f = ((var(1) ^ var(2)) & var(3)).truth_table(6);
        let g = (var(1) & var(2) & var(3)).truth_table(6);
        let idx = CandidateIndex::build(&[f, g], 6, &SubVectorOrder::both());
        assert!(!idx.map.is_empty());
        for (&key, entries) in &idx.map {
            let s0 = key as u16;
            assert!(idx.may_start_with(s0), "prefilter misses indexed key");
            let mut sorted = entries.clone();
            sorted.sort_by_key(|e| (e.cand, e.rank, e.order_pos));
            assert!(
                entries
                    .iter()
                    .zip(&sorted)
                    .all(|(a, b)| (a.cand, a.rank, a.order_pos) == (b.cand, b.rank, b.order_pos)),
                "entry list not sorted"
            );
        }
    }

    #[test]
    fn dedup_keeps_minimal_rank() {
        // A totally symmetric function: every permutation produces the
        // same table, so exactly rank 0 must survive per order.
        let sym = (var(1) & var(2) & var(3) & var(4) & var(5) & var(6)).truth_table(6);
        let idx = CandidateIndex::build(&[sym], 6, &SubVectorOrder::both());
        for entries in idx.map.values() {
            for e in entries {
                assert_eq!(e.rank, 0);
            }
        }
    }
}
