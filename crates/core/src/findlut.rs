//! Algorithm 1: finding all k-input LUTs implementing a given Boolean
//! function in a bitstream.
//!
//! Two implementations are provided:
//!
//! * [`find_lut_reference`] — a literal transcription of the paper's
//!   pseudo-code: for every input permutation in `P_k`, permute the
//!   truth table, apply ξ, partition into `r` sub-vectors, and scan
//!   every byte position trying every sub-vector order in `P_r`
//!   (with position marking);
//! * [`find_lut`] — an optimized single-pass search: the ≤ `k!`
//!   permuted truth tables are precomputed and deduplicated into a
//!   hash map, and each byte position is *decoded* once per
//!   sub-vector order and looked up. This also realises the paper's
//!   "all Boolean functions within the same P equivalence class"
//!   search for free. A property test pins both implementations to
//!   each other.
//!
//! [`scan_halves`] is the complementary tool of Section VII-B: an
//! exhaustive scan that decodes a whole dual-output LUT at every byte
//! position and applies an arbitrary predicate to its two halves.

use std::collections::HashMap;

use boolfn::{DualOutputInit, Permutation, TruthTable};

use bitstream::{codec, xi, LutLocation, SubVectorOrder};

/// Search parameters (the `k`, `d` and `r` of Algorithm 1).
///
/// `r` is fixed at 4 by the 7-series LUT partitioning; `d` is the
/// sub-vector stride in bytes (one frame on our device model).
#[derive(Debug, Clone, Copy)]
pub struct FindLutParams {
    /// Number of LUT inputs `k` (2..=6).
    pub k: u8,
    /// Byte offset between consecutive sub-vectors.
    pub d: usize,
    /// Sub-vector orders to try; `None` means both known orders
    /// (SLICEL and SLICEM).
    pub orders: Option<SubVectorOrder>,
}

impl FindLutParams {
    /// Parameters for a 6-input search at sub-vector stride `d`.
    #[must_use]
    pub fn k6(d: usize) -> Self {
        Self { k: 6, d, orders: None }
    }

    fn order_list(&self) -> Vec<SubVectorOrder> {
        match self.orders {
            Some(o) => vec![o],
            None => SubVectorOrder::both().to_vec(),
        }
    }
}

/// A search hit: where a LUT implementing the function may live, and
/// under which input permutation / sub-vector order it matched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LutHit {
    /// Byte index of the first sub-vector.
    pub l: usize,
    /// Matching sub-vector order.
    pub order: SubVectorOrder,
    /// Input permutation `p` such that `candidate.permute(p)` equals
    /// the stored function.
    pub perm: Permutation,
    /// The full decoded 64-bit INIT at this location.
    pub init: DualOutputInit,
}

impl LutHit {
    /// The [`LutLocation`] of this hit at stride `d`.
    #[must_use]
    pub fn location(&self, d: usize) -> LutLocation {
        LutLocation { l: self.l, d, order: self.order }
    }
}

/// Builds the deduplicated map from permuted truth table to (one of)
/// the permutation(s) producing it.
fn permuted_tables(f: TruthTable, k: u8) -> HashMap<u64, Permutation> {
    let f6 = f.extend(6);
    let mut map = HashMap::new();
    for p in Permutation::all(k) {
        // Extend the k-permutation to 6 pins (identity on the rest).
        let mut full = [0u8; 6];
        for (j, &x) in p.as_slice().iter().enumerate() {
            full[j] = x;
        }
        for (j, slot) in full.iter_mut().enumerate().skip(k as usize) {
            *slot = j as u8;
        }
        let p6 = Permutation::from_slice(&full).expect("valid permutation");
        map.entry(f6.permute(&p6).bits()).or_insert(p);
    }
    map
}

/// Optimized FINDLUT: returns all candidate locations of `f` in
/// `data`, in ascending byte order.
///
/// The search works entirely in the *stored* domain: every input
/// permutation of `f` is ξ-permuted and partitioned up front, per
/// sub-vector order, into a hash map keyed by the four stored 16-bit
/// sub-vectors; scanning then reads 8 bytes per position and performs
/// at most one lookup per order, gated by a 2¹⁶-entry bitmap over the
/// first sub-vector that rejects ~99% of positions after a two-byte
/// read. This restores the paper's Section VI-B performance figure
/// ("for bitstreams of size less than 10 MB and k = 6, our tool takes
/// less than 4 sec") with ample margin.
#[must_use]
pub fn find_lut(data: &[u8], f: TruthTable, params: &FindLutParams) -> Vec<LutHit> {
    let mut hits = Vec::new();
    if data.len() < 3 * params.d + 2 {
        return hits;
    }
    let tables = permuted_tables(f, params.k);
    let orders = params.order_list();

    // Per order: map from packed stored sub-vectors to the matching
    // permutation, plus the first-sub-vector prefilter bitmap.
    struct OrderIndex {
        order: SubVectorOrder,
        map: HashMap<u64, Permutation>,
        first: Box<[u64; 1024]>, // 65536-bit set over sub-vector 0
    }
    let mut indexes: Vec<OrderIndex> = orders
        .iter()
        .map(|&order| OrderIndex {
            order,
            map: HashMap::with_capacity(tables.len()),
            first: vec![0u64; 1024].into_boxed_slice().try_into().expect("1024 words"),
        })
        .collect();
    for (&bits, &perm) in &tables {
        let parts = codec::split(xi::permute(bits));
        for index in &mut indexes {
            let idx = index.order.indices();
            let stored = [parts[idx[0]], parts[idx[1]], parts[idx[2]], parts[idx[3]]];
            let key = pack_stored(stored);
            index.map.entry(key).or_insert(perm);
            index.first[(stored[0] >> 6) as usize] |= 1 << (stored[0] & 63);
        }
    }

    let last = data.len() - (3 * params.d + 2);
    let d = params.d;
    for l in 0..=last {
        let s0 = u16::from_le_bytes([data[l], data[l + 1]]);
        for index in &indexes {
            if index.first[(s0 >> 6) as usize] & (1 << (s0 & 63)) == 0 {
                continue;
            }
            let stored = [
                s0,
                u16::from_le_bytes([data[l + d], data[l + d + 1]]),
                u16::from_le_bytes([data[l + 2 * d], data[l + 2 * d + 1]]),
                u16::from_le_bytes([data[l + 3 * d], data[l + 3 * d + 1]]),
            ];
            if let Some(&perm) = index.map.get(&pack_stored(stored)) {
                let init = codec::decode(stored, index.order);
                hits.push(LutHit { l, order: index.order, perm, init });
                break; // marking: do not re-report this l
            }
        }
    }
    hits
}

#[inline]
fn pack_stored(s: [u16; 4]) -> u64 {
    u64::from(s[0])
        | (u64::from(s[1]) << 16)
        | (u64::from(s[2]) << 32)
        | (u64::from(s[3]) << 48)
}

/// Literal transcription of Algorithm 1 (reference implementation,
/// used to validate [`find_lut`]).
#[must_use]
pub fn find_lut_reference(data: &[u8], f: TruthTable, params: &FindLutParams) -> Vec<LutHit> {
    let mut found: Vec<LutHit> = Vec::new();
    let mut marked = vec![false; data.len()];
    if data.len() < 3 * params.d + 2 {
        return found;
    }
    let last = data.len() - (3 * params.d + 2);
    let f6 = f.extend(6);
    // for each (i1..ik) ∈ Pk
    for p in Permutation::all(params.k) {
        // F = GETTRUTHTABLE(f, i1..ik), B = ξ(F), partitioned.
        let mut full = [0u8; 6];
        for (j, &x) in p.as_slice().iter().enumerate() {
            full[j] = x;
        }
        for (j, slot) in full.iter_mut().enumerate().skip(params.k as usize) {
            *slot = j as u8;
        }
        let p6 = Permutation::from_slice(&full).expect("valid permutation");
        let b = xi::permute(f6.permute(&p6).bits());
        let parts = codec::split(b);
        // for each l, for each (j1..jr) ∈ Pr (we restrict to the two
        // orders that occur in hardware, as the paper's Section V
        // does).
        #[allow(clippy::needless_range_loop)] // l is also the byte offset being tested
        for l in 0..=last {
            if marked[l] {
                continue;
            }
            for order in params.order_list() {
                let idx = order.indices();
                let matches = (0..4).all(|j| {
                    let at = l + j * params.d;
                    u16::from_le_bytes([data[at], data[at + 1]]) == parts[idx[j]]
                });
                if matches {
                    let mut stored = [0u16; 4];
                    for (j, sv) in stored.iter_mut().enumerate() {
                        let at = l + j * params.d;
                        *sv = u16::from_le_bytes([data[at], data[at + 1]]);
                    }
                    found.push(LutHit {
                        l,
                        order,
                        perm: p,
                        init: codec::decode(stored, order),
                    });
                    marked[l] = true;
                    break;
                }
            }
        }
    }
    found.sort_by_key(|h| h.l);
    found
}

/// Re-attempts a candidate match at a single position under a given
/// sub-vector order, returning the hit (with its permutation) if the
/// stored content is a permutation of `f`.
#[must_use]
pub fn rematch_at(
    data: &[u8],
    l: usize,
    d: usize,
    order: SubVectorOrder,
    f: TruthTable,
) -> Option<LutHit> {
    if l + 3 * d + 2 > data.len() {
        return None;
    }
    let tables = permuted_tables(f, 6);
    let mut stored = [0u16; 4];
    for (j, sv) in stored.iter_mut().enumerate() {
        let at = l + j * d;
        *sv = u16::from_le_bytes([data[at], data[at + 1]]);
    }
    let init = codec::decode(stored, order);
    tables.get(&init.init()).map(|&perm| LutHit { l, order, perm, init })
}

/// Scans every byte position, decoding the dual-output LUT stored
/// there under each sub-vector order, and reports positions where
/// `predicate` accepts the two 5-variable halves `(O5, O6)`.
///
/// This is the Section VII-B search ("all LUTs having the 2-input XOR
/// in one half of their truth table and any Boolean function of up to
/// 5 dependent variables in another"), generalised to an arbitrary
/// predicate. `range` restricts the scan (the paper's "constrained
/// search over an interval of 200,000 byte positions").
///
/// # Example
///
/// ```
/// use bitmod::findlut::scan_halves;
/// use bitstream::FRAME_BYTES;
///
/// let data = vec![0u8; 6 * FRAME_BYTES];
/// // Count LUTs whose O5 half is a 2-input XOR (none in zeroed data).
/// let hits = scan_halves(&data, FRAME_BYTES, 0..data.len(), |o5, _| {
///     o5.as_xor_pair().is_some()
/// });
/// assert!(hits.is_empty());
/// ```
#[must_use]
pub fn scan_halves<P>(
    data: &[u8],
    d: usize,
    range: core::ops::Range<usize>,
    mut predicate: P,
) -> Vec<LutHit>
where
    P: FnMut(TruthTable, TruthTable) -> bool,
{
    let mut hits = Vec::new();
    if data.len() < 3 * d + 2 {
        return hits;
    }
    let last = (data.len() - (3 * d + 2)).min(range.end.saturating_sub(1));
    for l in range.start..=last {
        for order in SubVectorOrder::both() {
            let mut stored = [0u16; 4];
            for (j, sv) in stored.iter_mut().enumerate() {
                let at = l + j * d;
                *sv = u16::from_le_bytes([data[at], data[at + 1]]);
            }
            let init = codec::decode(stored, order);
            if predicate(init.o5(), init.o6_fractured()) {
                hits.push(LutHit { l, order, perm: Permutation::identity(6), init });
                // No break: a position can satisfy the predicate
                // under both sub-vector orders, and only the order
                // matching the hosting slice type survives the
                // caller's oracle tests.
            }
        }
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use boolfn::expr::var;
    use bitstream::FRAME_BYTES;

    fn plant(data: &mut [u8], l: usize, order: SubVectorOrder, tt: TruthTable) {
        codec::write_lut(
            data,
            LutLocation { l, d: FRAME_BYTES, order },
            DualOutputInit::from_single(tt.extend(6)),
        );
    }

    #[test]
    fn finds_planted_lut_exact_position() {
        let f2 = ((var(1) ^ var(2) ^ var(3)) & var(4) & var(5) & !var(6)).truth_table(6);
        let mut data = vec![0u8; 8 * FRAME_BYTES];
        plant(&mut data, 123, SubVectorOrder::SliceL, f2);
        let hits = find_lut(&data, f2, &FindLutParams::k6(FRAME_BYTES));
        let planted: Vec<_> = hits.iter().filter(|h| h.l == 123).collect();
        assert_eq!(planted.len(), 1);
        assert_eq!(planted[0].order, SubVectorOrder::SliceL);
    }

    #[test]
    fn finds_permuted_plant() {
        // Plant f2 with scrambled pins; the search must still hit and
        // report the permutation that maps the candidate onto it.
        let f2 = ((var(1) ^ var(2) ^ var(3)) & var(4) & var(5) & !var(6)).truth_table(6);
        let p = Permutation::from_slice(&[4, 0, 5, 1, 3, 2]).unwrap();
        let stored = f2.permute(&p);
        let mut data = vec![0u8; 8 * FRAME_BYTES];
        plant(&mut data, 200, SubVectorOrder::SliceM, stored);
        let hits = find_lut(&data, f2, &FindLutParams::k6(FRAME_BYTES));
        let hit = hits.iter().find(|h| h.l == 200).expect("found");
        assert_eq!(f2.permute(&hit.perm), stored, "reported permutation reproduces storage");
    }

    #[test]
    fn optimized_equals_reference() {
        let f = (((var(1) ^ var(2)) & !var(3) & var(4) & var(5)) ^ var(6)).truth_table(6);
        // Data with structured and random-ish content.
        let mut data = vec![0u8; 6 * FRAME_BYTES];
        let mut x = 0x12345u32;
        for b in data.iter_mut() {
            x = x.wrapping_mul(1_103_515_245).wrapping_add(12_345);
            *b = (x >> 16) as u8;
        }
        plant(&mut data, 77, SubVectorOrder::SliceL, f);
        plant(&mut data, 400, SubVectorOrder::SliceM, f.permute(&Permutation::from_slice(&[1, 0, 2, 3, 4, 5]).unwrap()));
        let fast = find_lut(&data, f, &FindLutParams::k6(FRAME_BYTES));
        let slow = find_lut_reference(&data, f, &FindLutParams::k6(FRAME_BYTES));
        let fast_pos: Vec<usize> = fast.iter().map(|h| h.l).collect();
        let slow_pos: Vec<usize> = slow.iter().map(|h| h.l).collect();
        assert_eq!(fast_pos, slow_pos);
        assert!(fast_pos.contains(&77) && fast_pos.contains(&400));
    }

    #[test]
    fn small_k_functions_found() {
        // A 2-input XOR stored in a 6-LUT (unused pins don't-care).
        let xor2 = (var(1) ^ var(2)).truth_table(2);
        let mut data = vec![0u8; 6 * FRAME_BYTES];
        plant(&mut data, 50, SubVectorOrder::SliceL, xor2.extend(6));
        let hits = find_lut(&data, xor2.extend(6), &FindLutParams::k6(FRAME_BYTES));
        assert!(hits.iter().any(|h| h.l == 50));
    }

    #[test]
    fn no_false_negatives_across_all_positions() {
        let f = ((var(1) ^ var(2) ^ var(3)) & var(4) & var(5) & !var(6)).truth_table(6);
        for l in [0usize, 1, 2, 3, 401, 402] {
            let mut data = vec![0u8; 6 * FRAME_BYTES];
            plant(&mut data, l, SubVectorOrder::SliceL, f);
            let hits = find_lut(&data, f, &FindLutParams::k6(FRAME_BYTES));
            assert!(hits.iter().any(|h| h.l == l), "missed plant at {l}");
        }
    }

    #[test]
    fn empty_and_tiny_data() {
        let f = (var(1) & var(2)).truth_table(6);
        assert!(find_lut(&[], f, &FindLutParams::k6(FRAME_BYTES)).is_empty());
        assert!(find_lut(&[0u8; 64], f, &FindLutParams::k6(FRAME_BYTES)).is_empty());
    }

    #[test]
    fn scan_halves_finds_xor_half() {
        let xor = (var(2) ^ var(4)).truth_table(5);
        let other = (var(1) & var(3)).truth_table(5);
        let mut data = vec![0u8; 6 * FRAME_BYTES];
        codec::write_lut(
            &mut data,
            LutLocation { l: 99, d: FRAME_BYTES, order: SubVectorOrder::SliceL },
            DualOutputInit::from_pair(xor, other),
        );
        let hits = scan_halves(&data, FRAME_BYTES, 0..data.len(), |o5, o6| {
            o5.as_xor_pair().is_some() || o6.as_xor_pair().is_some()
        });
        assert!(hits.iter().any(|h| h.l == 99));
    }

    #[test]
    fn scan_halves_respects_range() {
        let xor = (var(1) ^ var(2)).truth_table(5);
        let mut data = vec![0u8; 6 * FRAME_BYTES];
        codec::write_lut(
            &mut data,
            LutLocation { l: 900, d: FRAME_BYTES, order: SubVectorOrder::SliceL },
            DualOutputInit::from_pair(xor, xor),
        );
        let hits = scan_halves(&data, FRAME_BYTES, 0..100, |o5, _| o5.as_xor_pair().is_some());
        assert!(hits.iter().all(|h| h.l < 100));
    }
}
