//! `bitmod` — the bitstream modification attack on SNOW 3G
//! (Moraitis & Dubrova, DATE 2020), plus the proposed countermeasure
//! and its evaluation.
//!
//! The crate implements the paper's contribution end to end:
//!
//! * [`findlut`] — Algorithm 1: the parallel multi-candidate
//!   [`Scanner`] finds every `k`-input LUT implementing any function
//!   of a candidate *set* (and their whole P equivalence classes) in
//!   one pass over a bitstream, validated against a literal
//!   transcription of the paper's pseudo-code; plus the dual-output
//!   *half scan* used by Section VII-B;
//! * [`candidates`] — the candidate-function catalogue: the paper's
//!   Table II functions `f1..f21` and the cover shapes of this
//!   repository's implementation flow, each with its stuck-at-0 fault
//!   semantics (`α`, `α₁`, `α₂`, `β`);
//! * [`oracle`] — the victim-device interface (*load bitstream, read
//!   keystream*) the attack drives;
//! * [`resilient`] — the flaky-board survival layer: retry with
//!   seeded exponential backoff, per-bit majority voting, a physical
//!   query budget and a deterministic virtual clock between the
//!   attack and the oracle;
//! * [`journal`] — the crash-safe attack journal: a versioned,
//!   CRC-guarded snapshot of an in-flight attack, written atomically
//!   after every completed work item so a killed run resumes
//!   mid-phase with a bit-identical query trace;
//! * [`campaign`] — the supervised multi-run campaign engine: a grid
//!   of attack cells with panic isolation, cooperative cancellation,
//!   per-cell deadlines and a write-ahead results journal;
//! * [`fleet`] — the attack-as-a-service layer: the validating
//!   [`SessionSpec`](fleet::SessionSpec) facade (the one way to run
//!   attacks since 0.7), a work-stealing worker pool sharding
//!   sessions across board-backed workers with kill-and-steal
//!   recovery over the crash-safe journals, and the `bitmod serve`
//!   line-protocol server plus `submit`/`status`/`tail` client;
//! * [`telemetry`] — the attack-phase telemetry engine: hierarchical
//!   spans over the attack phases, counters and histograms at the
//!   oracle chokepoints, an NDJSON event sink
//!   (`bitmod attack --trace`) and an associative [`Metrics`] rollup
//!   for campaigns — provably inert: recording never perturbs the
//!   query trace;
//! * [`edit`] — bitstream patching under a matched input permutation,
//!   with CRC repair or disable;
//! * [`attack`] — the full key-recovery pipeline of Section VI:
//!   identify the keystream-path LUTs, hypothesise the feedback-path
//!   LUTs, enter the key-independent configuration (`α₁ + β`),
//!   disambiguate the XOR input pairs with two keystream
//!   computations, inject `α`, and reverse the LFSR to the key;
//! * [`countermeasure`] — Section VII: constrained-mapping
//!   evaluation, the XOR-half candidate scan, and the Lemma VII-A
//!   complexity bounds;
//! * [`bifi`] — the untargeted BiFI baseline (the paper's reference
//!   \[23\]), demonstrating that single-LUT faults do not break
//!   SNOW 3G and motivating the targeted attack.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod bifi;
pub mod campaign;
pub mod candidates;
pub mod cli;
pub mod countermeasure;
pub mod edit;
pub mod encrypted;
pub mod error;
pub mod findlut;
pub mod fleet;
pub mod journal;
pub mod oracle;
pub mod pr;
pub mod resilient;
pub mod telemetry;

pub use attack::{Attack, AttackCheckpoint, AttackError, AttackPhase, AttackReport};
pub use campaign::{
    Campaign, CampaignError, CampaignReport, CancelToken, CellOutcome, CellRecord, CellStats,
    CellSupervisor, SupervisedOracle,
};
pub use candidates::{Catalogue, Role, Shape};
pub use encrypted::{
    demo_sca, demo_seal, EncryptedOracle, DEMO_IV, DEMO_K_AUTH, DEMO_K_ENC, SCA_TRACES_REQUIRED,
};
pub use error::Error;
#[allow(deprecated)]
pub use findlut::find_lut;
pub use findlut::{
    find_lut_reference, FindLutParams, LutHit, ScanConfigError, ScanHit, Scanner, ScannerBuilder,
};
pub use fleet::{
    ConfigError, Fleet, FleetClient, FleetConfig, FleetServer, SessionHandle, SessionIo,
    SessionOutcome, SessionReport, SessionSpec, SessionState,
};
pub use journal::{AttackJournal, JournalDoc, JournalError};
pub use oracle::{KeystreamOracle, OracleError};
pub use pr::PrOracle;
pub use resilient::{
    PolicyController, PolicyEvent, ResilienceConfig, ResilienceError, ResilientOracle,
    ResilientSnapshot, ResilientStats, RetryPolicy, VirtualClock,
};
pub use telemetry::{Histogram, Metrics, Span, Telemetry, TelemetryError};
