//! Partial-reconfiguration delta loading — the attack's fast
//! configuration path.
//!
//! A bitstream-modification attack is load-bound: every candidate
//! costs one full configuration (~hundreds of KiB over JTAG/SelectMAP
//! in the paper's setup) even though consecutive candidates differ in
//! a handful of frames. 7-series devices expose exactly the shortcut
//! this wastes: *partial reconfiguration*. A partial bitstream seeks
//! FAR to a frame address, writes only the frames that changed, and
//! leaves the rest of the configuration memory alone.
//!
//! [`PrOracle`] packages that as a transparent [`KeystreamOracle`]
//! layer:
//!
//! * the **first** load of a session ships in full and latches both
//!   the on-device image and a [`PartialForge`] built from the
//!   stream's structure;
//! * every later candidate is diffed against the tracked on-device
//!   image and shipped as a forged frame-delta partial stream —
//!   including *rollbacks*: a rejected candidate is never re-loaded,
//!   the next delta simply starts from whatever the device holds;
//! * candidates the forge cannot express (structural edits, streams
//!   whose own CRC the device would refuse) fall back to a full load,
//!   so device-visible accept/reject behaviour is preserved exactly;
//! * batched queries become serial delta *chains*: lane `i`'s delta
//!   applies to the image lane `i − 1` leaves behind, shipped through
//!   the gang-simulated partial batch.
//!
//! The layer sits *below* resilience and supervision: fault planning,
//! journaling and retries all delegate untouched, and on a
//! fault-planning oracle batched queries run as a serial loop — one
//! physical load per lane, so a run's fault trace is invariant under
//! switching load modes (`tests/partial_equivalence.rs` pins this
//! differentially).

use std::sync::Mutex;

use bitstream::{Bitstream, PartialBitstream, PartialDelta, PartialForge};

use crate::oracle::{KeystreamOracle, OracleError};
use crate::telemetry::{names, Telemetry};

/// Delta-tracking state: what the device currently holds, and the
/// forge built from the first full load's structure.
struct PrState {
    forge: Option<PartialForge>,
    image: Option<Bitstream>,
}

/// A [`KeystreamOracle`] adapter that ships every query the device can
/// take as a frame-delta partial bitstream, falling back to full
/// loads whenever it cannot prove the delta path is equivalent.
///
/// Constructed unconditionally by the session layer; with `enabled`
/// false (or an inner oracle that is not
/// [`partial_capable`](KeystreamOracle::partial_capable)) it is a pure
/// pass-through.
pub struct PrOracle<'a> {
    inner: &'a dyn KeystreamOracle,
    enabled: bool,
    telemetry: Telemetry,
    state: Mutex<PrState>,
}

impl core::fmt::Debug for PrOracle<'_> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "PrOracle(enabled: {})", self.enabled)
    }
}

impl<'a> PrOracle<'a> {
    /// Wraps `inner`. Delta loading activates only when `enabled` is
    /// set *and* the inner oracle's device has a
    /// partial-reconfiguration port; otherwise every call delegates
    /// unchanged.
    #[must_use]
    pub fn new(inner: &'a dyn KeystreamOracle, enabled: bool) -> Self {
        let enabled = enabled && inner.partial_capable();
        Self {
            inner,
            enabled,
            telemetry: Telemetry::off(),
            state: Mutex::new(PrState { forge: None, image: None }),
        }
    }

    /// Attaches a telemetry recorder; `pr.*` counters accumulate per
    /// shipped load.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Whether delta loading is actually active (flag *and* device
    /// capability).
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.enabled
    }

    /// Tries to forge a frame-delta from the tracked on-device image
    /// to `candidate`. `None` means: no image yet, no forge, or the
    /// candidate is not delta-expressible — ship a full load.
    fn forge_delta(&self, candidate: &Bitstream) -> Option<PartialDelta> {
        let mut st = self.state.lock().expect("pr state lock");
        let st = &mut *st;
        let (Some(forge), Some(image)) = (st.forge.as_mut(), st.image.as_ref()) else {
            return None;
        };
        forge.delta(image, candidate)
    }

    /// Forges the serial delta chain for a batch: lane `i` diffs
    /// against lane `i − 1` (lane 0 against the on-device image).
    /// `None` if any lane is not delta-expressible — the whole batch
    /// then ships as full loads.
    fn forge_chain(&self, bitstreams: &[Bitstream]) -> Option<Vec<PartialDelta>> {
        let mut st = self.state.lock().expect("pr state lock");
        let st = &mut *st;
        let (Some(forge), Some(image)) = (st.forge.as_mut(), st.image.as_ref()) else {
            return None;
        };
        let mut chain = Vec::with_capacity(bitstreams.len());
        let mut prev = image;
        for bs in bitstreams {
            chain.push(forge.delta(prev, bs)?);
            prev = bs;
        }
        Some(chain)
    }

    /// A full load, with image/forge bookkeeping: success latches the
    /// candidate as the on-device image (and builds the forge from the
    /// first such stream); failure clears the image so the next load
    /// ships in full again.
    fn full_load(&self, bitstream: &Bitstream, words: usize) -> Result<Vec<u32>, OracleError> {
        let out = self.inner.keystream(bitstream, words);
        let mut st = self.state.lock().expect("pr state lock");
        match &out {
            Ok(_) => {
                if st.forge.is_none() {
                    st.forge = PartialForge::new(bitstream);
                }
                st.image = Some(bitstream.clone());
            }
            Err(_) => st.image = None,
        }
        drop(st);
        self.telemetry.incr(names::PR_FULL_LOADS, 1);
        self.telemetry.incr(names::PR_BYTES_SHIPPED, bitstream.len() as u64);
        out
    }

    /// Clears the tracked image (the forge survives: it encodes the
    /// reference *structure*, not device state).
    fn clear_image(&self) {
        self.state.lock().expect("pr state lock").image = None;
    }
}

impl KeystreamOracle for PrOracle<'_> {
    fn keystream(&self, bitstream: &Bitstream, words: usize) -> Result<Vec<u32>, OracleError> {
        if !self.enabled {
            return self.inner.keystream(bitstream, words);
        }
        let Some(delta) = self.forge_delta(bitstream) else {
            return self.full_load(bitstream, words);
        };
        let out = self.inner.keystream_partial(&delta.stream, words);
        // Conservative image tracking: only a clean success proves the
        // device now holds `bitstream`. Any error — transient faults
        // included — drops to a full load on the next query, which is
        // correct regardless of what the device actually holds.
        match &out {
            Ok(_) => {
                self.state.lock().expect("pr state lock").image = Some(bitstream.clone());
            }
            Err(_) => self.clear_image(),
        }
        self.telemetry.incr(names::PR_PARTIAL_LOADS, 1);
        self.telemetry.incr(names::PR_FRAMES_WRITTEN, delta.frames_written as u64);
        self.telemetry.incr(names::PR_BYTES_SHIPPED, delta.stream.len() as u64);
        out
    }

    fn keystream_batch(
        &self,
        bitstreams: &[Bitstream],
        words: usize,
    ) -> Vec<Result<Vec<u32>, OracleError>> {
        if !self.enabled {
            return self.inner.keystream_batch(bitstreams, words);
        }
        if self.inner.fault_planning() {
            // A fault-modelled oracle batches as a serial loop (its
            // default), so route each lane through `keystream`: one
            // physical load per lane, drawing the identical fault
            // plan a full load at the same index would.
            return bitstreams.iter().map(|bs| self.keystream(bs, words)).collect();
        }
        match self.forge_chain(bitstreams) {
            Some(chain) => {
                let partials: Vec<PartialBitstream> =
                    chain.iter().map(|d| d.stream.clone()).collect();
                let out = self.inner.keystream_partial_batch_clean(&partials, words);
                match (bitstreams.last(), out.iter().all(Result::is_ok)) {
                    (Some(last), true) => {
                        self.state.lock().expect("pr state lock").image = Some(last.clone());
                    }
                    _ => self.clear_image(),
                }
                for d in &chain {
                    self.telemetry.incr(names::PR_PARTIAL_LOADS, 1);
                    self.telemetry.incr(names::PR_FRAMES_WRITTEN, d.frames_written as u64);
                    self.telemetry.incr(names::PR_BYTES_SHIPPED, d.stream.len() as u64);
                }
                out
            }
            None => {
                let out = self.inner.keystream_batch(bitstreams, words);
                // A full batch on the simulated board runs through the
                // differential gang decoder, which never materialises
                // a frame image — the device-side partial base is
                // gone, so ours must be too.
                self.clear_image();
                self.telemetry.incr(names::PR_FULL_LOADS, bitstreams.len() as u64);
                self.telemetry
                    .incr(names::PR_BYTES_SHIPPED, bitstreams.iter().map(|b| b.len() as u64).sum());
                out
            }
        }
    }

    fn state_snapshot(&self) -> Option<Vec<u8>> {
        self.inner.state_snapshot()
    }

    fn restore_state(&self, state: &[u8]) -> Result<(), OracleError> {
        // A restore rewinds the fault model to a journaled position;
        // the device is about to be reloaded from scratch, so drop
        // any delta-tracking state.
        self.clear_image();
        self.inner.restore_state(state)
    }

    fn fault_planning(&self) -> bool {
        self.inner.fault_planning()
    }

    fn plan_read(&self, ahead: u64, words: usize) -> Option<fpga_sim::ReadPlan> {
        self.inner.plan_read(ahead, words)
    }

    fn commit_reads(&self, plans: &[fpga_sim::ReadPlan]) {
        self.inner.commit_reads(plans);
    }

    fn keystream_batch_clean(
        &self,
        bitstreams: &[Bitstream],
        words: usize,
    ) -> Vec<Result<Vec<u32>, OracleError>> {
        if !self.enabled {
            return self.inner.keystream_batch_clean(bitstreams, words);
        }
        match self.forge_chain(bitstreams) {
            Some(chain) => {
                let partials: Vec<PartialBitstream> =
                    chain.iter().map(|d| d.stream.clone()).collect();
                let out = self.inner.keystream_partial_batch_clean(&partials, words);
                match (bitstreams.last(), out.iter().all(Result::is_ok)) {
                    (Some(last), true) => {
                        self.state.lock().expect("pr state lock").image = Some(last.clone());
                    }
                    _ => self.clear_image(),
                }
                for d in &chain {
                    self.telemetry.incr(names::PR_PARTIAL_LOADS, 1);
                    self.telemetry.incr(names::PR_FRAMES_WRITTEN, d.frames_written as u64);
                    self.telemetry.incr(names::PR_BYTES_SHIPPED, d.stream.len() as u64);
                }
                out
            }
            None => {
                let out = self.inner.keystream_batch_clean(bitstreams, words);
                self.clear_image();
                self.telemetry.incr(names::PR_FULL_LOADS, bitstreams.len() as u64);
                self.telemetry
                    .incr(names::PR_BYTES_SHIPPED, bitstreams.iter().map(|b| b.len() as u64).sum());
                out
            }
        }
    }

    fn resolve_plan(
        &self,
        plan: &fpga_sim::ReadPlan,
        clean: Result<Vec<u32>, OracleError>,
        want: usize,
    ) -> Result<Vec<u32>, OracleError> {
        self.inner.resolve_plan(plan, clean, want)
    }

    fn partial_capable(&self) -> bool {
        self.inner.partial_capable()
    }

    fn keystream_partial(
        &self,
        partial: &PartialBitstream,
        words: usize,
    ) -> Result<Vec<u32>, OracleError> {
        self.inner.keystream_partial(partial, words)
    }

    fn keystream_partial_batch_clean(
        &self,
        partials: &[PartialBitstream],
        words: usize,
    ) -> Vec<Result<Vec<u32>, OracleError>> {
        self.inner.keystream_partial_batch_clean(partials, words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::Metrics;
    use fpga_sim::{ImplementOptions, Snow3gBoard};
    use netlist::snow3g_circuit::Snow3gCircuitConfig;
    use snow3g::vectors::{TEST_SET_1_IV, TEST_SET_1_KEY};

    fn board() -> Snow3gBoard {
        Snow3gBoard::build(
            Snow3gCircuitConfig::unprotected(TEST_SET_1_KEY, TEST_SET_1_IV),
            &ImplementOptions::default(),
        )
        .expect("board")
    }

    /// One payload-edit variant of `golden` with a repaired CRC.
    fn variant(golden: &Bitstream, offset: usize, mask: u8) -> Bitstream {
        let mut v = golden.clone();
        let range = v.fdri_data_range().expect("payload");
        v.as_mut_bytes()[range.start + offset] ^= mask;
        v.recompute_crc();
        v
    }

    fn counters(t: &Telemetry) -> Metrics {
        t.metrics()
    }

    #[test]
    fn serial_queries_go_partial_after_the_first_full_load() {
        let b = board();
        let golden = b.extract_bitstream();
        let telemetry = Telemetry::new();
        let pr = PrOracle::new(&b, true).with_telemetry(telemetry.clone());
        assert!(pr.is_active());

        // First load: full (nothing on the device yet).
        let z_golden = pr.keystream(&golden, 4).expect("first load");
        assert_eq!(z_golden, b.generate_keystream(&golden, 4).expect("direct"));

        // Second query: ships as a delta, same keystream as a full
        // load of the candidate.
        let cand = variant(&golden, 512, 0x40);
        let z_cand = pr.keystream(&cand, 4).expect("delta load");
        assert_eq!(z_cand, b.generate_keystream(&cand, 4).expect("direct"));

        // Rollback: revisiting the golden rides the next delta.
        let z_back = pr.keystream(&golden, 4).expect("rollback");
        assert_eq!(z_back, z_golden);

        let m = counters(&telemetry);
        assert_eq!(m.counter(names::PR_FULL_LOADS), 1);
        assert_eq!(m.counter(names::PR_PARTIAL_LOADS), 2);
        assert!(
            m.counter(names::PR_BYTES_SHIPPED) < 2 * golden.len() as u64,
            "three loads must ship well under three full streams"
        );
    }

    #[test]
    fn disabled_oracle_is_a_pure_pass_through() {
        let b = board();
        let golden = b.extract_bitstream();
        let telemetry = Telemetry::new();
        let pr = PrOracle::new(&b, false).with_telemetry(telemetry.clone());
        assert!(!pr.is_active());
        pr.keystream(&golden, 2).expect("load");
        pr.keystream(&variant(&golden, 64, 0x08), 2).expect("load");
        assert!(counters(&telemetry).is_empty(), "no pr.* accounting when disabled");
    }

    #[test]
    fn batches_ship_as_serial_delta_chains() {
        let b = board();
        let golden = b.extract_bitstream();
        let pr = PrOracle::new(&b, true);
        pr.keystream(&golden, 2).expect("first full load");

        let lanes = vec![variant(&golden, 0, 0x01), variant(&golden, 4096, 0x80), golden.clone()];
        let batched = pr.keystream_batch(&lanes, 3);
        for (i, bs) in lanes.iter().enumerate() {
            let direct = b.generate_keystream(bs, 3).expect("direct");
            assert_eq!(batched[i].as_ref().expect("lane ok"), &direct, "lane {i}");
        }

        // And the image tracked through the chain is the last lane:
        // the next serial query deltas from it successfully.
        let next = variant(&golden, 128, 0x02);
        let z = pr.keystream(&next, 3).expect("delta from batch tail");
        assert_eq!(z, b.generate_keystream(&next, 3).expect("direct"));
    }

    #[test]
    fn structural_candidates_fall_back_to_full_loads() {
        let b = board();
        let golden = b.extract_bitstream();
        let telemetry = Telemetry::new();
        let pr = PrOracle::new(&b, true).with_telemetry(telemetry.clone());
        pr.keystream(&golden, 2).expect("first full load");

        // A payload edit *without* a CRC repair: the candidate's own
        // stored CRC is wrong, so it is not delta-expressible (a
        // partial write would launder the bad CRC away) — it must
        // ship in full and draw the *same* refusal the full stream
        // gets.
        let mut bad_crc = golden.clone();
        let range = bad_crc.fdri_data_range().expect("payload");
        bad_crc.as_mut_bytes()[range.start + 256] ^= 0x04;
        let err = pr.keystream(&bad_crc, 2).expect_err("refused");
        let direct = b.generate_keystream(&bad_crc, 2).expect_err("refused directly");
        assert_eq!(err.to_string(), format!("device refused configuration: {direct}"));
        let m = counters(&telemetry);
        assert_eq!(m.counter(names::PR_FULL_LOADS), 2, "fallback ships in full");

        // The failed full load cleared the image: the next good query
        // ships in full again, then deltas resume.
        pr.keystream(&golden, 2).expect("full reload");
        pr.keystream(&variant(&golden, 40, 0x10), 2).expect("delta resumes");
        let m = counters(&telemetry);
        assert_eq!(m.counter(names::PR_FULL_LOADS), 3);
        assert_eq!(m.counter(names::PR_PARTIAL_LOADS), 1);
    }
}
