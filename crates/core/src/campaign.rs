//! Supervised multi-run attack campaigns.
//!
//! A robustness experiment (EXPERIMENTS.md) is not one attack but a
//! *grid* of them — noise profiles × seeds — and the grid is where
//! durability problems compound: one cell panicking must not take
//! down the sweep, an operator must be able to stop a campaign
//! cleanly between (or inside) cells, a runaway cell must not starve
//! the rest, and a killed campaign must restart at the first
//! incomplete cell instead of re-running hours of finished ones.
//!
//! The [`Campaign`] engine supervises each cell:
//!
//! * **panic isolation** — every cell runs under
//!   [`std::panic::catch_unwind`]; a panicking cell becomes a
//!   [`CellOutcome::Panicked`] row and the campaign continues;
//! * **cooperative cancellation** — a shared [`CancelToken`] is
//!   checked between cells and, through [`CellSupervisor::supervise`],
//!   at every oracle query inside a cell;
//! * **per-cell deadlines** — a wall-clock budget enforced at the
//!   same oracle chokepoint (the virtual-clock analogue is
//!   [`crate::resilient::ResilienceConfig::with_deadline_ms`]);
//! * **write-ahead results journal** — after each completed cell the
//!   full result list is atomically rewritten (same temp-file +
//!   `sync_all` + rename discipline as [`crate::journal`]), guarded
//!   by a fingerprint of the cell grid, so a resumed campaign skips
//!   exactly the cells that finished.
//!
//! Cancelled cells are deliberately *not* journalled: cancellation is
//! an operator pause, and the next run should pick those cells up
//! again.

use core::fmt;
use std::fs;
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bitstream::Bitstream;

use crate::journal::{frame, unframe, write_atomic, Dec, Enc, JournalError};
use crate::oracle::{KeystreamOracle, OracleError};
use crate::telemetry::{names, Metrics, Telemetry};

/// The 8-byte campaign-journal file magic.
pub const CAMPAIGN_MAGIC: [u8; 8] = *b"BMODCAMP";

/// The current campaign-journal format version.
pub const CAMPAIGN_VERSION: u16 = 1;

/// A cooperative cancellation flag shared between the campaign runner
/// and whoever supervises it (a signal handler, a watchdog thread, a
/// test). Cloning shares the flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Physical-query accounting for one cell, mirroring the columns of
/// the noise-sweep table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CellStats {
    /// Physical bitstream loads the board saw.
    pub physical: u64,
    /// Logical keystream queries the attack issued.
    pub logical: u64,
    /// Transient errors absorbed by the retry layer.
    pub retries: u64,
    /// Virtual milliseconds spent backing off.
    pub backoff_ms: u64,
}

/// How one cell ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellOutcome {
    /// The attack recovered the expected key.
    Recovered(CellStats),
    /// The cell ran to completion but did not recover the key; the
    /// note carries the typed failure (empty when the attack finished
    /// with a wrong key).
    Failed {
        /// Accounting up to the failure, when available.
        stats: CellStats,
        /// The typed error, or empty for a wrong-key completion.
        note: String,
    },
    /// The cell panicked; the campaign caught it and moved on.
    Panicked {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The campaign was cancelled before or during this cell. Never
    /// journalled: a resumed campaign re-runs cancelled cells.
    Cancelled,
}

impl CellOutcome {
    /// Whether this cell recovered the key.
    #[must_use]
    pub fn recovered(&self) -> bool {
        matches!(self, CellOutcome::Recovered(_))
    }
}

impl fmt::Display for CellOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellOutcome::Recovered(_) => write!(f, "recovered"),
            CellOutcome::Failed { note, .. } if note.is_empty() => write!(f, "failed"),
            CellOutcome::Failed { note, .. } => write!(f, "failed: {note}"),
            CellOutcome::Panicked { message } => write!(f, "panicked: {message}"),
            CellOutcome::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// One row of a campaign report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellRecord {
    /// The cell's label (also its identity in the journal).
    pub label: String,
    /// How the cell ended.
    pub outcome: CellOutcome,
    /// Whether the outcome was replayed from the journal rather than
    /// run in this process.
    pub resumed: bool,
}

/// The end-of-run summary: one record per grid cell, in grid order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignReport {
    /// Per-cell outcomes, one per grid cell that was reached.
    pub cells: Vec<CellRecord>,
    /// Telemetry rollup across the cells that ran in this process:
    /// every cell's metrics folded together with the associative
    /// [`Metrics::merge`] (journal-replayed cells contribute
    /// nothing — their effort was spent in the earlier process).
    pub metrics: Metrics,
}

impl CampaignReport {
    /// Cells that recovered the key.
    #[must_use]
    pub fn recovered_count(&self) -> usize {
        self.cells.iter().filter(|c| c.outcome.recovered()).count()
    }

    /// Cells replayed from the journal.
    #[must_use]
    pub fn resumed_count(&self) -> usize {
        self.cells.iter().filter(|c| c.resumed).count()
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = self.cells.iter().map(|c| c.label.len()).max().unwrap_or(4).max(4);
        writeln!(f, "{:width$} | outcome", "cell")?;
        for cell in &self.cells {
            let resumed = if cell.resumed { " (journalled)" } else { "" };
            writeln!(f, "{:width$} | {}{resumed}", cell.label, cell.outcome)?;
        }
        write!(
            f,
            "{}/{} recovered, {} resumed from journal",
            self.recovered_count(),
            self.cells.len(),
            self.resumed_count()
        )
    }
}

/// A campaign-level failure. Cell-level failures are *outcomes*, not
/// errors; this type covers the harness itself (journal I/O or a
/// journal recorded against a different grid).
#[derive(Debug)]
#[non_exhaustive]
pub enum CampaignError {
    /// The campaign journal could not be read, decoded or written.
    Journal(JournalError),
    /// The journal was recorded against a different cell grid.
    GridMismatch {
        /// Fingerprint stored in the journal.
        journalled: u64,
        /// Fingerprint of the grid offered for resume.
        computed: u64,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Journal(e) => write!(f, "campaign journal: {e}"),
            CampaignError::GridMismatch { journalled, computed } => write!(
                f,
                "campaign journal records a different cell grid \
                 (fingerprint {journalled:#018x}, this grid is {computed:#018x})"
            ),
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Journal(e) => Some(e),
            CampaignError::GridMismatch { .. } => None,
        }
    }
}

impl From<JournalError> for CampaignError {
    fn from(e: JournalError) -> Self {
        CampaignError::Journal(e)
    }
}

/// The per-cell supervision handle passed to each cell closure. Wrap
/// the cell's oracle with [`CellSupervisor::supervise`] so
/// cancellation and the wall-clock deadline take effect at every
/// query, not just between cells.
#[derive(Debug)]
pub struct CellSupervisor {
    cancel: CancelToken,
    deadline: Option<Instant>,
    telemetry: Telemetry,
}

impl CellSupervisor {
    /// A free-standing supervisor over an explicit token, deadline
    /// and recorder. The campaign engine builds these internally per
    /// cell; the session facade and fleet workers build them directly
    /// so every execution path shares the same oracle chokepoint.
    #[must_use]
    pub fn new(cancel: CancelToken, deadline: Option<Instant>, telemetry: Telemetry) -> Self {
        Self { cancel, deadline, telemetry }
    }

    /// Whether campaign cancellation has been requested.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.cancel.is_cancelled()
    }

    /// The cooperative cancel token this supervisor enforces — what a
    /// cell passes into the session facade so one token stops both
    /// layers.
    #[must_use]
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// The wall-clock deadline this supervisor enforces, if any.
    #[must_use]
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// This cell's telemetry recorder. Pass it to
    /// [`crate::attack::Attack::instrumented`] (or record into it
    /// directly) and the campaign folds the cell's metrics into the
    /// report rollup when the cell completes.
    #[must_use]
    pub fn telemetry(&self) -> Telemetry {
        self.telemetry.clone()
    }

    /// Wraps an oracle so every query first checks the cancellation
    /// token and this cell's wall-clock deadline. Both surface as the
    /// non-transient [`OracleError::Rejected`], which the resilience
    /// layer aborts on immediately instead of retrying.
    #[must_use]
    pub fn supervise<'a>(&'a self, inner: &'a dyn KeystreamOracle) -> SupervisedOracle<'a> {
        SupervisedOracle {
            inner,
            cancel: self.cancel.clone(),
            deadline: self.deadline,
            telemetry: self.telemetry.clone(),
        }
    }
}

/// An oracle wrapper that enforces campaign supervision at the query
/// chokepoint. See [`CellSupervisor::supervise`].
pub struct SupervisedOracle<'a> {
    inner: &'a dyn KeystreamOracle,
    cancel: CancelToken,
    deadline: Option<Instant>,
    telemetry: Telemetry,
}

impl KeystreamOracle for SupervisedOracle<'_> {
    fn keystream(&self, bitstream: &Bitstream, words: usize) -> Result<Vec<u32>, OracleError> {
        self.telemetry.incr(names::SUPERVISED_CALLS, 1);
        if self.cancel.is_cancelled() {
            self.telemetry.incr(names::SUPERVISED_REJECTIONS, 1);
            return Err(OracleError::Rejected("campaign cancelled".into()));
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() > deadline {
                self.telemetry.incr(names::SUPERVISED_REJECTIONS, 1);
                return Err(OracleError::Rejected("cell wall-clock deadline exceeded".into()));
            }
        }
        self.inner.keystream(bitstream, words)
    }

    /// Batches pass through to the inner oracle's wide path (the
    /// 64-lane gang simulator) after one supervision check — the
    /// whole batch is one device pass, so cancellation cannot land
    /// between its lanes any more than it could land mid-keystream.
    fn keystream_batch(
        &self,
        bitstreams: &[Bitstream],
        words: usize,
    ) -> Vec<Result<Vec<u32>, OracleError>> {
        self.telemetry.incr(names::SUPERVISED_CALLS, 1);
        if self.cancel.is_cancelled() {
            self.telemetry.incr(names::SUPERVISED_REJECTIONS, 1);
            return bitstreams
                .iter()
                .map(|_| Err(OracleError::Rejected("campaign cancelled".into())))
                .collect();
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() > deadline {
                self.telemetry.incr(names::SUPERVISED_REJECTIONS, 1);
                return bitstreams
                    .iter()
                    .map(|_| Err(OracleError::Rejected("cell wall-clock deadline exceeded".into())))
                    .collect();
            }
        }
        self.inner.keystream_batch(bitstreams, words)
    }

    fn state_snapshot(&self) -> Option<Vec<u8>> {
        self.inner.state_snapshot()
    }

    fn restore_state(&self, state: &[u8]) -> Result<(), OracleError> {
        self.inner.restore_state(state)
    }

    // Fault planning forwards verbatim: plans and clean reads carry
    // no supervision of their own because the *committing* call paths
    // above already gate every batch, and a cancellation that lands
    // between planning and commit surfaces on the next supervised
    // query exactly as it would between two serial queries.
    fn fault_planning(&self) -> bool {
        self.inner.fault_planning()
    }

    fn plan_read(&self, ahead: u64, words: usize) -> Option<fpga_sim::ReadPlan> {
        self.inner.plan_read(ahead, words)
    }

    fn commit_reads(&self, plans: &[fpga_sim::ReadPlan]) {
        self.inner.commit_reads(plans);
    }

    fn keystream_batch_clean(
        &self,
        bitstreams: &[Bitstream],
        words: usize,
    ) -> Vec<Result<Vec<u32>, OracleError>> {
        self.telemetry.incr(names::SUPERVISED_CALLS, 1);
        if self.cancel.is_cancelled() {
            self.telemetry.incr(names::SUPERVISED_REJECTIONS, 1);
            return bitstreams
                .iter()
                .map(|_| Err(OracleError::Rejected("campaign cancelled".into())))
                .collect();
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() > deadline {
                self.telemetry.incr(names::SUPERVISED_REJECTIONS, 1);
                return bitstreams
                    .iter()
                    .map(|_| Err(OracleError::Rejected("cell wall-clock deadline exceeded".into())))
                    .collect();
            }
        }
        self.inner.keystream_batch_clean(bitstreams, words)
    }

    fn resolve_plan(
        &self,
        plan: &fpga_sim::ReadPlan,
        clean: Result<Vec<u32>, OracleError>,
        want: usize,
    ) -> Result<Vec<u32>, OracleError> {
        self.inner.resolve_plan(plan, clean, want)
    }
}

/// The supervised multi-run campaign engine. Configure, then
/// [`Campaign::run`] a closure once per grid cell.
#[derive(Debug, Clone, Default)]
pub struct Campaign {
    journal: Option<PathBuf>,
    cell_deadline: Option<Duration>,
    cancel: CancelToken,
    telemetry: Telemetry,
}

impl Campaign {
    /// A campaign with no journal, no deadline and a fresh token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Persists completed cells to `path` (write-ahead, atomic) and
    /// resumes from it when it already exists.
    #[must_use]
    pub fn with_journal(mut self, path: impl Into<PathBuf>) -> Self {
        self.journal = Some(path.into());
        self
    }

    /// A wall-clock budget applied to each cell individually.
    #[must_use]
    pub fn with_cell_deadline(mut self, deadline: Duration) -> Self {
        self.cell_deadline = Some(deadline);
        self
    }

    /// Shares an externally owned cancellation token (e.g. one a
    /// signal handler flips).
    #[must_use]
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// A clone of the campaign's cancellation token.
    #[must_use]
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Streams campaign-level telemetry (one `cell` event per live
    /// cell, carrying its merged metrics) into `telemetry`. The
    /// per-cell rollup in [`CampaignReport::metrics`] works with or
    /// without this.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Runs the campaign: `cell(i, supervisor)` once per label, in
    /// order, each under panic isolation. With a journal configured,
    /// previously completed cells are replayed from disk instead of
    /// re-run, and each newly completed cell is persisted before the
    /// next starts.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Journal`] on journal I/O or decode failure;
    /// [`CampaignError::GridMismatch`] when an existing journal was
    /// recorded against a different label list.
    pub fn run<F>(&self, labels: &[String], mut cell: F) -> Result<CampaignReport, CampaignError>
    where
        F: FnMut(usize, &CellSupervisor) -> CellOutcome,
    {
        let fingerprint = grid_fingerprint(labels);
        let mut cells: Vec<CellRecord> = self
            .load_journal(labels, fingerprint)?
            .into_iter()
            .map(|(label, outcome)| CellRecord { label, outcome, resumed: true })
            .collect();
        let mut rollup = Metrics::new();

        for (i, label) in labels.iter().enumerate().skip(cells.len()) {
            if self.cancel.is_cancelled() {
                cells.extend(labels[i..].iter().map(|label| CellRecord {
                    label: clone_label(label),
                    outcome: CellOutcome::Cancelled,
                    resumed: false,
                }));
                break;
            }
            // Every cell gets a live recorder regardless of whether
            // campaign-level tracing is on: the rollup in the report
            // must not depend on `--trace`.
            let supervisor = CellSupervisor {
                cancel: self.cancel.clone(),
                deadline: self.cell_deadline.map(|d| Instant::now() + d),
                telemetry: Telemetry::new(),
            };
            let outcome = match panic::catch_unwind(AssertUnwindSafe(|| cell(i, &supervisor))) {
                Ok(outcome) => outcome,
                Err(payload) => CellOutcome::Panicked { message: panic_message(&*payload) },
            };
            // A cancel raised mid-cell surfaces as a failed (oracle
            // rejected) or explicitly Cancelled outcome; either way
            // the cell did not finish on its own merits, so it is
            // recorded as cancelled and left out of the journal for
            // the next run to redo. A genuine recovery that raced the
            // token stands.
            let outcome = if (self.cancel.is_cancelled() && !outcome.recovered())
                || outcome == CellOutcome::Cancelled
            {
                CellOutcome::Cancelled
            } else {
                outcome
            };
            let cell_metrics = supervisor.telemetry.metrics();
            rollup.merge(&cell_metrics);
            self.telemetry.record_cell(label, &outcome.to_string(), &cell_metrics);
            let completed = outcome != CellOutcome::Cancelled;
            cells.push(CellRecord { label: clone_label(label), outcome, resumed: false });
            if completed {
                self.save_journal(fingerprint, &cells)?;
            }
        }

        Ok(CampaignReport { cells, metrics: rollup })
    }

    fn load_journal(
        &self,
        labels: &[String],
        fingerprint: u64,
    ) -> Result<Vec<(String, CellOutcome)>, CampaignError> {
        let Some(path) = &self.journal else { return Ok(Vec::new()) };
        let bytes = match fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(JournalError::Io(e).into()),
        };
        let payload = unframe(CAMPAIGN_MAGIC, CAMPAIGN_VERSION, &bytes)?;
        let mut dec = Dec::new(payload);
        let journalled = dec.u64()?;
        if journalled != fingerprint {
            return Err(CampaignError::GridMismatch { journalled, computed: fingerprint });
        }
        let records = decode_records(&mut dec)?;
        if !dec.is_empty() {
            return Err(JournalError::Malformed(format!(
                "{} undecoded campaign-journal bytes",
                dec.remaining()
            ))
            .into());
        }
        if records.len() > labels.len() {
            return Err(JournalError::Malformed(format!(
                "journal has {} cells, grid has {}",
                records.len(),
                labels.len()
            ))
            .into());
        }
        for ((label, _), expected) in records.iter().zip(labels) {
            if label != expected {
                return Err(JournalError::Malformed(format!(
                    "journalled cell '{label}' where grid expects '{expected}'"
                ))
                .into());
            }
        }
        Ok(records)
    }

    fn save_journal(&self, fingerprint: u64, cells: &[CellRecord]) -> Result<(), CampaignError> {
        let Some(path) = &self.journal else { return Ok(()) };
        let mut enc = Enc::new();
        enc.u64(fingerprint);
        let completed: Vec<&CellRecord> =
            cells.iter().filter(|c| c.outcome != CellOutcome::Cancelled).collect();
        enc.seq(&completed, |enc, record| {
            enc.str(&record.label);
            encode_outcome(enc, &record.outcome);
        });
        let framed = frame(CAMPAIGN_MAGIC, CAMPAIGN_VERSION, &enc.into_bytes());
        write_atomic(path, &framed)?;
        Ok(())
    }
}

/// FNV-1a over the label list, with a separator byte so label
/// boundaries matter.
fn grid_fingerprint(labels: &[String]) -> u64 {
    fn step(h: u64, b: u8) -> u64 {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for label in labels {
        for &b in label.as_bytes() {
            h = step(h, b);
        }
        h = step(h, 0xff);
    }
    h
}

fn clone_label(label: &str) -> String {
    label.to_string()
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else {
        "non-string panic payload".to_string()
    }
}

fn encode_outcome(enc: &mut Enc, outcome: &CellOutcome) {
    match outcome {
        CellOutcome::Recovered(stats) => {
            enc.u8(0);
            encode_stats(enc, stats);
        }
        CellOutcome::Failed { stats, note } => {
            enc.u8(1);
            encode_stats(enc, stats);
            enc.str(note);
        }
        CellOutcome::Panicked { message } => {
            enc.u8(2);
            enc.str(message);
        }
        // Filtered out before encoding; encoding it would make a
        // resumed campaign skip a cell that never finished.
        CellOutcome::Cancelled => unreachable!("cancelled cells are never journalled"),
    }
}

fn encode_stats(enc: &mut Enc, stats: &CellStats) {
    enc.u64(stats.physical);
    enc.u64(stats.logical);
    enc.u64(stats.retries);
    enc.u64(stats.backoff_ms);
}

fn decode_records(dec: &mut Dec<'_>) -> Result<Vec<(String, CellOutcome)>, JournalError> {
    dec.seq(|dec| {
        let label = dec.str()?.to_string();
        let outcome = match dec.u8()? {
            0 => CellOutcome::Recovered(decode_stats(dec)?),
            1 => CellOutcome::Failed { stats: decode_stats(dec)?, note: dec.str()?.to_string() },
            2 => CellOutcome::Panicked { message: dec.str()?.to_string() },
            tag => return Err(JournalError::Malformed(format!("unknown cell-outcome tag {tag}"))),
        };
        Ok((label, outcome))
    })
}

fn decode_stats(dec: &mut Dec<'_>) -> Result<CellStats, JournalError> {
    Ok(CellStats {
        physical: dec.u64()?,
        logical: dec.u64()?,
        retries: dec.u64()?,
        backoff_ms: dec.u64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn tempdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("bitmod-campaign-{tag}-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("tempdir");
        dir
    }

    fn labels(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("cell-{i}")).collect()
    }

    fn ok_stats() -> CellStats {
        CellStats { physical: 10, logical: 5, retries: 1, backoff_ms: 40 }
    }

    #[test]
    fn a_panicking_cell_is_isolated_and_the_campaign_continues() {
        let report = Campaign::new()
            .run(&labels(3), |i, _| {
                if i == 1 {
                    panic!("cell {i} exploded");
                }
                CellOutcome::Recovered(ok_stats())
            })
            .expect("runs");
        assert_eq!(report.cells.len(), 3);
        assert_eq!(report.recovered_count(), 2);
        assert_eq!(
            report.cells[1].outcome,
            CellOutcome::Panicked { message: "cell 1 exploded".into() }
        );
        let rendered = report.to_string();
        assert!(rendered.contains("panicked: cell 1 exploded"), "{rendered}");
        assert!(rendered.contains("2/3 recovered"), "{rendered}");
    }

    #[test]
    fn cancellation_stops_the_campaign_and_marks_remaining_cells() {
        let campaign = Campaign::new();
        let token = campaign.cancel_token();
        let ran = AtomicUsize::new(0);
        let report = campaign
            .run(&labels(4), |i, _| {
                ran.fetch_add(1, Ordering::Relaxed);
                if i == 1 {
                    // An operator pulls the plug mid-cell: the cell's
                    // own outcome is discounted.
                    token.cancel();
                    return CellOutcome::Failed {
                        stats: CellStats::default(),
                        note: "campaign cancelled".into(),
                    };
                }
                CellOutcome::Recovered(ok_stats())
            })
            .expect("runs");
        assert_eq!(ran.load(Ordering::Relaxed), 2, "cells after the cancel never start");
        assert_eq!(report.cells.len(), 4, "every grid cell gets a row");
        assert!(report.cells[0].outcome.recovered());
        for cell in &report.cells[1..] {
            assert_eq!(cell.outcome, CellOutcome::Cancelled);
        }
    }

    #[test]
    fn a_recovery_that_races_the_cancel_token_stands() {
        let campaign = Campaign::new();
        let token = campaign.cancel_token();
        let report = campaign
            .run(&labels(2), |_, _| {
                token.cancel();
                CellOutcome::Recovered(ok_stats())
            })
            .expect("runs");
        assert!(report.cells[0].outcome.recovered());
        assert_eq!(report.cells[1].outcome, CellOutcome::Cancelled);
    }

    #[test]
    fn the_supervised_oracle_enforces_cancellation_and_deadline() {
        struct Null;
        impl KeystreamOracle for Null {
            fn keystream(&self, _: &Bitstream, words: usize) -> Result<Vec<u32>, OracleError> {
                Ok(vec![0; words])
            }
        }
        let bs = Bitstream::from_bytes(vec![0; 8]);

        let cancel = CancelToken::new();
        let supervisor =
            CellSupervisor { cancel: cancel.clone(), deadline: None, telemetry: Telemetry::new() };
        let oracle = supervisor.supervise(&Null);
        assert_eq!(oracle.keystream(&bs, 2).expect("clean"), vec![0, 0]);
        cancel.cancel();
        let err = oracle.keystream(&bs, 2).expect_err("cancelled");
        assert!(!err.is_transient(), "cancellation must not be retried");
        assert!(err.to_string().contains("cancelled"), "{err}");
        let m = supervisor.telemetry.metrics();
        assert_eq!(m.counter(names::SUPERVISED_CALLS), 2);
        assert_eq!(m.counter(names::SUPERVISED_REJECTIONS), 1);

        let supervisor = CellSupervisor {
            cancel: CancelToken::new(),
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            telemetry: Telemetry::new(),
        };
        let err = supervisor.supervise(&Null).keystream(&bs, 2).expect_err("expired");
        assert!(!err.is_transient());
        assert!(err.to_string().contains("deadline"), "{err}");
    }

    #[test]
    fn a_killed_campaign_resumes_at_the_first_incomplete_cell() {
        let dir = tempdir("resume");
        let path = dir.join("cells.journal");
        let _ = fs::remove_file(&path);
        let grid = labels(4);

        // First run: the process "dies" after two completed cells
        // (cancellation models the kill; cancelled cells are not
        // journalled).
        let campaign = Campaign::new().with_journal(&path);
        let token = campaign.cancel_token();
        campaign
            .run(&grid, |i, _| {
                if i == 2 {
                    token.cancel();
                    return CellOutcome::Cancelled;
                }
                if i == 1 {
                    CellOutcome::Failed { stats: ok_stats(), note: "query budget exhausted".into() }
                } else {
                    CellOutcome::Recovered(ok_stats())
                }
            })
            .expect("first run");

        // Second run: only the incomplete cells execute.
        let ran = AtomicUsize::new(0);
        let report = Campaign::new()
            .with_journal(&path)
            .run(&grid, |i, _| {
                ran.fetch_add(1, Ordering::Relaxed);
                assert!(i >= 2, "completed cell {i} must not re-run");
                CellOutcome::Recovered(ok_stats())
            })
            .expect("resumed run");
        assert_eq!(ran.load(Ordering::Relaxed), 2);
        assert_eq!(report.resumed_count(), 2);
        assert_eq!(report.recovered_count(), 3);
        assert_eq!(
            report.cells[1].outcome,
            CellOutcome::Failed { stats: ok_stats(), note: "query budget exhausted".into() },
            "journalled outcomes replay verbatim"
        );
        assert!(report.cells[0].resumed && report.cells[1].resumed);
        assert!(!report.cells[2].resumed && !report.cells[3].resumed);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn a_journal_from_a_different_grid_is_refused() {
        let dir = tempdir("grid");
        let path = dir.join("cells.journal");
        let _ = fs::remove_file(&path);
        Campaign::new()
            .with_journal(&path)
            .run(&labels(2), |_, _| CellOutcome::Recovered(ok_stats()))
            .expect("first grid");
        let err = Campaign::new()
            .with_journal(&path)
            .run(&["other".to_string()], |_, _| CellOutcome::Recovered(ok_stats()))
            .expect_err("grid changed");
        assert!(matches!(err, CampaignError::GridMismatch { .. }), "{err:?}");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn a_corrupt_campaign_journal_is_a_typed_error() {
        let dir = tempdir("corrupt");
        let path = dir.join("cells.journal");
        let _ = fs::remove_file(&path);
        let grid = labels(2);
        Campaign::new()
            .with_journal(&path)
            .run(&grid, |_, _| CellOutcome::Recovered(ok_stats()))
            .expect("seed journal");
        let mut bytes = fs::read(&path).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        fs::write(&path, &bytes).expect("corrupt");
        let err = Campaign::new()
            .with_journal(&path)
            .run(&grid, |_, _| CellOutcome::Recovered(ok_stats()))
            .expect_err("corruption detected");
        assert!(matches!(err, CampaignError::Journal(_)), "{err:?}");
        let _ = fs::remove_file(&path);
    }
}
