//! Property tests pinning the optimized FINDLUT (the multi-candidate
//! `Scanner` and its deprecated single-candidate `find_lut` wrapper)
//! to the literal Algorithm 1 transcription, on random data with
//! random plants; plus thread-count determinism.

#![allow(deprecated)] // find_lut is intentionally pinned here too

use bitmod::findlut::{find_lut, find_lut_reference, rematch_at, FindLutParams, Scanner};
use bitmod::Catalogue;
use bitstream::{codec, LutLocation, SubVectorOrder, FRAME_BYTES};
use boolfn::{DualOutputInit, Permutation, TruthTable};
use proptest::prelude::*;

fn arb_perm6() -> impl Strategy<Value = Permutation> {
    Just(()).prop_perturb(|(), mut rng| {
        let mut v: Vec<u8> = (0..6).collect();
        for i in (1..6).rev() {
            let j = (rng.next_u32() as usize) % (i + 1);
            v.swap(i, j);
        }
        Permutation::from_slice(&v).expect("valid")
    })
}

fn arb_shape() -> impl Strategy<Value = TruthTable> {
    // Draw from the real candidate catalogue: these are the functions
    // the attack actually searches for.
    (0usize..Catalogue::full().shapes.len()).prop_map(|i| Catalogue::full().shapes[i].truth)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn optimized_equals_reference(
        shape in arb_shape(),
        seed in any::<u64>(),
        plants in prop::collection::vec((0usize..1200, arb_perm6(), any::<bool>()), 0..4),
    ) {
        // Random payload with a few planted (permuted) instances.
        let mut data = vec![0u8; 6 * FRAME_BYTES];
        let mut x = seed;
        for b in data.iter_mut() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            *b = (x >> 55) as u8;
        }
        // Plant instances whose byte footprints do not overlap (two
        // valid LUTs never overlap in a real bitstream).
        let mut planted: Vec<LutLocation> = Vec::new();
        for (l, perm, slicem) in &plants {
            let order = if *slicem { SubVectorOrder::SliceM } else { SubVectorOrder::SliceL };
            let loc = LutLocation { l: *l, d: FRAME_BYTES, order };
            if planted.iter().any(|p| p.overlaps(&loc)) {
                continue;
            }
            codec::write_lut(&mut data, loc, DualOutputInit::from_single(shape.permute(perm)));
            planted.push(loc);
        }
        let params = FindLutParams::k6(FRAME_BYTES);
        let fast = find_lut(&data, shape, &params);
        let slow = find_lut_reference(&data, shape, &params);
        let fast_l: Vec<usize> = fast.iter().map(|h| h.l).collect();
        let slow_l: Vec<usize> = slow.iter().map(|h| h.l).collect();
        prop_assert_eq!(fast_l, slow_l);
        // Every plant is found.
        for loc in &planted {
            prop_assert!(fast.iter().any(|h| h.l == loc.l), "missed plant at {}", loc.l);
        }
    }

    #[test]
    fn scanner_one_pass_matches_reference_per_candidate(
        start in 0usize..Catalogue::full().shapes.len(),
        seed in any::<u64>(),
        plants in prop::collection::vec((0usize..1200, 0usize..3, arb_perm6(), any::<bool>()), 0..4),
    ) {
        // Three candidates scanned in one pass must each produce a hit
        // list byte-identical to the reference algorithm run alone.
        let cat = Catalogue::full();
        let n = cat.shapes.len();
        let cands: Vec<TruthTable> = (0..3).map(|i| cat.shapes[(start + i) % n].truth).collect();
        let mut data = vec![0u8; 6 * FRAME_BYTES];
        let mut x = seed;
        for b in data.iter_mut() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            *b = (x >> 55) as u8;
        }
        let mut planted: Vec<LutLocation> = Vec::new();
        for (l, ci, perm, slicem) in &plants {
            let order = if *slicem { SubVectorOrder::SliceM } else { SubVectorOrder::SliceL };
            let loc = LutLocation { l: *l, d: FRAME_BYTES, order };
            if planted.iter().any(|p| p.overlaps(&loc)) {
                continue;
            }
            codec::write_lut(&mut data, loc, DualOutputInit::from_single(cands[*ci].permute(perm)));
            planted.push(loc);
        }
        let scanner = Scanner::builder()
            .k(6)
            .stride(FRAME_BYTES)
            .candidates(cands.iter().copied())
            .build()
            .expect("valid configuration");
        let grouped = scanner.scan_grouped(&data);
        for (i, &c) in cands.iter().enumerate() {
            let reference = find_lut_reference(&data, c, &FindLutParams::k6(FRAME_BYTES));
            prop_assert_eq!(grouped[i].clone(), reference, "candidate {} diverges", i);
        }
    }

    #[test]
    fn reported_permutation_reproduces_storage(
        shape in arb_shape(),
        perm in arb_perm6(),
        slicem in any::<bool>(),
        l in 0usize..1000,
    ) {
        let order = if slicem { SubVectorOrder::SliceM } else { SubVectorOrder::SliceL };
        let stored = shape.permute(&perm);
        let mut data = vec![0u8; 6 * FRAME_BYTES];
        codec::write_lut(
            &mut data,
            LutLocation { l, d: FRAME_BYTES, order },
            DualOutputInit::from_single(stored),
        );
        let hits = find_lut(&data, shape, &FindLutParams::k6(FRAME_BYTES));
        let hit = hits.iter().find(|h| h.l == l).expect("plant found");
        // The contract the attack's edit machinery relies on: applying
        // the reported permutation to the candidate reproduces the
        // stored function.
        prop_assert_eq!(shape.permute(&hit.perm), hit.init.o6());
    }

    #[test]
    fn rematch_at_agrees_with_search(
        shape in arb_shape(),
        perm in arb_perm6(),
        l in 0usize..800,
    ) {
        let order = SubVectorOrder::SliceM;
        let mut data = vec![0u8; 6 * FRAME_BYTES];
        codec::write_lut(
            &mut data,
            LutLocation { l, d: FRAME_BYTES, order },
            DualOutputInit::from_single(shape.permute(&perm)),
        );
        let hit = rematch_at(&data, l, FRAME_BYTES, order, shape).expect("rematches");
        prop_assert_eq!(shape.permute(&hit.perm), hit.init.o6());
        // And under the wrong order the content should (almost
        // always) not match; when it does, the contract still holds.
        if let Some(wrong) = rematch_at(&data, l, FRAME_BYTES, SubVectorOrder::SliceL, shape) {
            prop_assert_eq!(shape.permute(&wrong.perm), wrong.init.o6());
        }
    }
}

#[test]
fn scanner_thread_count_does_not_change_hits() {
    // The parallel scan must be deterministic: any worker count yields
    // the same hit list in the same order (chunk results are merged in
    // chunk order, not completion order).
    let cat = Catalogue::full();
    let f2 = cat.shape("f2").unwrap().truth;
    let m0 = cat.shape("m0").unwrap().truth;
    // Large enough to engage the parallel path.
    let mut data = vec![0u8; 1300 * FRAME_BYTES];
    let mut x = 0x9e3779b9u64;
    for b in data.iter_mut() {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        *b = (x >> 55) as u8;
    }
    for (i, &tt) in [f2, m0, f2, m0, f2].iter().enumerate() {
        let order = if i % 2 == 0 { SubVectorOrder::SliceL } else { SubVectorOrder::SliceM };
        codec::write_lut(
            &mut data,
            LutLocation { l: 200 * (i + 1) * FRAME_BYTES / 2 + 7 * i, d: FRAME_BYTES, order },
            DualOutputInit::from_single(tt),
        );
    }
    let scan = |threads: usize| {
        Scanner::builder()
            .stride(FRAME_BYTES)
            .threads(threads)
            .catalogue(&cat)
            .build()
            .expect("valid configuration")
            .scan(&data)
    };
    let sequential = scan(1);
    assert!(!sequential.is_empty(), "plants must be found");
    for threads in [2, 4, 7] {
        assert_eq!(scan(threads), sequential, "thread count {threads} changes the hit list");
    }
}

#[test]
fn d_parameter_generalizes_to_other_families() {
    // The paper treats d as a device-family parameter (it reports
    // d = 101 bytes for its 7-series tool). FINDLUT must work for any
    // stride; plant at the paper's d and search with it.
    use bitmod::Catalogue;
    let shape = Catalogue::full().shape("f2").unwrap().truth;
    for d in [101usize, 256, bitstream::FRAME_BYTES] {
        let mut data = vec![0u8; 8 * bitstream::FRAME_BYTES];
        codec::write_lut(
            &mut data,
            LutLocation { l: 33, d, order: SubVectorOrder::SliceL },
            DualOutputInit::from_single(shape),
        );
        let hits = find_lut(&data, shape, &FindLutParams { k: 6, d, orders: None });
        assert!(hits.iter().any(|h| h.l == 33), "missed plant at stride d = {d}");
    }
}
