//! Structural analysis: the `Fanin`/`Fanout`/`TrFanin`/`TrFanout`
//! notation of the paper's Section II-A, logic cones, depth
//! statistics, and a brute-force combinational equivalence check used
//! to validate generator and mapper transformations on small
//! networks.

use std::collections::HashSet;

use crate::graph::{Network, NetworkError, NodeId, NodeKind};
use crate::sim::Simulator;

/// `Fanin(v)`: the direct predecessors of `v`.
#[must_use]
pub fn fanin(network: &Network, v: NodeId) -> Vec<NodeId> {
    network.node(v).fanin.clone()
}

/// `Fanout(v)`: the direct successors of `v`.
#[must_use]
pub fn fanout(network: &Network, v: NodeId) -> Vec<NodeId> {
    network.iter().filter(|(_, n)| n.fanin.contains(&v)).map(|(id, _)| id).collect()
}

/// `TrFanin(v)`: all nodes in the transitive fanin of `v`
/// (excluding `v` itself), following combinational and sequential
/// edges alike.
#[must_use]
pub fn transitive_fanin(network: &Network, v: NodeId) -> HashSet<NodeId> {
    let mut seen = HashSet::new();
    let mut stack: Vec<NodeId> = network.node(v).fanin.clone();
    while let Some(id) = stack.pop() {
        if seen.insert(id) {
            stack.extend(network.node(id).fanin.iter().copied());
        }
    }
    seen
}

/// `TrFanout(v)`: all nodes in the transitive fanout of `v`
/// (excluding `v` itself).
#[must_use]
pub fn transitive_fanout(network: &Network, v: NodeId) -> HashSet<NodeId> {
    let fanouts = network.fanouts();
    let mut seen = HashSet::new();
    let mut stack: Vec<NodeId> = fanouts[v.index()].clone();
    while let Some(id) = stack.pop() {
        if seen.insert(id) {
            stack.extend(fanouts[id.index()].iter().copied());
        }
    }
    seen
}

/// The *combinational cone* of `root`: every gate reachable from
/// `root` going backward without crossing a source (input, constant,
/// flip-flop, ROM output). This is the region a LUT cover may absorb.
#[must_use]
pub fn combinational_cone(network: &Network, root: NodeId) -> Vec<NodeId> {
    let mut seen = HashSet::new();
    let mut order = Vec::new();
    let mut stack = vec![root];
    while let Some(id) = stack.pop() {
        if !network.node(id).kind.is_gate() || !seen.insert(id) {
            continue;
        }
        order.push(id);
        stack.extend(network.node(id).fanin.iter().copied());
    }
    order
}

/// Gate-level depth of every node (sources at 0); the maximum is the
/// network's combinational depth.
///
/// # Errors
///
/// Propagates [`NetworkError::CombinationalCycle`].
pub fn depths(network: &Network) -> Result<Vec<usize>, NetworkError> {
    let order = network.topo_order()?;
    let mut depth = vec![0usize; network.len()];
    for id in order {
        let node = network.node(id);
        if !node.kind.is_gate() && !matches!(node.kind, NodeKind::RomOut { .. }) {
            continue;
        }
        depth[id.index()] = node.fanin.iter().map(|f| depth[f.index()]).max().unwrap_or(0) + 1;
    }
    Ok(depth)
}

/// Summary statistics of a network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkStats {
    /// Total nodes.
    pub nodes: usize,
    /// Combinational gates.
    pub gates: usize,
    /// Flip-flops.
    pub ffs: usize,
    /// ROM output bits.
    pub rom_bits: usize,
    /// Primary inputs.
    pub inputs: usize,
    /// Combinational depth.
    pub depth: usize,
    /// Number of 2-input XOR gates — the population the paper's
    /// countermeasure hides the target in.
    pub xor2_gates: usize,
}

/// Computes [`NetworkStats`].
///
/// # Example
///
/// ```
/// use netlist::{analyze, Network};
///
/// let mut n = Network::new();
/// let a = n.input("a");
/// let b = n.input("b");
/// let x = n.xor(a, b);
/// n.set_output("o", x);
/// let stats = analyze::stats(&n)?;
/// assert_eq!(stats.xor2_gates, 1);
/// assert_eq!(stats.depth, 1);
/// # Ok::<(), netlist::NetworkError>(())
/// ```
///
/// # Errors
///
/// Propagates validation errors.
pub fn stats(network: &Network) -> Result<NetworkStats, NetworkError> {
    network.validate()?;
    let d = depths(network)?;
    Ok(NetworkStats {
        nodes: network.len(),
        gates: network.gate_count(),
        ffs: network.dff_count(),
        rom_bits: network.iter().filter(|(_, n)| matches!(n.kind, NodeKind::RomOut { .. })).count(),
        inputs: network.inputs().len(),
        depth: d.into_iter().max().unwrap_or(0),
        xor2_gates: network.iter().filter(|(_, n)| matches!(n.kind, NodeKind::Xor)).count(),
    })
}

/// Brute-force combinational equivalence of two networks over their
/// declared outputs: both must have the same number of primary inputs
/// (≤ 20) and outputs; every input assignment is enumerated.
///
/// # Errors
///
/// Propagates validation errors from either network.
///
/// # Panics
///
/// Panics if a network has more than 20 inputs (2^20 assignments is
/// the practical cap for the exhaustive check).
pub fn equivalent(a: &Network, b: &Network) -> Result<bool, NetworkError> {
    assert!(a.inputs().len() <= 20, "exhaustive check capped at 20 inputs");
    if a.inputs().len() != b.inputs().len() || a.outputs().len() != b.outputs().len() {
        return Ok(false);
    }
    let mut sim_a = Simulator::new(a)?;
    let mut sim_b = Simulator::new(b)?;
    for assignment in 0u64..(1 << a.inputs().len()) {
        let drive = |inputs: &[NodeId]| -> Vec<(NodeId, bool)> {
            inputs.iter().enumerate().map(|(i, &id)| (id, (assignment >> i) & 1 == 1)).collect()
        };
        sim_a.step(&drive(a.inputs()));
        sim_b.step(&drive(b.inputs()));
        for ((_, oa), (_, ob)) in a.outputs().iter().zip(b.outputs()) {
            if sim_a.value(*oa) != sim_b.value(*ob) {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

/// Renders the network in Graphviz DOT format (combinational edges
/// solid, sequential D-input edges dashed). Useful for inspecting the
/// covers and the countermeasure's keep annotations.
#[must_use]
pub fn to_dot(network: &Network, name: &str) -> String {
    use core::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{name}\" {{");
    let _ = writeln!(out, "  rankdir=LR; node [fontsize=9];");
    for (id, node) in network.iter() {
        let (label, shape) = match &node.kind {
            NodeKind::Input { name } => (name.to_string(), "invhouse"),
            NodeKind::Const(b) => (format!("{}", u8::from(*b)), "plaintext"),
            NodeKind::Not => ("not".into(), "invtriangle"),
            NodeKind::And => ("and".into(), "box"),
            NodeKind::Or => ("or".into(), "ellipse"),
            NodeKind::Xor => ("xor".into(), "diamond"),
            NodeKind::Mux => ("mux".into(), "trapezium"),
            NodeKind::Dff { init } => (format!("dff[{}]", u8::from(*init)), "box3d"),
            NodeKind::RomOut { rom, bit } => (format!("rom{}[{bit}]", rom.0), "cylinder"),
        };
        let style = if node.keep { ", style=bold, color=red" } else { "" };
        let _ = writeln!(out, "  n{} [label=\"{label}\", shape={shape}{style}];", id.0);
    }
    for (id, node) in network.iter() {
        let dashed = matches!(node.kind, NodeKind::Dff { .. });
        for f in &node.fanin {
            let attr = if dashed { " [style=dashed]" } else { "" };
            let _ = writeln!(out, "  n{} -> n{}{attr};", f.0, id.0);
        }
    }
    for (name, id) in network.outputs() {
        let _ = writeln!(out, "  \"out_{name}\" [shape=house]; n{} -> \"out_{name}\";", id.0);
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Network;

    fn sample() -> (Network, NodeId, NodeId, NodeId, NodeId) {
        let mut n = Network::new();
        let a = n.input("a");
        let b = n.input("b");
        let x = n.xor(a, b);
        let g = n.and(x, a);
        n.set_output("o", g);
        (n, a, b, x, g)
    }

    #[test]
    fn fanin_fanout() {
        let (n, a, b, x, g) = sample();
        assert_eq!(fanin(&n, x), vec![a, b]);
        assert_eq!(fanout(&n, x), vec![g]);
        assert_eq!(fanout(&n, a).len(), 2);
    }

    #[test]
    fn transitive_sets() {
        let (n, a, b, x, g) = sample();
        let tfi = transitive_fanin(&n, g);
        assert!(tfi.contains(&a) && tfi.contains(&b) && tfi.contains(&x));
        assert!(!tfi.contains(&g));
        let tfo = transitive_fanout(&n, a);
        assert!(tfo.contains(&x) && tfo.contains(&g));
    }

    #[test]
    fn cone_stops_at_sources() {
        let (n, _, _, x, g) = sample();
        let cone = combinational_cone(&n, g);
        assert!(cone.contains(&g) && cone.contains(&x));
        assert_eq!(cone.len(), 2, "inputs are not part of the cone");
    }

    #[test]
    fn depth_and_stats() {
        let (n, ..) = sample();
        let s = stats(&n).unwrap();
        assert_eq!(s.gates, 2);
        assert_eq!(s.depth, 2);
        assert_eq!(s.xor2_gates, 1);
        assert_eq!(s.inputs, 2);
    }

    #[test]
    fn dot_export_mentions_everything() {
        let (mut n, _, _, x, _) = sample();
        n.set_keep(x);
        let dot = to_dot(&n, "sample");
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("shape=diamond"), "{dot}");
        assert!(dot.contains("color=red"), "keep nodes highlighted");
        assert!(dot.contains("out_o"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn equivalence_positive_and_negative() {
        // a ^ b == (a & !b) | (!a & b)
        let (n1, ..) = sample();
        let mut n2 = Network::new();
        let a = n2.input("a");
        let b = n2.input("b");
        let nb = n2.not(b);
        let na = n2.not(a);
        let t1 = n2.and(a, nb);
        let t2 = n2.and(na, b);
        let x = n2.or(t1, t2);
        let g = n2.and(x, a);
        n2.set_output("o", g);
        assert!(equivalent(&n1, &n2).unwrap());

        let mut n3 = Network::new();
        let a = n3.input("a");
        let b = n3.input("b");
        let x = n3.or(a, b); // different function
        let g = n3.and(x, a);
        n3.set_output("o", g);
        assert!(!equivalent(&n1, &n3).unwrap());
    }
}
