//! A reference cycle simulator for [`Network`]s.

use crate::graph::{Network, NetworkError, NodeId, NodeKind};

/// A two-phase (evaluate, then latch) simulator.
///
/// Flip-flops power up at their `init` value, mirroring FPGA
/// configuration (GSR). Each [`Simulator::step`] evaluates all
/// combinational logic with the current register values and input
/// assignment, then latches every flip-flop's D input.
///
/// # Example
///
/// ```
/// use netlist::{Network, Simulator};
///
/// let mut n = Network::new();
/// let ff = n.dff(false);
/// let inv = n.not(ff);
/// n.connect_dff(ff, inv);
/// n.set_output("q", ff);
///
/// let mut sim = Simulator::new(&n)?;
/// assert!(!sim.output("q").unwrap());
/// sim.step(&[]);
/// assert!(sim.output("q").unwrap());
/// # Ok::<(), netlist::NetworkError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    network: &'a Network,
    order: Vec<NodeId>,
    values: Vec<bool>,
    cycle: u64,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator; validates the network first.
    ///
    /// # Errors
    ///
    /// Propagates any [`NetworkError`] from validation.
    pub fn new(network: &'a Network) -> Result<Self, NetworkError> {
        network.validate()?;
        let order = network.topo_order()?;
        let mut values = vec![false; network.len()];
        for (id, node) in network.iter() {
            if let NodeKind::Dff { init } = node.kind {
                values[id.index()] = init;
            }
        }
        let mut sim = Self { network, order, values, cycle: 0 };
        // Settle combinational logic for the power-up state with all
        // inputs low so that pre-step reads are meaningful.
        sim.evaluate(&[]);
        Ok(sim)
    }

    /// The current value of node `id` (combinational values are those
    /// of the most recent evaluation).
    #[must_use]
    pub fn value(&self, id: NodeId) -> bool {
        self.values[id.index()]
    }

    /// The current value of named output `name`.
    #[must_use]
    pub fn output(&self, name: &str) -> Option<bool> {
        self.network.output(name).map(|id| self.value(id))
    }

    /// Reads a 32-bit word from 32 output nodes, `bits[0]` the LSB.
    ///
    /// # Panics
    ///
    /// Panics if `bits` does not have exactly 32 elements.
    #[must_use]
    pub fn word(&self, bits: &[NodeId]) -> u32 {
        assert_eq!(bits.len(), 32, "expected 32 bit nodes");
        bits.iter().enumerate().fold(0u32, |acc, (i, &b)| acc | (u32::from(self.value(b)) << i))
    }

    /// Number of clock cycles executed so far.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    fn evaluate(&mut self, inputs: &[(NodeId, bool)]) {
        for &(id, v) in inputs {
            debug_assert!(
                matches!(self.network.node(id).kind, NodeKind::Input { .. }),
                "{id} is not a primary input"
            );
            self.values[id.index()] = v;
        }
        for &id in &self.order {
            let node = self.network.node(id);
            let v = match &node.kind {
                NodeKind::Input { .. } | NodeKind::Dff { .. } => continue,
                NodeKind::Const(b) => *b,
                NodeKind::Not => !self.values[node.fanin[0].index()],
                NodeKind::And => {
                    self.values[node.fanin[0].index()] && self.values[node.fanin[1].index()]
                }
                NodeKind::Or => {
                    self.values[node.fanin[0].index()] || self.values[node.fanin[1].index()]
                }
                NodeKind::Xor => {
                    self.values[node.fanin[0].index()] ^ self.values[node.fanin[1].index()]
                }
                NodeKind::Mux => {
                    if self.values[node.fanin[0].index()] {
                        self.values[node.fanin[1].index()]
                    } else {
                        self.values[node.fanin[2].index()]
                    }
                }
                NodeKind::RomOut { rom, bit } => {
                    let mut addr = 0usize;
                    for (i, &a) in node.fanin.iter().enumerate() {
                        addr |= usize::from(self.values[a.index()]) << i;
                    }
                    (self.network.rom_table(*rom)[addr] >> bit) & 1 == 1
                }
            };
            self.values[id.index()] = v;
        }
    }

    /// Runs one clock cycle: evaluates combinational logic with the
    /// given input assignment, then latches all flip-flops.
    pub fn step(&mut self, inputs: &[(NodeId, bool)]) {
        self.evaluate(inputs);
        // Latch phase: read all D values first, then commit, so that
        // register-to-register paths see pre-edge values.
        let mut latched = Vec::new();
        for (id, node) in self.network.iter() {
            if matches!(node.kind, NodeKind::Dff { .. }) {
                latched.push((id, self.values[node.fanin[0].index()]));
            }
        }
        for (id, v) in latched {
            self.values[id.index()] = v;
        }
        self.cycle += 1;
        // Re-evaluate so post-step combinational reads reflect the new
        // register state.
        self.evaluate(inputs);
    }

    /// Runs `n` cycles with a constant input assignment.
    pub fn run(&mut self, n: usize, inputs: &[(NodeId, bool)]) {
        for _ in 0..n {
            self.step(inputs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Network;

    #[test]
    fn combinational_gates() {
        let mut n = Network::new();
        let a = n.input("a");
        let b = n.input("b");
        let and = n.and(a, b);
        let or = n.or(a, b);
        let xor = n.xor(a, b);
        let not = n.not(a);
        let mux = n.mux(a, b, not);
        for (ids, f) in [
            (and, (|x: bool, y: bool| x && y) as fn(bool, bool) -> bool),
            (or, |x, y| x || y),
            (xor, |x, y| x ^ y),
        ] {
            for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
                let mut sim = Simulator::new(&n).unwrap();
                sim.step(&[(a, va), (b, vb)]);
                assert_eq!(sim.value(ids), f(va, vb), "a={va} b={vb}");
            }
        }
        let mut sim = Simulator::new(&n).unwrap();
        sim.step(&[(a, true), (b, false)]);
        assert!(!sim.value(mux), "mux selects b when a is true");
        sim.step(&[(a, false), (b, false)]);
        assert!(sim.value(mux), "mux selects !a when a is false");
    }

    #[test]
    fn toggle_ff() {
        let mut n = Network::new();
        let ff = n.dff(false);
        let inv = n.not(ff);
        n.connect_dff(ff, inv);
        let mut sim = Simulator::new(&n).unwrap();
        let mut expected = false;
        for _ in 0..8 {
            assert_eq!(sim.value(ff), expected);
            sim.step(&[]);
            expected = !expected;
        }
    }

    #[test]
    fn shift_register_moves_one_per_cycle() {
        let mut n = Network::new();
        let a = n.input("a");
        let f1 = n.dff(false);
        let f2 = n.dff(false);
        n.connect_dff(f1, a);
        n.connect_dff(f2, f1);
        let mut sim = Simulator::new(&n).unwrap();
        sim.step(&[(a, true)]);
        assert!(sim.value(f1));
        assert!(!sim.value(f2));
        sim.step(&[(a, false)]);
        assert!(!sim.value(f1));
        assert!(sim.value(f2));
    }

    #[test]
    fn rom_lookup() {
        let mut n = Network::new();
        let mut table = [0u32; 256];
        for (i, t) in table.iter_mut().enumerate() {
            *t = (i as u32).wrapping_mul(0x01010101);
        }
        let addr: Vec<_> = (0..8).map(|i| n.input(format!("a{i}"))).collect();
        let rom = n.add_rom(table);
        let outs = n.rom_outputs(rom, &addr);
        let mut sim = Simulator::new(&n).unwrap();
        let inputs: Vec<_> =
            addr.iter().enumerate().map(|(i, &a)| (a, (0xA5 >> i) & 1 == 1)).collect();
        sim.step(&inputs);
        assert_eq!(sim.word(&outs), 0xA5A5A5A5);
    }

    #[test]
    fn power_up_values() {
        let mut n = Network::new();
        let f0 = n.dff(true);
        let f1 = n.dff(false);
        n.connect_dff(f0, f0);
        n.connect_dff(f1, f1);
        let sim = Simulator::new(&n).unwrap();
        assert!(sim.value(f0));
        assert!(!sim.value(f1));
    }
}
