//! A gate-level SNOW 3G circuit, standing in for the VHDL
//! implementation attacked by the paper.
//!
//! The generated design follows Figs. 2 and 3:
//!
//! * sixteen 32-bit LFSR stages with per-bit load multiplexers whose
//!   `γ(K, IV)` side is a *constant* — the key is stored in the
//!   bitstream, as the paper's attack model assumes;
//! * the FSM registers `R1`, `R2`, `R3`, with `S1`/`S2` evaluated as
//!   XORs of four 256×32 block-ROM T-tables (the paper notes the
//!   S-boxes are "evaluated by a Block RAM lookup");
//! * the `MULα`/`DIVα` ROMs and byte-shift XOR network of the
//!   feedback;
//! * two ripple-carry adders (`⊞`);
//! * a mode-control counter producing `c_load`, `c_init` and the
//!   keystream-valid signal, plus the external enable `c_run`.
//!
//! The structure around the target node `v = (s₁₅ ⊞ R1) ⊕ R2` is
//! gated such that a 6-feasible cut of the keystream output cone is
//! exactly the paper's `f₂ = (a₁⊕a₂⊕a₃)a₄a₅ā₆` (P-class) and a
//! 6-feasible cut of the feedback cone is exactly `f₈ =
//! (a₁⊕a₂)ā₃a₄a₅ ⊕ a₆` (P-class).

use snow3g::cipher::{gamma, Iv, Key};
use snow3g::tables;

use crate::build::{Word32, WordOps};
use crate::graph::{Network, NodeId};

/// Configuration of the generated circuit.
#[derive(Debug, Clone, Copy)]
pub struct Snow3gCircuitConfig {
    /// The key folded into the load-multiplexer constants.
    pub key: Key,
    /// The IV folded into the load-multiplexer constants.
    pub iv: Iv,
    /// When set, applies the Section VII-A countermeasure: the target
    /// XOR vector `v` and five additional 32-bit XOR vectors are
    /// marked `KEEP`, forcing technology mapping to cover each 2-input
    /// XOR with a trivial cut.
    pub protected: bool,
}

impl Snow3gCircuitConfig {
    /// An unprotected circuit for the given secrets.
    #[must_use]
    pub fn unprotected(key: Key, iv: Iv) -> Self {
        Self { key, iv, protected: false }
    }

    /// A countermeasure-protected circuit for the given secrets.
    #[must_use]
    pub fn protected(key: Key, iv: Iv) -> Self {
        Self { key, iv, protected: true }
    }
}

/// Number of clock cycles from power-up until the first keystream
/// word is available in the output register: 1 load cycle + 32
/// initialization rounds + 1 discarded keystream-mode clocking.
pub const WARMUP_CYCLES: usize = 34;

/// The generated SNOW 3G circuit plus ground-truth metadata.
///
/// The metadata fields (`v_nodes`, `load_mux_nodes`, ...) identify
/// design structures for *tests and evaluation*; the attack code never
/// reads them — it only sees bitstream bytes and keystream words.
#[derive(Debug, Clone)]
pub struct Snow3gCircuit {
    /// The gate-level network.
    pub network: Network,
    /// External enable input (`c_run`); must be driven high.
    pub run: NodeId,
    /// The 32 keystream output register bits, LSB first.
    pub z_out: Vec<NodeId>,
    /// The keystream-valid signal (high from the first keystream
    /// cycle on).
    pub valid: NodeId,
    /// Ground truth: the 32 XOR gates of the target node vector `v`
    /// (`W = (s₁₅ ⊞ R1) ⊕ R2`), LSB first.
    pub v_nodes: Vec<NodeId>,
    /// Ground truth: the 32 XOR gates of `z = s₀ ⊕ W`.
    pub z_xor_nodes: Vec<NodeId>,
    /// Ground truth: the 512 load-multiplexer nodes (16 stages × 32
    /// bits, stage-major), each `c_load ? γ_bit : shift_in`.
    pub load_mux_nodes: Vec<NodeId>,
    /// Ground truth: the loaded state `γ(K, IV)`.
    pub gamma: [u32; 16],
    /// Whether the countermeasure was applied.
    pub protected: bool,
}

impl Snow3gCircuit {
    /// Generates the circuit.
    #[must_use]
    pub fn generate(config: Snow3gCircuitConfig) -> Self {
        let mut n = Network::new();
        let g = gamma(config.key, config.iv);

        // --- Control ---------------------------------------------------
        let run = n.input("run");
        let cnt: Vec<NodeId> = (0..6).map(|_| n.dff(false)).collect();
        // Saturating increment: next = cnt + 1, all-ones once reached.
        let mut inc = Vec::with_capacity(6);
        let mut carry: Option<NodeId> = None;
        for &bit in &cnt {
            match carry {
                None => {
                    let s = n.not(bit);
                    inc.push(s);
                    carry = Some(bit);
                }
                Some(c) => {
                    let s = n.xor(bit, c);
                    inc.push(s);
                    let c2 = n.and(bit, c);
                    carry = Some(c2);
                }
            }
        }
        let sat = {
            let a = n.and(cnt[0], cnt[1]);
            let b = n.and(cnt[2], cnt[3]);
            let c = n.and(cnt[4], cnt[5]);
            let ab = n.and(a, b);
            n.and(ab, c)
        };
        for (i, &bit) in cnt.iter().enumerate() {
            let next = n.or(inc[i], sat);
            n.connect_dff(bit, next);
        }
        // Mode signals are REGISTERED (one-cycle lookahead from the
        // counter), as a timing-conscious RTL author would write them.
        // Registered controls are also mapping boundaries, which keeps
        // the LUT covers around the target node v in the shapes the
        // paper reports (f2/f8).
        //
        // c_load: high only in the very first cycle after
        // configuration.
        let c_load = n.dff(true);
        let zero = n.constant(false);
        n.connect_dff(c_load, zero);
        // c_init for the NEXT cycle: next_cnt ∈ [1, 32] ⟺ cnt ∈ [0, 31]
        // ⟺ ¬cnt5 (the counter saturates far above 32).
        let c_init = n.dff(false);
        let not_cnt5 = n.not(cnt[5]);
        n.connect_dff(c_init, not_cnt5);
        // valid for the NEXT cycle: next_cnt ≥ 34 ⟺ cnt ≥ 33
        // ⟺ cnt5 & (cnt0 | cnt1 | cnt2 | cnt3 | cnt4).
        let low_or = {
            let a = n.or(cnt[0], cnt[1]);
            let b = n.or(cnt[2], cnt[3]);
            let ab = n.or(a, b);
            n.or(ab, cnt[4])
        };
        let ge33 = n.and(cnt[5], low_or);
        let valid = n.dff(false);
        n.connect_dff(valid, ge33);
        let not_load = n.not(c_load);

        // --- State registers -------------------------------------------
        let s: Vec<Word32> = (0..16).map(|_| n.dff_word(0)).collect();
        let r1 = n.dff_word(0);
        let r2 = n.dff_word(0);
        let r3 = n.dff_word(0);

        // --- ROMs (block RAMs) -----------------------------------------
        let s1_t = tables::s1_t_tables();
        let s2_t = tables::s2_t_tables();
        let rom_s1: Vec<_> = (0..4).map(|i| n.add_rom(s1_t[i])).collect();
        let rom_s2: Vec<_> = (0..4).map(|i| n.add_rom(s2_t[i])).collect();
        let rom_mula = n.add_rom(*tables::mul_alpha_table());
        let rom_diva = n.add_rom(*tables::div_alpha_table());

        // --- FSM ---------------------------------------------------------
        // add1 = s15 ⊞ R1.
        let add1 = n.add_word(&s[15], &r1);
        // v = W = add1 ⊕ R2 — the target node vector.
        let (w, v_nodes) = n.xor_word_tagged(&add1, &r2);
        // r = R2 ⊞ (R3 ⊕ s5).
        let (r3_x_s5, r3_s5_nodes) = n.xor_word_tagged(&r3, &s[5]);
        let r_new = n.add_word(&r2, &r3_x_s5);
        // S1(R1), S2(R2) via T-table ROMs. T0 is addressed by the most
        // significant byte.
        let s1_out = {
            let t0 = n.rom_word(rom_s1[0], &r1.byte(3));
            let t1 = n.rom_word(rom_s1[1], &r1.byte(2));
            let t2 = n.rom_word(rom_s1[2], &r1.byte(1));
            let t3 = n.rom_word(rom_s1[3], &r1.byte(0));
            let x01 = n.xor_word(&t0, &t1);
            let x23 = n.xor_word(&t2, &t3);
            n.xor_word(&x01, &x23)
        };
        let s2_out = {
            let t0 = n.rom_word(rom_s2[0], &r2.byte(3));
            let t1 = n.rom_word(rom_s2[1], &r2.byte(2));
            let t2 = n.rom_word(rom_s2[2], &r2.byte(1));
            let t3 = n.rom_word(rom_s2[3], &r2.byte(0));
            let x01 = n.xor_word(&t0, &t1);
            let x23 = n.xor_word(&t2, &t3);
            n.xor_word(&x01, &x23)
        };
        // Register updates; all FSM registers reset to 0 in the load
        // cycle (paper: "R1, R2, R3 ... are loaded with 0s").
        let r1_next = n.and_word_scalar(&r_new, not_load);
        let r2_next = n.and_word_scalar(&s1_out, not_load);
        let r3_next = n.and_word_scalar(&s2_out, not_load);
        n.connect_dff_word(&r1, &r1_next);
        n.connect_dff_word(&r2, &r2_next);
        n.connect_dff_word(&r3, &r3_next);

        // --- LFSR feedback -----------------------------------------------
        // α·s0 = (s0 << 8) ⊕ MULα(s0[31:24]).
        let mula_out = n.rom_word(rom_mula, &s[0].byte(3));
        let s0_shl = n.shl8(&s[0]);
        let (alpha_s0, alpha_nodes) = n.xor_word_tagged(&s0_shl, &mula_out);
        // α⁻¹·s11 = (s11 >> 8) ⊕ DIVα(s11[7:0]).
        let diva_out = n.rom_word(rom_diva, &s[11].byte(0));
        let s11_shr = n.shr8(&s[11]);
        let (alphainv_s11, _alphainv_nodes) = n.xor_word_tagged(&s11_shr, &diva_out);
        // lin = α·s0 ⊕ s2 ⊕ α⁻¹·s11.
        let (lin_a, lin_a_nodes) = n.xor_word_tagged(&alpha_s0, &s[2]);
        let (lin, lin_b_nodes) = n.xor_word_tagged(&lin_a, &alphainv_s11);
        // The FSM word is consumed only during initialization:
        // fb = lin ⊕ (W & c_init & c_run & ¬c_load). The gating chain
        // makes the natural 6-feasible cut of fb's cone equal the
        // paper's f8 = (a1⊕a2)·ā3·a4·a5 ⊕ a6 up to input permutation.
        let w_gated: Vec<NodeId> = (0..32)
            .map(|i| {
                let g1 = n.and(w.bit(i), c_init);
                let g2 = n.and(g1, run);
                n.and(g2, not_load)
            })
            .collect();
        let w_gated = Word32::new(w_gated);
        let fb = n.xor_word(&w_gated, &lin);

        // --- LFSR stage updates (load MUXes with γ constants) ------------
        let mut load_mux_nodes = Vec::with_capacity(512);
        for j in 0..16 {
            let shift_in: Word32 = if j < 15 { s[j + 1].clone() } else { fb.clone() };
            let mut next_bits = Vec::with_capacity(32);
            for i in 0..32 {
                let gbit = n.constant((g[j] >> i) & 1 == 1);
                let m = n.mux(c_load, gbit, shift_in.bit(i));
                load_mux_nodes.push(m);
                next_bits.push(m);
            }
            let next = Word32::new(next_bits);
            n.connect_dff_word(&s[j], &next);
        }

        // --- Keystream output ---------------------------------------------
        // z = (s0 ⊕ W) gated by valid, run and ¬c_load; the natural
        // 6-feasible cut is the paper's f2 = (a1⊕a2⊕a3)·a4·a5·ā6 up to
        // input permutation.
        let (zx, z_xor_nodes) = n.xor_word_tagged(&s[0], &w);
        let z_gated: Vec<NodeId> = (0..32)
            .map(|i| {
                let o1 = n.and(zx.bit(i), valid);
                let o2 = n.and(o1, run);
                n.and(o2, not_load)
            })
            .collect();
        let z_reg = n.dff_word(0);
        n.connect_dff_word(&z_reg, &Word32::new(z_gated));

        for (i, &bit) in z_reg.bits().iter().enumerate() {
            n.set_output(format!("z{i}"), bit);
        }
        let valid_reg = n.dff(false);
        n.connect_dff(valid_reg, valid);
        n.set_output("valid", valid_reg);

        // --- Countermeasure ------------------------------------------------
        if config.protected {
            for nodes in
                [&v_nodes, &z_xor_nodes, &r3_s5_nodes, &alpha_nodes, &lin_a_nodes, &lin_b_nodes]
            {
                for &id in nodes.iter() {
                    n.set_keep(id);
                }
            }
        }

        Self {
            network: n,
            run,
            z_out: z_reg.bits().to_vec(),
            valid: valid_reg,
            v_nodes,
            z_xor_nodes,
            load_mux_nodes,
            gamma: g,
            protected: config.protected,
        }
    }

    /// Runs the circuit with the reference simulator and collects `n`
    /// keystream words — the specification-level check that the
    /// netlist implements SNOW 3G.
    ///
    /// # Panics
    ///
    /// Panics if the network fails validation (generator bug).
    #[must_use]
    pub fn simulate_keystream(&self, words: usize) -> Vec<u32> {
        let mut sim =
            crate::sim::Simulator::new(&self.network).expect("generated network is valid");
        let inputs = [(self.run, true)];
        sim.run(WARMUP_CYCLES, &inputs);
        let mut out = Vec::with_capacity(words);
        for _ in 0..words {
            sim.step(&inputs);
            debug_assert!(sim.value(self.valid), "valid must be high in keystream phase");
            out.push(sim.word(&self.z_out));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snow3g::vectors::{TEST_SET_1_IV, TEST_SET_1_KEY};
    use snow3g::Snow3g;

    fn test_circuit(protected: bool) -> Snow3gCircuit {
        let cfg = Snow3gCircuitConfig { key: TEST_SET_1_KEY, iv: TEST_SET_1_IV, protected };
        Snow3gCircuit::generate(cfg)
    }

    #[test]
    fn circuit_matches_software_model() {
        let circuit = test_circuit(false);
        let hw = circuit.simulate_keystream(8);
        let sw = Snow3g::new(TEST_SET_1_KEY, TEST_SET_1_IV).keystream(8);
        assert_eq!(hw, sw, "gate-level circuit must match the software model");
    }

    #[test]
    fn circuit_matches_etsi_vector() {
        let circuit = test_circuit(false);
        let hw = circuit.simulate_keystream(2);
        assert_eq!(hw, vec![0xABEE9704, 0x7AC31373]);
    }

    #[test]
    fn protected_circuit_same_function() {
        let unprot = test_circuit(false).simulate_keystream(4);
        let prot = test_circuit(true).simulate_keystream(4);
        assert_eq!(unprot, prot, "the countermeasure must not change functionality");
    }

    #[test]
    fn protected_marks_keep_nodes() {
        let c = test_circuit(true);
        let marked = c.network.nodes().iter().filter(|n| n.keep).count();
        assert_eq!(marked, 6 * 32, "v plus five decoy XOR vectors");
        let u = test_circuit(false);
        assert_eq!(u.network.nodes().iter().filter(|n| n.keep).count(), 0);
    }

    #[test]
    fn metadata_sizes() {
        let c = test_circuit(false);
        assert_eq!(c.v_nodes.len(), 32);
        assert_eq!(c.z_xor_nodes.len(), 32);
        assert_eq!(c.load_mux_nodes.len(), 512);
        assert_eq!(c.network.rom_count(), 10);
    }

    #[test]
    fn different_keys_give_different_circuits_same_shape() {
        use snow3g::{Iv, Key};
        let a = Snow3gCircuit::generate(Snow3gCircuitConfig::unprotected(
            Key([1, 2, 3, 4]),
            Iv([5, 6, 7, 8]),
        ));
        let b = test_circuit(false);
        assert_eq!(a.network.len(), b.network.len(), "same structure");
        let za = a.simulate_keystream(2);
        let zb = b.simulate_keystream(2);
        assert_ne!(za, zb, "different constants");
        let sw = Snow3g::new(Key([1, 2, 3, 4]), Iv([5, 6, 7, 8])).keystream(2);
        assert_eq!(za, sw);
    }

    #[test]
    fn valid_goes_high_after_warmup() {
        let c = test_circuit(false);
        let mut sim = crate::sim::Simulator::new(&c.network).unwrap();
        let inputs = [(c.run, true)];
        for _ in 0..WARMUP_CYCLES {
            assert!(!sim.value(c.valid), "valid must be low during warm-up");
            sim.step(&inputs);
        }
        sim.step(&inputs);
        assert!(sim.value(c.valid));
    }
}
