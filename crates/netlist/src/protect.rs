//! The generic countermeasure pass (Section VII-A).
//!
//! The paper's defence constrains technology mapping so that target
//! nodes — and `r` decoy nodes *with the same function* — are covered
//! by trivial cuts, and notes that the transformation "can be
//! automated and incorporated into industrial design tools" and that
//! the performance penalty can be reduced "by choosing to cover by
//! trivial cuts the nodes u ∈ U which are at non-critical paths".
//!
//! [`protect`] is that automated pass: given any network and a set of
//! target nodes, it marks the targets `KEEP` plus up to `r` decoys
//! drawn from the same-function population `U`, preferring shallow
//! (non-critical) nodes.

use crate::analyze;
use crate::graph::{Network, NetworkError, NodeId, NodeKind};

/// Outcome of a [`protect`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtectReport {
    /// Target nodes marked.
    pub targets: usize,
    /// Decoy nodes marked.
    pub decoys: usize,
    /// Size of the same-function population `U` the decoys were
    /// drawn from (excluding the targets).
    pub population: usize,
}

/// Two nodes "implement the same function" for decoy purposes when
/// they are the same gate kind (the paper's `f_u = f_v` for the
/// 2-input XOR targets; commutative 2-input gates have a single
/// function up to input order).
fn same_function(a: &NodeKind, b: &NodeKind) -> bool {
    matches!(
        (a, b),
        (NodeKind::Xor, NodeKind::Xor)
            | (NodeKind::And, NodeKind::And)
            | (NodeKind::Or, NodeKind::Or)
            | (NodeKind::Not, NodeKind::Not)
            | (NodeKind::Mux, NodeKind::Mux)
    )
}

/// Marks `targets` and up to `decoy_count` same-function decoys with
/// the `KEEP` attribute, preferring decoys with the smallest logic
/// depth (non-critical placement, per the paper's §VII-A remark).
///
/// Returns the marking report.
///
/// # Example
///
/// ```
/// use netlist::{protect, Network};
///
/// let mut n = Network::new();
/// let a = n.input("a");
/// let b = n.input("b");
/// let x1 = n.xor(a, b);       // the target
/// let x2 = n.xor(x1, a);      // a same-function decoy
/// n.set_output("o", x2);
/// let report = protect::protect(&mut n, &[x1], 8)?;
/// assert_eq!(report.targets, 1);
/// assert_eq!(report.decoys, 1);
/// # Ok::<(), netlist::NetworkError>(())
/// ```
///
/// # Errors
///
/// Propagates validation errors (the depth analysis needs an acyclic
/// combinational network).
///
/// # Panics
///
/// Panics if a target id is out of range.
pub fn protect(
    network: &mut Network,
    targets: &[NodeId],
    decoy_count: usize,
) -> Result<ProtectReport, NetworkError> {
    let depths = analyze::depths(network)?;
    for &t in targets {
        network.set_keep(t);
    }
    // The population U: same-function nodes that are not targets.
    let mut candidates: Vec<(usize, NodeId)> = network
        .iter()
        .filter(|(id, node)| {
            node.kind.is_gate()
                && !targets.contains(id)
                && targets.iter().any(|&t| same_function(&network.node(t).kind, &node.kind))
        })
        .map(|(id, _)| (depths[id.index()], id))
        .collect();
    let population = candidates.len();
    // Prefer shallow nodes: keeping them trivial costs the least
    // slack. Deterministic tie-break by node id.
    candidates.sort_unstable();
    let chosen: Vec<NodeId> = candidates.into_iter().take(decoy_count).map(|(_, id)| id).collect();
    for &d in &chosen {
        network.set_keep(d);
    }
    Ok(ProtectReport { targets: targets.len(), decoys: chosen.len(), population })
}

/// The Lemma VII-A decoy budget for `m` targets and a security level
/// of `bits`: the smallest `r` such that `C(m + r, m) ≥ 2^bits`
/// (computed exactly, not via the Stirling bound).
#[must_use]
pub fn decoys_for_security(m: u64, bits: f64) -> u64 {
    // log2 C(m+r, m) grows monotonically in r.
    let log2_binomial = |n: u64, m: u64| -> f64 {
        let m = m.min(n - m);
        let mut ln = 0.0f64;
        for i in 0..m {
            ln += ((n - i) as f64).ln() - ((i + 1) as f64).ln();
        }
        ln / core::f64::consts::LN_2
    };
    let mut r = 0u64;
    while log2_binomial(m + r, m) < bits {
        r += m.max(1); // the paper sizes r in multiples of the word width
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::equivalent;

    fn xor_network() -> (Network, Vec<NodeId>) {
        let mut n = Network::new();
        let a = n.input("a");
        let b = n.input("b");
        let c = n.input("c");
        let x1 = n.xor(a, b); // depth 1
        let x2 = n.xor(x1, c); // depth 2
        let x3 = n.xor(x2, a); // depth 3
        let g = n.and(x3, b);
        n.set_output("o", g);
        (n, vec![x1, x2, x3])
    }

    #[test]
    fn marks_targets_and_shallow_decoys() {
        let (mut n, xors) = xor_network();
        let target = xors[2]; // the deepest XOR
        let report = protect(&mut n, &[target], 1).unwrap();
        assert_eq!(report.targets, 1);
        assert_eq!(report.decoys, 1);
        assert_eq!(report.population, 2);
        assert!(n.node(target).keep);
        // The shallowest same-function node is chosen as decoy.
        assert!(n.node(xors[0]).keep);
        assert!(!n.node(xors[1]).keep);
    }

    #[test]
    fn protection_does_not_change_function() {
        let (reference, _) = xor_network();
        let (mut protected, xors) = xor_network();
        protect(&mut protected, &xors, 10).unwrap();
        assert!(equivalent(&reference, &protected).unwrap());
    }

    #[test]
    fn decoy_count_capped_by_population() {
        let (mut n, xors) = xor_network();
        let report = protect(&mut n, &[xors[0]], 100).unwrap();
        assert_eq!(report.decoys, 2, "only two other XORs exist");
    }

    #[test]
    fn lemma_budget() {
        // m = 32, 128 bits: r = 32x with x ≥ 4.886 → r = 160 by the
        // bound; the exact binomial reaches 2^128 a little later.
        let r = decoys_for_security(32, 128.0);
        assert_eq!(r % 32, 0);
        assert!(r >= 160, "exact budget at least the Stirling estimate: {r}");
        assert!(r <= 320, "budget should be moderate: {r}");
        // Sanity at small scale.
        assert_eq!(decoys_for_security(1, 3.0), 7); // C(8,1) = 8 ≥ 2^3
    }
}
