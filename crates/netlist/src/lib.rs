//! Gate-level Boolean networks and a SNOW 3G circuit generator.
//!
//! This crate is the "VHDL implementation" substrate of the
//! reproduction: it models a synthesized design as a Boolean network
//! `N = (V, E)` (Section II-A of the paper) with primary inputs,
//! two-input gates, multiplexers, D flip-flops and block-ROM outputs,
//! provides a reference cycle simulator, and generates the complete
//! SNOW 3G circuit of Figs. 2 and 3 — LFSR, FSM, T-table S-boxes,
//! `MULα`/`DIVα` ROMs, ripple-carry adders, load multiplexers with the
//! key folded in as constants, and the mode control FSM.
//!
//! The [`snow3g_circuit`] generator can emit the *unprotected* design
//! attacked in Section VI or the *protected* design of Section VII, in
//! which the target XOR vector `v` and five decoy XOR vectors carry
//! `KEEP`/`DONT_TOUCH`-style attributes that constrain technology
//! mapping to trivial cuts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod build;
pub mod graph;
pub mod protect;
pub mod sim;
pub mod snow3g_circuit;

pub use graph::{Network, NetworkError, Node, NodeId, NodeKind, RomId};
pub use sim::Simulator;
pub use snow3g_circuit::{Snow3gCircuit, Snow3gCircuitConfig};
