//! Word-level construction helpers: 32-bit buses over a [`Network`].

use crate::graph::{Network, NodeId, RomId};

/// A 32-bit bus of net ids; index 0 is the least significant bit.
#[derive(Debug, Clone)]
pub struct Word32(pub Vec<NodeId>);

impl Word32 {
    /// Wraps 32 bit nets into a bus.
    ///
    /// # Panics
    ///
    /// Panics if `bits` does not have 32 elements.
    #[must_use]
    pub fn new(bits: Vec<NodeId>) -> Self {
        assert_eq!(bits.len(), 32, "a Word32 needs exactly 32 bits");
        Self(bits)
    }

    /// The bit nets, LSB first.
    #[must_use]
    pub fn bits(&self) -> &[NodeId] {
        &self.0
    }

    /// Bit `i` (0 = LSB).
    #[must_use]
    pub fn bit(&self, i: usize) -> NodeId {
        self.0[i]
    }

    /// Byte `b` (0 = least significant byte) as 8 nets, LSB first.
    #[must_use]
    pub fn byte(&self, b: usize) -> Vec<NodeId> {
        assert!(b < 4, "byte index out of range");
        self.0[b * 8..(b + 1) * 8].to_vec()
    }
}

/// Word-level gate builders over a [`Network`].
///
/// These helpers expand 32-bit operations into two-input gates; the
/// SNOW 3G circuit generator is written entirely in terms of them.
pub trait WordOps {
    /// A bus of constant drivers for `value`.
    fn const_word(&mut self, value: u32) -> Word32;
    /// Bitwise XOR of two buses.
    fn xor_word(&mut self, a: &Word32, b: &Word32) -> Word32;
    /// Bitwise XOR, returning both the result and the 32 XOR gate ids
    /// (used to tag the target node vector `v`).
    fn xor_word_tagged(&mut self, a: &Word32, b: &Word32) -> (Word32, Vec<NodeId>);
    /// Bitwise AND of a bus with a single control net.
    fn and_word_scalar(&mut self, a: &Word32, s: NodeId) -> Word32;
    /// Per-bit multiplexer `sel ? a : b`.
    fn mux_word(&mut self, sel: NodeId, a: &Word32, b: &Word32) -> Word32;
    /// Ripple-carry adder modulo 2³² (the `⊞` gates of Fig. 2).
    fn add_word(&mut self, a: &Word32, b: &Word32) -> Word32;
    /// A bank of 32 flip-flops with the given power-up word.
    fn dff_word(&mut self, init: u32) -> Word32;
    /// Connects the D inputs of a flip-flop bus.
    fn connect_dff_word(&mut self, ff: &Word32, d: &Word32);
    /// A 256×32 ROM lookup (block-RAM model); `addr` is 8 nets, LSB
    /// first.
    fn rom_word(&mut self, rom: RomId, addr: &[NodeId]) -> Word32;
    /// Left shift by 8 bits (one byte), zero fill.
    fn shl8(&mut self, a: &Word32) -> Word32;
    /// Right shift by 8 bits (one byte), zero fill.
    fn shr8(&mut self, a: &Word32) -> Word32;
}

impl WordOps for Network {
    fn const_word(&mut self, value: u32) -> Word32 {
        Word32::new((0..32).map(|i| self.constant((value >> i) & 1 == 1)).collect())
    }

    fn xor_word(&mut self, a: &Word32, b: &Word32) -> Word32 {
        self.xor_word_tagged(a, b).0
    }

    fn xor_word_tagged(&mut self, a: &Word32, b: &Word32) -> (Word32, Vec<NodeId>) {
        let gates: Vec<NodeId> = (0..32).map(|i| self.xor(a.bit(i), b.bit(i))).collect();
        (Word32::new(gates.clone()), gates)
    }

    fn and_word_scalar(&mut self, a: &Word32, s: NodeId) -> Word32 {
        Word32::new((0..32).map(|i| self.and(a.bit(i), s)).collect())
    }

    fn mux_word(&mut self, sel: NodeId, a: &Word32, b: &Word32) -> Word32 {
        Word32::new((0..32).map(|i| self.mux(sel, a.bit(i), b.bit(i))).collect())
    }

    fn add_word(&mut self, a: &Word32, b: &Word32) -> Word32 {
        let mut sum = Vec::with_capacity(32);
        let mut carry: Option<NodeId> = None;
        for i in 0..32 {
            let p = self.xor(a.bit(i), b.bit(i)); // propagate
            let g = self.and(a.bit(i), b.bit(i)); // generate
            match carry {
                None => {
                    sum.push(p);
                    carry = Some(g);
                }
                Some(c) => {
                    let s = self.xor(p, c);
                    sum.push(s);
                    if i < 31 {
                        let pc = self.and(p, c);
                        let cout = self.or(g, pc);
                        carry = Some(cout);
                    }
                }
            }
        }
        Word32::new(sum)
    }

    fn dff_word(&mut self, init: u32) -> Word32 {
        Word32::new((0..32).map(|i| self.dff((init >> i) & 1 == 1)).collect())
    }

    fn connect_dff_word(&mut self, ff: &Word32, d: &Word32) {
        for i in 0..32 {
            self.connect_dff(ff.bit(i), d.bit(i));
        }
    }

    fn rom_word(&mut self, rom: RomId, addr: &[NodeId]) -> Word32 {
        Word32::new(self.rom_outputs(rom, addr))
    }

    fn shl8(&mut self, a: &Word32) -> Word32 {
        let zero = self.constant(false);
        let mut bits = vec![zero; 8];
        bits.extend_from_slice(&a.bits()[..24]);
        Word32::new(bits)
    }

    fn shr8(&mut self, a: &Word32) -> Word32 {
        let zero = self.constant(false);
        let mut bits = a.bits()[8..].to_vec();
        bits.extend(std::iter::repeat_n(zero, 8));
        Word32::new(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;

    /// Drives `word` as inputs is impossible (consts only), so build
    /// arithmetic from constant words and check the result via sim.
    fn eval_binop(f: impl Fn(&mut Network, &Word32, &Word32) -> Word32, a: u32, b: u32) -> u32 {
        let mut n = Network::new();
        let wa = n.const_word(a);
        let wb = n.const_word(b);
        let out = f(&mut n, &wa, &wb);
        let mut sim = Simulator::new(&n).unwrap();
        sim.step(&[]);
        sim.word(out.bits())
    }

    #[test]
    fn adder_matches_wrapping_add() {
        let cases = [
            (0u32, 0u32),
            (1, 1),
            (0xFFFF_FFFF, 1),
            (0x8000_0000, 0x8000_0000),
            (0x2BD6_459F, 0x82C5_B300),
            (0xDEAD_BEEF, 0x0BAD_F00D),
        ];
        for (a, b) in cases {
            assert_eq!(
                eval_binop(|n, x, y| n.add_word(x, y), a, b),
                a.wrapping_add(b),
                "{a:#x} + {b:#x}"
            );
        }
    }

    #[test]
    fn xor_matches() {
        assert_eq!(
            eval_binop(|n, x, y| n.xor_word(x, y), 0xAAAA5555, 0x0F0F0F0F),
            0xAAAA5555 ^ 0x0F0F0F0F
        );
    }

    #[test]
    fn shifts_match() {
        let mut n = Network::new();
        let w = n.const_word(0x12345678);
        let l = n.shl8(&w);
        let r = n.shr8(&w);
        let mut sim = Simulator::new(&n).unwrap();
        sim.step(&[]);
        assert_eq!(sim.word(l.bits()), 0x12345678u32 << 8);
        assert_eq!(sim.word(r.bits()), 0x12345678u32 >> 8);
    }

    #[test]
    fn mux_word_selects() {
        let mut n = Network::new();
        let sel = n.input("sel");
        let a = n.const_word(0xAAAAAAAA);
        let b = n.const_word(0x55555555);
        let m = n.mux_word(sel, &a, &b);
        let mut sim = Simulator::new(&n).unwrap();
        sim.step(&[(sel, true)]);
        assert_eq!(sim.word(m.bits()), 0xAAAAAAAA);
        sim.step(&[(sel, false)]);
        assert_eq!(sim.word(m.bits()), 0x55555555);
    }

    #[test]
    fn dff_word_latches() {
        let mut n = Network::new();
        let ff = n.dff_word(0);
        let d = n.const_word(0xCAFEBABE);
        n.connect_dff_word(&ff, &d);
        let mut sim = Simulator::new(&n).unwrap();
        assert_eq!(sim.word(ff.bits()), 0);
        sim.step(&[]);
        assert_eq!(sim.word(ff.bits()), 0xCAFEBABE);
    }

    #[test]
    fn byte_extraction() {
        let mut n = Network::new();
        let w = n.const_word(0x11223344);
        let b3 = w.byte(3);
        let mut sim = Simulator::new(&n).unwrap();
        sim.step(&[]);
        let v = b3.iter().enumerate().fold(0u8, |acc, (i, &b)| acc | (u8::from(sim.value(b)) << i));
        assert_eq!(v, 0x11);
    }
}
