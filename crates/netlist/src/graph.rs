//! The Boolean-network representation `N = (V, E)`.

use core::fmt;
use std::collections::HashMap;

/// Identifier of a node in a [`Network`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node's index into [`Network::nodes`].
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a ROM table attached to a [`Network`] (modelling a
/// block RAM configured as a 256-entry, 32-bit-wide ROM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RomId(pub u32);

/// The operation a node computes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// A primary input with a diagnostic name.
    Input {
        /// Signal name.
        name: String,
    },
    /// A constant driver.
    Const(bool),
    /// Logical complement of the single fanin.
    Not,
    /// Two-input AND.
    And,
    /// Two-input OR.
    Or,
    /// Two-input XOR.
    Xor,
    /// Three-fanin multiplexer `fanin[0] ? fanin[1] : fanin[2]`.
    Mux,
    /// A D flip-flop; its value is the state latched at the previous
    /// clock edge, `fanin[0]` is the D input. `init` is the power-up
    /// (configuration-time) value.
    Dff {
        /// Power-up value, set by the configuration logic (GSR).
        init: bool,
    },
    /// Output bit `bit` of the ROM `rom`, addressed by the eight fanin
    /// bits (`fanin[0]` is address bit 0). Reads are modelled as
    /// asynchronous; see DESIGN.md for the substitution note.
    RomOut {
        /// Which ROM table.
        rom: RomId,
        /// Which of the 32 data bits.
        bit: u8,
    },
}

impl NodeKind {
    /// Number of fanins this kind requires, if fixed.
    #[must_use]
    pub fn arity(&self) -> Option<usize> {
        match self {
            NodeKind::Input { .. } | NodeKind::Const(_) => Some(0),
            NodeKind::Not | NodeKind::Dff { .. } => Some(1),
            NodeKind::And | NodeKind::Or | NodeKind::Xor => Some(2),
            NodeKind::Mux => Some(3),
            NodeKind::RomOut { .. } => Some(8),
        }
    }

    /// Whether the node is a combinational gate (to be covered by
    /// LUTs during technology mapping).
    #[must_use]
    pub fn is_gate(&self) -> bool {
        matches!(self, NodeKind::Not | NodeKind::And | NodeKind::Or | NodeKind::Xor | NodeKind::Mux)
    }

    /// Whether the node starts a combinational timing path (inputs,
    /// constants, flip-flops and ROM outputs are all mapping
    /// boundaries; ROM reads are block-RAM lookups, not LUT logic).
    #[must_use]
    pub fn is_source(&self) -> bool {
        !self.is_gate()
    }
}

/// A node of the network.
#[derive(Debug, Clone)]
pub struct Node {
    /// Operation.
    pub kind: NodeKind,
    /// Fanin node ids, in operand order.
    pub fanin: Vec<NodeId>,
    /// `KEEP`/`DONT_TOUCH` attribute: when set, technology mapping
    /// must cover this node with a trivial cut (the countermeasure of
    /// Section VII-A).
    pub keep: bool,
}

/// An error reported by [`Network`] validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// A node references a fanin id that does not exist (forward
    /// reference or out of range).
    DanglingFanin {
        /// The offending node.
        node: NodeId,
        /// The missing fanin.
        fanin: NodeId,
    },
    /// A node has the wrong number of fanins for its kind.
    BadArity {
        /// The offending node.
        node: NodeId,
        /// Expected fanin count.
        expected: usize,
        /// Actual fanin count.
        got: usize,
    },
    /// The combinational part of the network contains a cycle through
    /// the given node.
    CombinationalCycle {
        /// A node on the cycle.
        node: NodeId,
    },
    /// A `RomOut` node references a ROM id that was never registered.
    UnknownRom {
        /// The offending node.
        node: NodeId,
    },
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::DanglingFanin { node, fanin } => {
                write!(f, "node {node} references missing fanin {fanin}")
            }
            NetworkError::BadArity { node, expected, got } => {
                write!(f, "node {node} has {got} fanins, expected {expected}")
            }
            NetworkError::CombinationalCycle { node } => {
                write!(f, "combinational cycle through node {node}")
            }
            NetworkError::UnknownRom { node } => {
                write!(f, "node {node} references an unregistered ROM")
            }
        }
    }
}

impl std::error::Error for NetworkError {}

/// A Boolean network: gates, sequential elements, ROMs and the nets
/// connecting them.
///
/// Nodes are created append-only; fanins must reference existing
/// nodes, except for flip-flops whose D input may be connected later
/// with [`Network::connect_dff`] (sequential loops are legal).
///
/// # Example
///
/// ```
/// use netlist::{Network, NodeKind};
///
/// let mut n = Network::new();
/// let a = n.input("a");
/// let b = n.input("b");
/// let x = n.xor(a, b);
/// n.set_output("y", x);
/// assert_eq!(n.gate_count(), 1);
/// n.validate().unwrap();
/// ```
#[derive(Debug, Clone, Default)]
pub struct Network {
    nodes: Vec<Node>,
    roms: Vec<[u32; 256]>,
    inputs: Vec<NodeId>,
    outputs: Vec<(String, NodeId)>,
}

impl Network {
    /// Creates an empty network.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, kind: NodeKind, fanin: Vec<NodeId>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node { kind, fanin, keep: false });
        id
    }

    /// Adds a primary input.
    pub fn input(&mut self, name: impl Into<String>) -> NodeId {
        let id = self.push(NodeKind::Input { name: name.into() }, Vec::new());
        self.inputs.push(id);
        id
    }

    /// Adds a constant driver.
    pub fn constant(&mut self, value: bool) -> NodeId {
        self.push(NodeKind::Const(value), Vec::new())
    }

    /// Adds a NOT gate.
    pub fn not(&mut self, a: NodeId) -> NodeId {
        self.push(NodeKind::Not, vec![a])
    }

    /// Adds a two-input AND gate.
    pub fn and(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(NodeKind::And, vec![a, b])
    }

    /// Adds a two-input OR gate.
    pub fn or(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(NodeKind::Or, vec![a, b])
    }

    /// Adds a two-input XOR gate.
    pub fn xor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(NodeKind::Xor, vec![a, b])
    }

    /// Adds a multiplexer `sel ? a : b`.
    pub fn mux(&mut self, sel: NodeId, a: NodeId, b: NodeId) -> NodeId {
        self.push(NodeKind::Mux, vec![sel, a, b])
    }

    /// Adds a D flip-flop with power-up value `init` and an
    /// unconnected D input (connect it later with
    /// [`Network::connect_dff`]).
    pub fn dff(&mut self, init: bool) -> NodeId {
        self.push(NodeKind::Dff { init }, Vec::new())
    }

    /// Connects the D input of flip-flop `ff`.
    ///
    /// # Panics
    ///
    /// Panics if `ff` is not a flip-flop or is already connected.
    pub fn connect_dff(&mut self, ff: NodeId, d: NodeId) {
        let node = &mut self.nodes[ff.index()];
        assert!(matches!(node.kind, NodeKind::Dff { .. }), "{ff} is not a flip-flop");
        assert!(node.fanin.is_empty(), "{ff} is already connected");
        node.fanin.push(d);
    }

    /// Registers a 256×32 ROM table and returns its id.
    pub fn add_rom(&mut self, table: [u32; 256]) -> RomId {
        let id = RomId(self.roms.len() as u32);
        self.roms.push(table);
        id
    }

    /// Adds the 32 output-bit nodes of ROM `rom`, addressed by the
    /// 8-bit address `addr` (`addr[0]` is address bit 0).
    ///
    /// # Panics
    ///
    /// Panics if `addr` does not have exactly 8 elements.
    pub fn rom_outputs(&mut self, rom: RomId, addr: &[NodeId]) -> Vec<NodeId> {
        assert_eq!(addr.len(), 8, "ROM address must be 8 bits");
        (0..32).map(|bit| self.push(NodeKind::RomOut { rom, bit }, addr.to_vec())).collect()
    }

    /// The ROM table registered under `rom`.
    #[must_use]
    pub fn rom_table(&self, rom: RomId) -> &[u32; 256] {
        &self.roms[rom.0 as usize]
    }

    /// Number of registered ROMs.
    #[must_use]
    pub fn rom_count(&self) -> usize {
        self.roms.len()
    }

    /// Marks a node with the `KEEP`/`DONT_TOUCH` attribute.
    pub fn set_keep(&mut self, id: NodeId) {
        self.nodes[id.index()].keep = true;
    }

    /// Declares a named primary output.
    pub fn set_output(&mut self, name: impl Into<String>, id: NodeId) {
        self.outputs.push((name.into(), id));
    }

    /// The node with id `id`.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// All nodes in id order.
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Iterates over `(id, node)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Total number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the network has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of combinational gates.
    #[must_use]
    pub fn gate_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.kind.is_gate()).count()
    }

    /// Number of flip-flops.
    #[must_use]
    pub fn dff_count(&self) -> usize {
        self.nodes.iter().filter(|n| matches!(n.kind, NodeKind::Dff { .. })).count()
    }

    /// Primary inputs in declaration order.
    #[must_use]
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Named primary outputs in declaration order.
    #[must_use]
    pub fn outputs(&self) -> &[(String, NodeId)] {
        &self.outputs
    }

    /// Finds a primary output by name.
    #[must_use]
    pub fn output(&self, name: &str) -> Option<NodeId> {
        self.outputs.iter().find(|(n, _)| n == name).map(|&(_, id)| id)
    }

    /// The fanout map: for each node, which nodes consume it.
    #[must_use]
    pub fn fanouts(&self) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.nodes.len()];
        for (id, node) in self.iter() {
            for &f in &node.fanin {
                out[f.index()].push(id);
            }
        }
        out
    }

    /// A topological order of the *combinational* nodes: every gate
    /// and ROM output appears after all of its fanins, with inputs,
    /// constants and flip-flops treated as sources. The returned order
    /// contains every node exactly once.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::CombinationalCycle`] if the
    /// combinational logic is cyclic.
    pub fn topo_order(&self) -> Result<Vec<NodeId>, NetworkError> {
        // Kahn's algorithm over combinational dependencies only: a
        // combinational node (gate or ROM output) depends on each of
        // its fanins that is itself combinational; inputs, constants
        // and flip-flop outputs are sources.
        let n = self.nodes.len();
        let mut deg = vec![0usize; n];
        for (i, node) in self.nodes.iter().enumerate() {
            if matches!(
                node.kind,
                NodeKind::Dff { .. } | NodeKind::Input { .. } | NodeKind::Const(_)
            ) {
                deg[i] = 0;
            } else {
                deg[i] = node
                    .fanin
                    .iter()
                    .filter(|f| {
                        !matches!(
                            self.nodes[f.index()].kind,
                            NodeKind::Dff { .. } | NodeKind::Input { .. } | NodeKind::Const(_)
                        )
                    })
                    .count();
            }
        }
        let fanouts = self.fanouts();
        let mut queue: Vec<NodeId> =
            (0..n).filter(|&i| deg[i] == 0).map(|i| NodeId(i as u32)).collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let id = queue[head];
            head += 1;
            order.push(id);
            // Only edges out of combinational nodes were counted in
            // `deg`; edges out of sources must not be relaxed.
            if matches!(
                self.nodes[id.index()].kind,
                NodeKind::Dff { .. } | NodeKind::Input { .. } | NodeKind::Const(_)
            ) {
                continue;
            }
            for &succ in &fanouts[id.index()] {
                let snode = &self.nodes[succ.index()];
                if matches!(
                    snode.kind,
                    NodeKind::Dff { .. } | NodeKind::Input { .. } | NodeKind::Const(_)
                ) {
                    continue;
                }
                deg[succ.index()] -= 1;
                if deg[succ.index()] == 0 {
                    queue.push(succ);
                }
            }
        }
        if order.len() != n {
            let stuck = (0..n)
                .find(|&i| {
                    deg[i] > 0
                        && !matches!(
                            self.nodes[i].kind,
                            NodeKind::Dff { .. } | NodeKind::Input { .. } | NodeKind::Const(_)
                        )
                })
                .map(|i| NodeId(i as u32))
                .unwrap_or(NodeId(0));
            return Err(NetworkError::CombinationalCycle { node: stuck });
        }
        Ok(order)
    }

    /// Validates structural invariants: arities, fanin existence,
    /// ROM references and combinational acyclicity.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), NetworkError> {
        for (id, node) in self.iter() {
            if let Some(expected) = node.kind.arity() {
                // Dffs may legitimately be declared before connection,
                // but a *finished* network must have them wired.
                if node.fanin.len() != expected {
                    return Err(NetworkError::BadArity {
                        node: id,
                        expected,
                        got: node.fanin.len(),
                    });
                }
            }
            for &f in &node.fanin {
                if f.index() >= self.nodes.len() {
                    return Err(NetworkError::DanglingFanin { node: id, fanin: f });
                }
            }
            if let NodeKind::RomOut { rom, .. } = node.kind {
                if rom.0 as usize >= self.roms.len() {
                    return Err(NetworkError::UnknownRom { node: id });
                }
            }
        }
        self.topo_order().map(|_| ())
    }

    /// Per-name input index lookup (diagnostics).
    #[must_use]
    pub fn input_names(&self) -> HashMap<String, NodeId> {
        self.inputs
            .iter()
            .map(|&id| match &self.nodes[id.index()].kind {
                NodeKind::Input { name } => (name.clone(), id),
                _ => unreachable!("inputs list only holds Input nodes"),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_validate_small_network() {
        let mut n = Network::new();
        let a = n.input("a");
        let b = n.input("b");
        let x = n.xor(a, b);
        let g = n.and(x, a);
        n.set_output("y", g);
        n.validate().expect("valid network");
        assert_eq!(n.gate_count(), 2);
        assert_eq!(n.output("y"), Some(g));
        assert_eq!(n.output("nope"), None);
    }

    #[test]
    fn dff_loops_are_legal() {
        let mut n = Network::new();
        let ff = n.dff(false);
        let inv = n.not(ff);
        n.connect_dff(ff, inv); // toggle flip-flop
        n.validate().expect("sequential loop is fine");
    }

    #[test]
    fn combinational_cycle_detected() {
        let mut n = Network::new();
        let a = n.input("a");
        // Manually create a cycle: x = and(a, y), y = not(x).
        let x = n.and(a, a); // placeholder fanin, patched below
        let y = n.not(x);
        n.nodes[x.index()].fanin[1] = y;
        assert!(matches!(n.validate(), Err(NetworkError::CombinationalCycle { .. })));
    }

    #[test]
    fn unconnected_dff_fails_validation() {
        let mut n = Network::new();
        let _ff = n.dff(true);
        assert!(matches!(n.validate(), Err(NetworkError::BadArity { .. })));
    }

    #[test]
    fn rom_outputs_have_eight_fanins() {
        let mut n = Network::new();
        let addr: Vec<NodeId> = (0..8).map(|i| n.input(format!("a{i}"))).collect();
        let rom = n.add_rom([0u32; 256]);
        let outs = n.rom_outputs(rom, &addr);
        assert_eq!(outs.len(), 32);
        n.validate().expect("valid");
        assert_eq!(n.node(outs[0]).fanin.len(), 8);
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let mut n = Network::new();
        let a = n.input("a");
        let b = n.input("b");
        let x = n.xor(a, b);
        let y = n.and(x, b);
        let order = n.topo_order().unwrap();
        let pos = |id: NodeId| order.iter().position(|&o| o == id).expect("node present in order");
        assert!(pos(x) < pos(y));
    }

    #[test]
    fn fanouts_inverse_of_fanins() {
        let mut n = Network::new();
        let a = n.input("a");
        let x = n.not(a);
        let y = n.not(a);
        let fo = n.fanouts();
        assert_eq!(fo[a.index()], vec![x, y]);
    }
}
