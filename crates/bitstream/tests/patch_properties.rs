//! Patch-oracle properties: for *any* edit list, a sealed patch must
//! be byte-identical to a from-scratch reseal of the edited body — the
//! dirty-window optimisation is pure bookkeeping, never semantics.
//! And the seekable device-side open must be total: any garbled,
//! truncated or foreign container yields exactly the typed error the
//! full open yields, never a panic.

use bitstream::{
    Bitstream, BitstreamBuilder, BodyEdit, FrameData, OpenSecureError, PatchError, PatchOracle,
    SecureBitstream, BODY_OFFSET,
};
use proptest::prelude::*;

const K_ENC: [u8; 32] = [0xC4; 32];
const K_AUTH: [u8; 32] = [0x9B; 32];
const IV: [u8; 16] = [0x52; 16];

/// A well-formed golden bitstream with pseudo-random frame contents.
fn golden(frames: usize, seed: u64) -> Bitstream {
    let mut data = FrameData::new(frames);
    let mut x = seed | 1;
    for b in data.as_mut_bytes().iter_mut() {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *b = (x >> 56) as u8;
    }
    BitstreamBuilder::new(data).build()
}

fn oracle(frames: usize, seed: u64) -> (Bitstream, PatchOracle) {
    let bs = golden(frames, seed);
    let sealed = SecureBitstream::seal(&bs, &K_ENC, &K_AUTH, IV);
    let oracle = PatchOracle::new(&sealed, &K_ENC).expect("golden container opens");
    (bs, oracle)
}

/// Raw generator output → edit list. Offsets land anywhere in (and
/// slightly past) the body so `OutOfRange` is exercised too.
fn to_edits(raw: &[(u64, u8, u8)], body: usize) -> Vec<BodyEdit> {
    raw.iter()
        .map(|&(pos, len, fill)| {
            let len = usize::from(len % 4) + 1;
            let offset = (pos as usize) % (body + 8);
            BodyEdit::new(offset, vec![fill; len])
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any edit list either fails typed (overlap / out of range) or
    /// seals to *exactly* the container a from-scratch reseal of the
    /// edited body produces — and the device accepts it.
    #[test]
    fn patched_containers_equal_full_reseals(
        frames in 1usize..4,
        seed in any::<u64>(),
        raw in prop::collection::vec((any::<u64>(), any::<u8>(), any::<u8>()), 0..4),
    ) {
        let (bs, oracle) = oracle(frames, seed);
        let edits = to_edits(&raw, bs.len());
        match oracle.patch_edits(&edits) {
            Err(PatchError::OutOfRange { .. } | PatchError::Overlap { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected patch error: {e}"),
            Ok(patched) => {
                let mut body = bs.as_bytes().to_vec();
                for e in &edits {
                    body[e.offset..e.offset + e.bytes.len()].copy_from_slice(&e.bytes);
                }
                let edited = Bitstream::from_bytes(body.clone());
                let resealed = SecureBitstream::seal(&edited, &K_ENC, &K_AUTH, IV);
                prop_assert_eq!(&patched, &resealed, "patch must equal the full reseal");

                // HMAC verifies and the device sees the edited body.
                let opened = patched.open(&K_ENC).expect("device opens the patched container");
                prop_assert_eq!(opened.bitstream.as_bytes(), &body[..]);

                // Ciphertext before the dirty window is untouched.
                if let Some(first) = edits.iter().map(|e| e.offset).min() {
                    let clean = (BODY_OFFSET + first) / 16 * 16;
                    let golden_ct = oracle.golden_container().ciphertext;
                    prop_assert_eq!(
                        &patched.ciphertext[..clean],
                        &golden_ct[..clean],
                        "clean prefix blocks must be reused byte-for-byte"
                    );
                }
            }
        }
    }

    /// The seekable open is total and agrees with the full open on
    /// every mangled container: same plaintext on success, same typed
    /// error on refusal.
    #[test]
    fn open_patched_is_total_and_agrees_with_open(
        frames in 1usize..3,
        seed in any::<u64>(),
        garbles in prop::collection::vec((any::<u64>(), 0u8..8), 0..3),
        cut in any::<u64>(),
        truncate in any::<bool>(),
    ) {
        let (_, oracle) = oracle(frames, seed);
        let mut sealed = oracle.golden_container();
        for &(pos, bit) in &garbles {
            let n = sealed.ciphertext.len();
            sealed.ciphertext[(pos as usize) % n] ^= 1 << bit;
        }
        if truncate {
            let n = sealed.ciphertext.len();
            sealed.ciphertext.truncate((cut as usize) % (n + 1));
        }
        let full = sealed.open(&K_ENC).map(|o| o.bitstream);
        let seek = oracle.open_patched(&sealed);
        match (seek, full) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(a), Err(b)) => prop_assert_eq!(a, b, "typed errors must agree"),
            (seek, full) => prop_assert!(
                false,
                "seekable and full opens disagree: {seek:?} vs {full:?}"
            ),
        }
    }

    /// Payload-mode edits always yield a container the device both
    /// MAC-accepts and CRC-accepts — the oracle's delta-CRC repair is
    /// part of the contract.
    #[test]
    fn payload_edits_always_reseal_with_a_valid_crc(
        frames in 1usize..4,
        seed in any::<u64>(),
        pos in any::<u64>(),
        word in any::<u32>(),
    ) {
        let (bs, oracle) = oracle(frames, seed);
        let payload = bs.fdri_data_range().expect("payload");
        let offset = payload.start + (pos as usize) % (payload.len() - 4) / 4 * 4;
        let edit = BodyEdit::new(offset, word.to_be_bytes().to_vec());
        let patched = oracle
            .patch_payload_edits(std::slice::from_ref(&edit))
            .expect("payload edits are always repairable");
        let opened = patched.open(&K_ENC).expect("device opens");
        let parsed = opened.bitstream.parse().expect("patched stream parses");
        prop_assert!(parsed.crc_checked, "delta repair must leave a valid config CRC");
        prop_assert_eq!(
            &opened.bitstream.as_bytes()[offset..offset + 4],
            &word.to_be_bytes()[..]
        );
    }

    /// Arbitrary bytes never panic the constructor: any byte soup is
    /// either a (vanishingly unlikely) valid container or a typed
    /// [`OpenSecureError`].
    #[test]
    fn construction_is_total_over_arbitrary_containers(
        iv in any::<[u8; 16]>(),
        bytes in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let sealed = SecureBitstream { iv, ciphertext: bytes };
        match PatchOracle::new(&sealed, &K_ENC) {
            Ok(_) => {}
            Err(
                OpenSecureError::Decrypt(_)
                | OpenSecureError::Malformed
                | OpenSecureError::MacMismatch,
            ) => {}
        }
    }
}
