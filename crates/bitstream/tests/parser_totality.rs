//! Parser totality: `Bitstream::parse` (and the other attacker-facing
//! decoders — `fdri_data_range`, `packets`, `recompute_crc`,
//! `disable_crc`) must be total over arbitrary bytes. Every input
//! either parses or yields a typed [`ParseBitstreamError`]; no input
//! may panic. The fuzz corpus covers fully random streams, truncated
//! well-formed streams, and single-bit-mutated well-formed streams —
//! the three shapes a glitchy configuration port actually produces.

use bitstream::{Bitstream, BitstreamBuilder, FrameData, ParseBitstreamError, SYNC_WORD};
use proptest::prelude::*;

/// A well-formed bitstream with pseudo-random frame contents.
fn well_formed(frames: usize, seed: u64) -> Bitstream {
    let mut data = FrameData::new(frames);
    let mut x = seed | 1;
    for b in data.as_mut_bytes().iter_mut() {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *b = (x >> 56) as u8;
    }
    BitstreamBuilder::new(data).build()
}

/// Drives every attacker-facing decode path; returns whether `parse`
/// succeeded. Any panic here is a test failure by definition.
fn exercise(bs: &Bitstream) -> bool {
    let parsed = bs.parse();
    let ok = parsed.is_ok();
    let _ = bs.fdri_data_range();
    let _ = bs.packets();
    let mut m = bs.clone();
    let _ = m.recompute_crc();
    let mut m = bs.clone();
    let _ = m.disable_crc();
    ok
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        let bs = Bitstream::from_bytes(bytes);
        let _ = exercise(&bs);
    }

    #[test]
    fn arbitrary_bytes_after_sync_never_panic(
        bytes in prop::collection::vec(any::<u8>(), 0..2048),
    ) {
        // Force the parser past the sync search so the packet decoder
        // itself sees the random words.
        let mut all = SYNC_WORD.to_be_bytes().to_vec();
        all.extend(bytes);
        let bs = Bitstream::from_bytes(all);
        let _ = exercise(&bs);
    }

    #[test]
    fn truncations_never_panic(frames in 1usize..4, seed in any::<u64>(), cut in any::<u64>()) {
        let bs = well_formed(frames, seed);
        let cut = (cut as usize) % (bs.len() + 1);
        let truncated = Bitstream::from_bytes(bs.as_bytes()[..cut].to_vec());
        let _ = exercise(&truncated);
    }

    #[test]
    fn single_bit_mutations_never_panic(
        frames in 1usize..4,
        seed in any::<u64>(),
        pos in any::<u64>(),
        bit in 0u8..8,
    ) {
        let mut bs = well_formed(frames, seed);
        let n = bs.len();
        bs.as_mut_bytes()[(pos as usize) % n] ^= 1 << bit;
        // A mutated stream must either parse (mutation hit padding or
        // was CRC-neutral) or fail with a typed error.
        match bs.parse() {
            Ok(_) | Err(ParseBitstreamError::NoSync)
            | Err(ParseBitstreamError::Truncated)
            | Err(ParseBitstreamError::UnknownRegister { .. })
            | Err(ParseBitstreamError::CrcMismatch { .. })
            | Err(ParseBitstreamError::RaggedFrames { .. }) => {}
        }
        let _ = exercise(&bs);
    }

    #[test]
    fn well_formed_always_parse(frames in 1usize..5, seed in any::<u64>()) {
        let bs = well_formed(frames, seed);
        prop_assert!(exercise(&bs), "a builder-produced stream must parse");
    }
}
