//! Partial-stream codec properties: [`PartialBitstream::parse`] must
//! be total over arbitrary bytes (every input parses or yields a
//! typed [`ParsePartialError`]; none may panic), and
//! [`PartialBitstream::assemble`] → `parse` must round-trip the run
//! list exactly — the two halves of the wire boundary the forge and
//! the simulated configuration port meet at. The fuzz corpus covers
//! fully random streams, random words dropped behind a forced sync,
//! truncated well-formed streams, and single-bit-mutated well-formed
//! streams — the shapes a glitchy configuration port produces.

use bitstream::{FrameData, ParsePartialError, PartialBitstream, PartialRun, SYNC_WORD};
use proptest::prelude::*;

const IDCODE: u32 = 0x0362_D093;

/// A run list with pseudo-random frame contents, shaped by the
/// proptest-drawn `(start_frame, frame_count)` pairs.
fn runs_from(shape: &[(u16, u8)], seed: u64) -> Vec<PartialRun> {
    let mut x = seed | 1;
    shape
        .iter()
        .map(|&(start, count)| {
            let mut frames = FrameData::new(usize::from(count) + 1);
            for b in frames.as_mut_bytes().iter_mut() {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                *b = (x >> 56) as u8;
            }
            PartialRun { start_frame: usize::from(start), frames }
        })
        .collect()
}

/// Parses and asserts the outcome is a value or a typed error — any
/// panic is a test failure by definition.
fn exercise(stream: &PartialBitstream) -> bool {
    match stream.parse() {
        Ok(_) => true,
        Err(
            ParsePartialError::NoSync
            | ParsePartialError::Truncated
            | ParsePartialError::UnknownRegister { .. }
            | ParsePartialError::CrcMismatch { .. }
            | ParsePartialError::FdriBeforeFar
            | ParsePartialError::RaggedRun { .. },
        ) => false,
        // `ParsePartialError` is non_exhaustive; new variants are
        // still typed errors, which is all totality asks for.
        Err(_) => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        let _ = exercise(&PartialBitstream::from_bytes(bytes));
    }

    #[test]
    fn arbitrary_bytes_after_sync_never_panic(
        bytes in prop::collection::vec(any::<u8>(), 0..2048),
    ) {
        // Force the parser past the sync search so the packet decoder
        // itself sees the random words.
        let mut all = SYNC_WORD.to_be_bytes().to_vec();
        all.extend(bytes);
        let _ = exercise(&PartialBitstream::from_bytes(all));
    }

    #[test]
    fn assemble_parse_round_trips(
        shape in prop::collection::vec((any::<u16>(), 0u8..3), 1..4),
        seed in any::<u64>(),
    ) {
        let runs = runs_from(&shape, seed);
        let stream = PartialBitstream::assemble(IDCODE, &runs).expect("runs fit the encoding");
        let config = stream.parse().expect("assembled streams parse");
        prop_assert_eq!(config.idcode, Some(IDCODE));
        prop_assert!(config.crc_checked, "assembled streams carry a matching CRC");
        prop_assert_eq!(&config.runs, &runs, "runs survive the wire byte-exactly");
        let total: usize = runs.iter().map(|r| r.frames.frame_count()).sum();
        prop_assert_eq!(config.frames_written(), total);
    }

    #[test]
    fn truncations_never_panic(
        shape in prop::collection::vec((any::<u16>(), 0u8..3), 1..3),
        seed in any::<u64>(),
        cut in any::<u64>(),
    ) {
        let runs = runs_from(&shape, seed);
        let stream = PartialBitstream::assemble(IDCODE, &runs).expect("runs fit the encoding");
        let cut = (cut as usize) % (stream.len() + 1);
        let truncated = PartialBitstream::from_bytes(stream.as_bytes()[..cut].to_vec());
        let _ = exercise(&truncated);
    }

    #[test]
    fn single_bit_mutations_never_panic(
        shape in prop::collection::vec((any::<u16>(), 0u8..3), 1..3),
        seed in any::<u64>(),
        pos in any::<u64>(),
        bit in 0u8..8,
    ) {
        let runs = runs_from(&shape, seed);
        let stream = PartialBitstream::assemble(IDCODE, &runs).expect("runs fit the encoding");
        let mut bytes = stream.into_bytes();
        let n = bytes.len();
        bytes[(pos as usize) % n] ^= 1 << bit;
        // A mutated stream must either parse (mutation hit padding or
        // was CRC-neutral) or fail with a typed error.
        let _ = exercise(&PartialBitstream::from_bytes(bytes));
    }
}
