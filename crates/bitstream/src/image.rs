//! Whole-bitstream assembly and parsing.
//!
//! A bitstream file consists of a header, the sync word, and a packet
//! stream that resets the CRC (`RCRC`), writes device registers,
//! streams the configuration frames into `FDRI`, writes the expected
//! CRC, and desynchronizes. [`BitstreamBuilder`] produces such files;
//! [`Bitstream::parse`] consumes them the way the device's
//! configuration logic does — including the quirk the paper's
//! CRC-disable trick relies on: all-zero words are ignored, so
//! overwriting the `Write CRC` packet with zeros removes the check.

use core::fmt;
use core::ops::Range;

use crate::crc::ConfigCrc;
use crate::frame::{FrameData, FRAME_WORDS};
use crate::packet::{
    CommandCode, Packet, PacketEncodeError, RegisterAddress, BUS_WIDTH_DETECT, BUS_WIDTH_SYNC,
    DUMMY_WORD, NOP, SYNC_WORD,
};

/// Default device ID used by the builder.
pub const DEFAULT_IDCODE: u32 = 0x0362_D093; // Artix-7 XC7A35T

/// Builds a bitstream file from configuration frames.
///
/// # Example
///
/// ```
/// use bitstream::{BitstreamBuilder, FrameData};
///
/// let frames = FrameData::new(3);
/// let bs = BitstreamBuilder::new(frames).build();
/// let config = bs.parse()?;
/// assert_eq!(config.frames.frame_count(), 3);
/// assert!(config.crc_checked);
/// # Ok::<(), bitstream::ParseBitstreamError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BitstreamBuilder {
    frames: FrameData,
    idcode: u32,
}

impl BitstreamBuilder {
    /// Starts a builder around the given frame payload.
    #[must_use]
    pub fn new(frames: FrameData) -> Self {
        Self { frames, idcode: DEFAULT_IDCODE }
    }

    /// Overrides the device ID word.
    #[must_use]
    pub fn idcode(mut self, idcode: u32) -> Self {
        self.idcode = idcode;
        self
    }

    /// Serializes the bitstream, computing the correct CRC.
    ///
    /// # Panics
    ///
    /// Panics if the frame payload exceeds the 27-bit Type 2 word
    /// count (≥ 512 MiB of frames); use [`BitstreamBuilder::try_build`]
    /// to handle that case as a typed error.
    #[must_use]
    pub fn build(self) -> Bitstream {
        self.try_build().expect("frame payload fits the Type 2 word count")
    }

    /// Serializes the bitstream, computing the correct CRC.
    ///
    /// # Errors
    ///
    /// Returns [`PacketEncodeError`] if the frame payload does not fit
    /// the Type 2 word-count field.
    pub fn try_build(self) -> Result<Bitstream, PacketEncodeError> {
        let mut words: Vec<u32> = Vec::new();
        // Header: dummy pad, bus width detection, sync.
        words.extend([DUMMY_WORD; 8]);
        words.push(BUS_WIDTH_SYNC);
        words.push(BUS_WIDTH_DETECT);
        words.extend([DUMMY_WORD; 2]);
        words.push(SYNC_WORD);
        words.push(NOP);

        let mut crc = ConfigCrc::new();
        let write1 = |words: &mut Vec<u32>,
                      crc: &mut ConfigCrc,
                      addr: RegisterAddress,
                      vals: &[u32]|
         -> Result<(), PacketEncodeError> {
            words.push(Packet::type1_header(addr, vals.len())?);
            for &v in vals {
                words.push(v);
                if addr != RegisterAddress::Crc {
                    crc.update(addr as u16, v);
                }
            }
            Ok(())
        };

        write1(&mut words, &mut crc, RegisterAddress::Cmd, &[CommandCode::Rcrc as u32])?;
        crc.reset();
        words.push(NOP);
        write1(&mut words, &mut crc, RegisterAddress::Idcode, &[self.idcode])?;
        write1(&mut words, &mut crc, RegisterAddress::Far, &[0])?;
        write1(&mut words, &mut crc, RegisterAddress::Cmd, &[CommandCode::Wcfg as u32])?;
        // FDRI: Type 1 header with count 0, then the Type 2 payload.
        let payload = self.frames.to_words();
        words.push(Packet::type1_header(RegisterAddress::Fdri, 0)?);
        words.push(Packet::type2_header(payload.len())?);
        for &w in &payload {
            crc.update(RegisterAddress::Fdri as u16, w);
            words.push(w);
        }
        // Expected CRC.
        let expected = crc.value();
        write1(&mut words, &mut crc, RegisterAddress::Crc, &[expected])?;
        words.push(NOP);
        write1(&mut words, &mut crc, RegisterAddress::Cmd, &[CommandCode::Start as u32])?;
        write1(&mut words, &mut crc, RegisterAddress::Cmd, &[CommandCode::Desync as u32])?;
        words.extend([NOP; 2]);

        let mut bytes = Vec::with_capacity(words.len() * 4);
        for w in words {
            bytes.extend_from_slice(&w.to_be_bytes());
        }
        Ok(Bitstream(bytes))
    }
}

/// The result of parsing a bitstream, as seen by the configuration
/// logic.
#[derive(Debug, Clone)]
pub struct ConfigData {
    /// The FDRI payload.
    pub frames: FrameData,
    /// The device ID written during configuration, if any.
    pub idcode: Option<u32>,
    /// Whether a CRC write was present and matched. When the CRC
    /// packet has been zeroed out (the paper's disable trick) this is
    /// `false` and configuration proceeds unchecked.
    pub crc_checked: bool,
}

/// An error from [`Bitstream::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseBitstreamError {
    /// No sync word found.
    NoSync,
    /// The stream ended in the middle of a packet.
    Truncated,
    /// A packet addressed an unknown register.
    UnknownRegister {
        /// Raw address field.
        raw: u16,
    },
    /// The CRC written in the stream does not match the computed one;
    /// the device aborts configuration (pulls `INIT_B` low).
    CrcMismatch {
        /// Value found in the stream.
        stored: u32,
        /// Value computed from the writes.
        computed: u32,
    },
    /// The FDRI payload was not a whole number of frames.
    RaggedFrames {
        /// Number of payload words received.
        words: usize,
    },
}

impl fmt::Display for ParseBitstreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseBitstreamError::NoSync => write!(f, "no sync word found"),
            ParseBitstreamError::Truncated => write!(f, "bitstream truncated mid-packet"),
            ParseBitstreamError::UnknownRegister { raw } => {
                write!(f, "write to unknown register {raw:#x}")
            }
            ParseBitstreamError::CrcMismatch { stored, computed } => {
                write!(f, "crc mismatch: stored {stored:#010x}, computed {computed:#010x}")
            }
            ParseBitstreamError::RaggedFrames { words } => {
                write!(f, "FDRI payload of {words} words is not a whole number of frames")
            }
        }
    }
}

impl std::error::Error for ParseBitstreamError {}

/// A bitstream file: raw bytes plus the operations the attack needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitstream(Vec<u8>);

impl Bitstream {
    /// Wraps raw bytes.
    #[must_use]
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        Self(bytes)
    }

    /// The raw bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Mutable access to the raw bytes.
    pub fn as_mut_bytes(&mut self) -> &mut [u8] {
        &mut self.0
    }

    /// Consumes the wrapper.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.0
    }

    /// Size in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the bitstream is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Finds the first occurrence of a big-endian 32-bit word at a
    /// 4-byte-aligned offset at or after `from`.
    #[must_use]
    pub fn find_word(&self, word: u32, from: usize) -> Option<usize> {
        let pat = word.to_be_bytes();
        let mut at = from - (from % 4);
        while at + 4 <= self.0.len() {
            if self.0[at..at + 4] == pat {
                return Some(at);
            }
            at += 4;
        }
        None
    }

    /// The byte range of the FDRI Type 2 payload — the region the LUT
    /// search scans. Mirrors the paper's procedure: locate
    /// `0x30004000`, read the following Type 2 header's word count.
    #[must_use]
    pub fn fdri_data_range(&self) -> Option<Range<usize>> {
        let hdr = self.find_word(crate::packet::FDRI_WRITE_HEADER, 0)?;
        let t2_at = hdr + 4;
        let t2 = u32::from_be_bytes(self.0.get(t2_at..t2_at + 4)?.try_into().ok()?);
        let fields = Packet::decode_header(t2);
        if fields.packet_type != 2 {
            return None;
        }
        let start = t2_at + 4;
        let end = start + fields.count_type2 * 4;
        (end <= self.0.len()).then_some(start..end)
    }

    /// Disables the CRC check by replacing the `Write CRC` packet
    /// header and its value with all-zero words, exactly as described
    /// in Section V-B. Returns the number of CRC packets zeroed.
    pub fn disable_crc(&mut self) -> usize {
        let hdr = crate::packet::CRC_WRITE_HEADER;
        let mut n = 0;
        let mut from = self.fdri_data_range().map_or(0, |r| r.end);
        while let Some(at) = self.find_word(hdr, from) {
            // A truncated stream may end right after the header; zero
            // only the bytes that exist.
            let end = (at + 8).min(self.0.len());
            self.0[at..end].fill(0);
            from = end;
            n += 1;
        }
        n
    }

    /// Recomputes the configuration CRC after a modification and
    /// patches the stored value (the alternative to
    /// [`Bitstream::disable_crc`]). Returns `true` if a CRC packet
    /// was found and patched.
    pub fn recompute_crc(&mut self) -> bool {
        // Walk packets, tracking the running CRC, until the CRC write.
        let Some(mut at) = self.find_word(SYNC_WORD, 0) else { return false };
        at += 4;
        let mut crc = ConfigCrc::new();
        let mut last_addr: Option<RegisterAddress> = None;
        while at + 4 <= self.0.len() {
            let word = u32::from_be_bytes(self.0[at..at + 4].try_into().expect("4 bytes"));
            at += 4;
            if word == 0 || word == NOP {
                continue;
            }
            let h = Packet::decode_header(word);
            match h.packet_type {
                1 if h.opcode == 2 => {
                    let Some(addr) = RegisterAddress::from_raw(h.addr) else { return false };
                    if addr == RegisterAddress::Crc {
                        let value = crc.value();
                        if at + 4 > self.0.len() {
                            return false;
                        }
                        self.0[at..at + 4].copy_from_slice(&value.to_be_bytes());
                        return true;
                    }
                    for _ in 0..h.count_type1 {
                        if at + 4 > self.0.len() {
                            return false;
                        }
                        let v = u32::from_be_bytes(self.0[at..at + 4].try_into().expect("4 bytes"));
                        if addr == RegisterAddress::Cmd && v == CommandCode::Rcrc as u32 {
                            crc.reset();
                        } else {
                            crc.update(addr as u16, v);
                        }
                        at += 4;
                    }
                    last_addr = Some(addr);
                }
                2 if h.opcode == 2 => {
                    let Some(addr) = last_addr else { return false };
                    for _ in 0..h.count_type2 {
                        if at + 4 > self.0.len() {
                            return false;
                        }
                        let v = u32::from_be_bytes(self.0[at..at + 4].try_into().expect("4 bytes"));
                        crc.update(addr as u16, v);
                        at += 4;
                    }
                }
                _ => {}
            }
        }
        false
    }

    /// Byte-level diff of two bitstreams: ranges (in absolute byte
    /// offsets) where they differ. Adjacent differing bytes are
    /// merged into one range. Used by tooling to show exactly which
    /// configuration bytes an attack touched.
    #[must_use]
    pub fn diff(&self, other: &Bitstream) -> Vec<Range<usize>> {
        let mut out: Vec<Range<usize>> = Vec::new();
        let n = self.0.len().max(other.0.len());
        let mut i = 0;
        while i < n {
            let differs = self.0.get(i) != other.0.get(i);
            if differs {
                match out.last_mut() {
                    Some(last) if last.end == i => last.end = i + 1,
                    _ => out.push(i..i + 1),
                }
            }
            i += 1;
        }
        out
    }

    /// Decodes the packet stream for inspection tools: every packet
    /// after the sync word, with its byte offset. Zero/NOP/dummy
    /// words are skipped; decoding stops at `DESYNC` or at a word
    /// that cannot be interpreted.
    #[must_use]
    pub fn packets(&self) -> Vec<(usize, Packet)> {
        let mut out = Vec::new();
        let Some(mut at) = self.find_word(SYNC_WORD, 0) else { return out };
        at += 4;
        let read = |at: usize| -> Option<u32> {
            self.0.get(at..at + 4).map(|b| u32::from_be_bytes(b.try_into().expect("4 bytes")))
        };
        while let Some(word) = read(at) {
            let start = at;
            at += 4;
            if word == 0 || word == DUMMY_WORD {
                continue;
            }
            if word == NOP {
                out.push((start, Packet::Nop));
                continue;
            }
            let h = Packet::decode_header(word);
            match (h.packet_type, h.opcode) {
                (1, 2) => {
                    let Some(addr) = RegisterAddress::from_raw(h.addr) else { break };
                    let mut data = Vec::with_capacity(h.count_type1);
                    for _ in 0..h.count_type1 {
                        let Some(v) = read(at) else { return out };
                        data.push(v);
                        at += 4;
                    }
                    let desync = addr == RegisterAddress::Cmd
                        && data.contains(&(CommandCode::Desync as u32));
                    out.push((start, Packet::Type1Write { addr, data }));
                    if desync {
                        break;
                    }
                }
                (2, 2) => {
                    let mut data = Vec::with_capacity(h.count_type2.min(1 << 20));
                    for _ in 0..h.count_type2 {
                        let Some(v) = read(at) else { return out };
                        data.push(v);
                        at += 4;
                    }
                    out.push((start, Packet::Type2Write { data }));
                }
                (1, 0) => out.push((start, Packet::Nop)),
                _ => break,
            }
        }
        out
    }

    /// Parses the bitstream the way the device configuration logic
    /// does.
    ///
    /// # Errors
    ///
    /// See [`ParseBitstreamError`]; notably, a stored CRC that does
    /// not match the computed value aborts parsing, while an *absent*
    /// CRC write (zeroed packet) does not.
    pub fn parse(&self) -> Result<ConfigData, ParseBitstreamError> {
        let mut at = self.find_word(SYNC_WORD, 0).ok_or(ParseBitstreamError::NoSync)? + 4;
        let mut crc = ConfigCrc::new();
        let mut last_addr: Option<RegisterAddress> = None;
        let mut fdri: Vec<u32> = Vec::new();
        let mut idcode = None;
        let mut crc_checked = false;

        let read = |at: usize| -> Result<u32, ParseBitstreamError> {
            self.0
                .get(at..at + 4)
                .map(|b| u32::from_be_bytes(b.try_into().expect("4 bytes")))
                .ok_or(ParseBitstreamError::Truncated)
        };

        'stream: while at + 4 <= self.0.len() {
            let word = read(at)?;
            at += 4;
            if word == 0 || word == NOP || word == DUMMY_WORD {
                // Zero words are silently skipped — the behaviour the
                // CRC-disable trick of the paper exploits.
                continue;
            }
            let h = Packet::decode_header(word);
            match (h.packet_type, h.opcode) {
                (1, 2) => {
                    let addr = RegisterAddress::from_raw(h.addr)
                        .ok_or(ParseBitstreamError::UnknownRegister { raw: h.addr })?;
                    let mut values = Vec::with_capacity(h.count_type1);
                    for _ in 0..h.count_type1 {
                        values.push(read(at)?);
                        at += 4;
                    }
                    match addr {
                        RegisterAddress::Crc => {
                            let stored = *values.first().ok_or(ParseBitstreamError::Truncated)?;
                            let computed = crc.value();
                            if stored != computed {
                                return Err(ParseBitstreamError::CrcMismatch { stored, computed });
                            }
                            crc_checked = true;
                        }
                        RegisterAddress::Cmd => {
                            for &v in &values {
                                if v == CommandCode::Rcrc as u32 {
                                    crc.reset();
                                } else {
                                    crc.update(addr as u16, v);
                                }
                                if v == CommandCode::Desync as u32 {
                                    break 'stream;
                                }
                            }
                        }
                        RegisterAddress::Idcode => {
                            idcode = values.first().copied();
                            for &v in &values {
                                crc.update(addr as u16, v);
                            }
                        }
                        RegisterAddress::Fdri => {
                            for &v in &values {
                                crc.update(addr as u16, v);
                                fdri.push(v);
                            }
                        }
                        _ => {
                            for &v in &values {
                                crc.update(addr as u16, v);
                            }
                        }
                    }
                    last_addr = Some(addr);
                }
                (2, 2) => {
                    let addr = last_addr.ok_or(ParseBitstreamError::Truncated)?;
                    for _ in 0..h.count_type2 {
                        let v = read(at)?;
                        at += 4;
                        crc.update(addr as u16, v);
                        if addr == RegisterAddress::Fdri {
                            fdri.push(v);
                        }
                    }
                }
                (1, 0) => {} // packet-level NOP
                _ => {}      // reads and reserved types are ignored
            }
        }
        if !fdri.len().is_multiple_of(FRAME_WORDS) {
            return Err(ParseBitstreamError::RaggedFrames { words: fdri.len() });
        }
        Ok(ConfigData { frames: FrameData::from_words(&fdri), idcode, crc_checked })
    }
}

impl AsRef<[u8]> for Bitstream {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FRAME_BYTES;

    fn sample(frames: usize) -> Bitstream {
        let mut data = FrameData::new(frames);
        for (i, b) in data.as_mut_bytes().iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        BitstreamBuilder::new(data).build()
    }

    #[test]
    fn build_parse_roundtrip() {
        let bs = sample(5);
        let cfg = bs.parse().expect("valid bitstream");
        assert_eq!(cfg.frames.frame_count(), 5);
        assert!(cfg.crc_checked);
        assert_eq!(cfg.idcode, Some(DEFAULT_IDCODE));
        assert_eq!(cfg.frames.as_bytes()[7], 7);
    }

    #[test]
    fn fdri_range_matches_payload() {
        let bs = sample(3);
        let range = bs.fdri_data_range().expect("has FDRI payload");
        assert_eq!(range.len(), 3 * FRAME_BYTES);
        assert_eq!(&bs.as_bytes()[range.start..range.start + 4], &[0, 1, 2, 3]);
    }

    #[test]
    fn modification_breaks_crc() {
        let mut bs = sample(3);
        let range = bs.fdri_data_range().unwrap();
        bs.as_mut_bytes()[range.start + 100] ^= 0xFF;
        assert!(matches!(bs.parse(), Err(ParseBitstreamError::CrcMismatch { .. })));
    }

    #[test]
    fn disable_crc_allows_modification() {
        let mut bs = sample(3);
        let range = bs.fdri_data_range().unwrap();
        bs.as_mut_bytes()[range.start + 100] ^= 0xFF;
        assert_eq!(bs.disable_crc(), 1);
        let cfg = bs.parse().expect("parses without CRC");
        assert!(!cfg.crc_checked);
        assert_eq!(cfg.frames.as_bytes()[100], 100u8 ^ 0xFF);
    }

    #[test]
    fn recompute_crc_allows_modification() {
        let mut bs = sample(3);
        let range = bs.fdri_data_range().unwrap();
        bs.as_mut_bytes()[range.start + 100] ^= 0xFF;
        assert!(bs.recompute_crc());
        let cfg = bs.parse().expect("parses with fixed CRC");
        assert!(cfg.crc_checked, "CRC still present and now correct");
    }

    #[test]
    fn no_sync_rejected() {
        let bs = Bitstream::from_bytes(vec![0u8; 64]);
        assert_eq!(bs.parse().unwrap_err(), ParseBitstreamError::NoSync);
    }

    #[test]
    fn find_word_aligned_only() {
        let bs = sample(1);
        let at = bs.find_word(SYNC_WORD, 0).unwrap();
        assert_eq!(at % 4, 0);
        assert!(bs.find_word(0x12345677, 0).is_none());
    }

    #[test]
    fn diff_reports_touched_ranges() {
        let a = sample(2);
        let mut b = a.clone();
        let range = b.fdri_data_range().unwrap();
        b.as_mut_bytes()[range.start + 10] ^= 0xFF;
        b.as_mut_bytes()[range.start + 11] ^= 0xFF;
        b.as_mut_bytes()[range.start + 100] ^= 0x01;
        let d = a.diff(&b);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0], range.start + 10..range.start + 12);
        assert_eq!(d[1], range.start + 100..range.start + 101);
        assert!(a.diff(&a).is_empty());
        // Length differences count as differing bytes.
        let longer = Bitstream::from_bytes([a.as_bytes(), &[0xEE][..]].concat());
        assert_eq!(a.diff(&longer).last().unwrap().end, a.len() + 1);
    }

    #[test]
    fn packet_listing_matches_structure() {
        let bs = sample(2);
        let packets = bs.packets();
        // RCRC first, FDRI type-2 payload present, CRC write present,
        // ends at DESYNC.
        assert!(packets.iter().find(|(_, p)| matches!(p, Packet::Type1Write { addr: RegisterAddress::Cmd, data } if data == &vec![CommandCode::Rcrc as u32])).is_some());
        let t2 = packets.iter().find_map(|(_, p)| match p {
            Packet::Type2Write { data } => Some(data.len()),
            _ => None,
        });
        assert_eq!(t2, Some(2 * crate::frame::FRAME_WORDS));
        let last_write = packets
            .iter()
            .rev()
            .find_map(|(_, p)| match p {
                Packet::Type1Write { addr: RegisterAddress::Cmd, data } => Some(data.clone()),
                _ => None,
            })
            .unwrap();
        assert!(last_write.contains(&(CommandCode::Desync as u32)));
    }

    #[test]
    fn truncated_stream_detected() {
        let bs = sample(2);
        let cut = bs.as_bytes().len() / 2;
        let bs2 = Bitstream::from_bytes(bs.as_bytes()[..cut].to_vec());
        assert!(matches!(
            bs2.parse(),
            Err(ParseBitstreamError::Truncated | ParseBitstreamError::RaggedFrames { .. })
        ));
    }
}
