//! Differential configuration-CRC arithmetic.
//!
//! The configuration CRC is a linear feedback shift register, hence
//! linear over GF(2) in (state, fed bits): for a stream `x` and a
//! byte-delta `δ` confined to the FDRI payload,
//! `crc(x ⊕ δ) = crc(x) ⊕ L(δ)`, where `L` advances a 32-bit delta
//! state through precomputed powers of the one-update transition
//! matrix. A [`DeltaCrc`] caches one slow walk of a reference stream
//! (where the CRC value lives, how payload words map onto update
//! indices, the doubling matrices) and then prices any variant's CRC
//! at O(changed words × log stream) XORs instead of a full re-walk.
//!
//! Two consumers share this module: the candidate-edit forge in the
//! attack crate (patching a forged variant's CRC so the device
//! accepts it) and the gang batch decoder in the FPGA simulator
//! (verifying a lane's CRC against its stored value without
//! re-walking the packet stream per lane). Both are pinned
//! byte-for-byte against the slow full walk by their test suites.

use crate::crc::ConfigCrc;
use crate::image::Bitstream;
use crate::packet::{CommandCode, Packet, RegisterAddress, NOP, SYNC_WORD};

/// Applies a GF(2) linear map in column form: `out = Σ m[i]` over the
/// set bits `i` of `v`.
fn apply(m: &[u32; 32], v: u32) -> u32 {
    let mut out = 0;
    for (i, &col) in m.iter().enumerate() {
        if (v >> i) & 1 == 1 {
            out ^= col;
        }
    }
    out
}

/// The one-update state-advance map `A`: column `i` is where state
/// `1 << i` lands after one `update` whose fed bits are all zero.
/// (The config CRC is linear over GF(2), so
/// `update(s, a, w) = A·s ⊕ f(a, w)` and `A` is recovered by feeding
/// zero bits from each basis state.)
fn advance_matrix() -> [u32; 32] {
    let mut m = [0u32; 32];
    for (i, col) in m.iter_mut().enumerate() {
        let mut crc = ConfigCrc::with_state(1 << i);
        crc.update(0, 0);
        *col = crc.value();
    }
    m
}

/// Matrix square in column form: `(m²)[i] = m · m[i]`.
fn square(m: &[u32; 32]) -> [u32; 32] {
    let mut out = [0u32; 32];
    for (i, col) in out.iter_mut().enumerate() {
        *col = apply(m, m[i]);
    }
    out
}

/// The contribution a payload-word delta `d` makes to the CRC delta
/// state at its own update step: `f(0, d)` from the zero state. The
/// register-address bits are identical on the reference and variant
/// streams (both FDRI), so they cancel out of the delta and only the
/// word bits remain.
fn word_delta(d: u32) -> u32 {
    let mut crc = ConfigCrc::with_state(0);
    crc.update(0, d);
    crc.value()
}

/// A cached differential-CRC analysis of one reference bitstream,
/// from which any payload-only variant's CRC follows in
/// O(changed words × log stream) — see the module docs.
#[derive(Debug, Clone)]
pub struct DeltaCrc {
    /// Absolute byte offset of the stored CRC value word.
    crc_value_at: usize,
    /// The running CRC the slow walk computes for the reference image
    /// — exactly what [`Bitstream::recompute_crc`] would store.
    reference_crc: u32,
    /// Update index (counting from the last `RCRC` reset) at which
    /// payload word 0 is fed.
    first_payload_update: u64,
    /// Total updates fed before the CRC value is written.
    total_updates: u64,
    /// `pow[j]` advances a delta state by `2^j` zero-delta updates.
    pow: Vec<[u32; 32]>,
}

impl DeltaCrc {
    /// Walks `bs` exactly like [`Bitstream::recompute_crc`], recording
    /// where the CRC lives and how the FDRI payload maps onto update
    /// indices. Returns `None` (→ slow-path fallback) on any structure
    /// the delta model does not cover: misaligned payload, an `RCRC`
    /// reset after the payload starts, a payload not fed as one
    /// contiguous run of updates, or no CRC packet at all.
    #[must_use]
    pub fn analyze(bs: &Bitstream, payload: &core::ops::Range<usize>) -> Option<Self> {
        if !payload.start.is_multiple_of(4) || !payload.end.is_multiple_of(4) || payload.is_empty()
        {
            return None;
        }
        let bytes = bs.as_bytes();
        let mut at = bs.find_word(SYNC_WORD, 0)? + 4;
        let mut crc = ConfigCrc::new();
        let mut last_addr: Option<RegisterAddress> = None;
        let mut updates: u64 = 0;
        let mut first: Option<u64> = None;
        let mut last: Option<u64> = None;
        let note = |pos: usize, updates: u64, first: &mut Option<u64>, last: &mut Option<u64>| {
            if pos == payload.start {
                *first = Some(updates);
            }
            if pos + 4 == payload.end {
                *last = Some(updates);
            }
        };
        while at + 4 <= bytes.len() {
            let word = u32::from_be_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
            at += 4;
            if word == 0 || word == NOP {
                continue;
            }
            let h = Packet::decode_header(word);
            match h.packet_type {
                1 if h.opcode == 2 => {
                    let addr = RegisterAddress::from_raw(h.addr)?;
                    if addr == RegisterAddress::Crc {
                        if at + 4 > bytes.len() {
                            return None;
                        }
                        let first = first?;
                        // The payload must have been one contiguous
                        // run of updates, or word→update arithmetic
                        // is off.
                        if last? != first + (payload.len() / 4 - 1) as u64 {
                            return None;
                        }
                        let mut pow = vec![advance_matrix()];
                        while (1u64 << pow.len()) < updates {
                            pow.push(square(pow.last().expect("non-empty")));
                        }
                        return Some(DeltaCrc {
                            crc_value_at: at,
                            reference_crc: crc.value(),
                            first_payload_update: first,
                            total_updates: updates,
                            pow,
                        });
                    }
                    for _ in 0..h.count_type1 {
                        if at + 4 > bytes.len() {
                            return None;
                        }
                        let v = u32::from_be_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
                        if addr == RegisterAddress::Cmd && v == CommandCode::Rcrc as u32 {
                            if first.is_some() {
                                // A reset between payload and CRC
                                // write would wipe the delta.
                                return None;
                            }
                            crc.reset();
                            updates = 0;
                        } else {
                            note(at, updates, &mut first, &mut last);
                            crc.update(addr as u16, v);
                            updates += 1;
                        }
                        at += 4;
                    }
                    last_addr = Some(addr);
                }
                2 if h.opcode == 2 => {
                    let addr = last_addr?;
                    for _ in 0..h.count_type2 {
                        if at + 4 > bytes.len() {
                            return None;
                        }
                        let v = u32::from_be_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
                        note(at, updates, &mut first, &mut last);
                        crc.update(addr as u16, v);
                        updates += 1;
                        at += 4;
                    }
                }
                _ => {}
            }
        }
        None
    }

    /// Absolute byte offset of the stored CRC value word in the
    /// reference stream (and any same-structure variant).
    #[must_use]
    pub fn crc_value_at(&self) -> usize {
        self.crc_value_at
    }

    /// The stored CRC value word of a same-structure variant.
    #[must_use]
    pub fn stored(&self, variant: &[u8]) -> u32 {
        u32::from_be_bytes(
            variant[self.crc_value_at..self.crc_value_at + 4].try_into().expect("4 bytes"),
        )
    }

    /// Advances a delta state by `k` zero-delta updates via the
    /// doubling matrices.
    fn advance(&self, mut v: u32, k: u64) -> u32 {
        debug_assert_eq!(k >> self.pow.len(), 0, "gap exceeds precomputed powers");
        for (j, m) in self.pow.iter().enumerate() {
            if (k >> j) & 1 == 1 {
                v = apply(m, v);
            }
        }
        v
    }

    /// The configuration CRC the device would compute for `variant`,
    /// given that it differs from `reference` only at the payload word
    /// indices `words` (sorted ascending, deduplicated; indices whose
    /// words turn out equal are skipped). Bit-identical to a full
    /// re-walk of the variant.
    #[must_use]
    pub fn value_for(
        &self,
        reference: &[u8],
        variant: &[u8],
        payload_start: usize,
        words: &[usize],
    ) -> u32 {
        let mut state = 0u32;
        let mut prev: Option<u64> = None;
        for &w in words {
            let at = payload_start + 4 * w;
            let g = u32::from_be_bytes(reference[at..at + 4].try_into().expect("4 bytes"));
            let m = u32::from_be_bytes(variant[at..at + 4].try_into().expect("4 bytes"));
            if g == m {
                continue;
            }
            let u = self.first_payload_update + w as u64;
            if let Some(p) = prev {
                state = self.advance(state, u - p);
            }
            state ^= word_delta(g ^ m);
            prev = Some(u);
        }
        match prev {
            None => self.reference_crc,
            Some(last) => self.reference_crc ^ self.advance(state, self.total_updates - 1 - last),
        }
    }

    /// Repairs `variant`'s stored CRC from the byte delta against
    /// `reference`: computes [`DeltaCrc::value_for`] and writes it at
    /// the CRC value word.
    pub fn patch(
        &self,
        reference: &[u8],
        variant: &mut [u8],
        payload_start: usize,
        words: &[usize],
    ) {
        let value = self.value_for(reference, variant, payload_start, words);
        variant[self.crc_value_at..self.crc_value_at + 4].copy_from_slice(&value.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameData;
    use crate::image::BitstreamBuilder;

    fn sample(frames: usize, seed: u64) -> Bitstream {
        let mut data = FrameData::new(frames);
        let mut x = seed | 1;
        for b in data.as_mut_bytes() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *b = x as u8;
        }
        BitstreamBuilder::new(data).build()
    }

    #[test]
    fn value_for_matches_full_recompute() {
        let golden = sample(8, 0x5EED);
        let payload = golden.fdri_data_range().expect("payload");
        let delta = DeltaCrc::analyze(&golden, &payload).expect("builder output analyzes");

        // Several edit shapes: single word, adjacent words, first and
        // last payload words, and a no-op (equal words listed).
        let word_count = payload.len() / 4;
        let cases: Vec<Vec<usize>> = vec![
            vec![0],
            vec![5, 6],
            vec![word_count - 1],
            vec![0, word_count / 2, word_count - 1],
            vec![3], // listed but left unchanged below for i == 3
        ];
        for (case, words) in cases.iter().enumerate() {
            let mut variant = golden.clone();
            for &w in words {
                if case == 4 {
                    continue; // no-op case: words listed, bytes equal
                }
                let at = payload.start + 4 * w;
                variant.as_mut_bytes()[at] ^= 0xA5;
                variant.as_mut_bytes()[at + 3] ^= 0x3C;
            }
            let fast = delta.value_for(golden.as_bytes(), variant.as_bytes(), payload.start, words);
            let mut slow = variant.clone();
            assert!(slow.recompute_crc(), "slow path patches");
            assert_eq!(delta.stored(slow.as_bytes()), fast, "case {case}");

            let mut patched = variant.clone();
            delta.patch(golden.as_bytes(), patched.as_mut_bytes(), payload.start, words);
            assert_eq!(patched.as_bytes(), slow.as_bytes(), "case {case}");
            assert!(patched.parse().expect("parses").crc_checked, "case {case}");
        }
    }

    #[test]
    fn detects_unlisted_word_changes_as_mismatch() {
        // A changed word NOT in the list makes value_for disagree with
        // the device's walk — the property the batch decoder's CRC
        // check rests on.
        let golden = sample(4, 0xBAD);
        let payload = golden.fdri_data_range().expect("payload");
        let delta = DeltaCrc::analyze(&golden, &payload).expect("analyzes");
        let mut variant = golden.clone();
        variant.as_mut_bytes()[payload.start + 40] ^= 0x01;
        let claimed = delta.value_for(golden.as_bytes(), variant.as_bytes(), payload.start, &[]);
        assert_eq!(claimed, delta.stored(golden.as_bytes()), "empty list claims reference CRC");
        assert!(
            matches!(variant.parse(), Err(crate::image::ParseBitstreamError::CrcMismatch { .. })),
            "the device rejects the unpatched variant"
        );
    }
}
