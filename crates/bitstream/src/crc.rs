//! The configuration CRC.
//!
//! 7-series devices compute a 32-bit CRC over every `(register
//! address, data word)` pair written during configuration, reset it
//! on the `RCRC` command, and compare it against the value written to
//! the CRC register; a mismatch pulls `INIT_B` low and aborts
//! configuration (Section V-B). The polynomial is CRC-32C
//! (Castagnoli); each update feeds the 32 data bits and the 5-bit
//! register address.

/// Reflected CRC-32C polynomial.
pub const POLY: u32 = 0x82F6_3B78;

/// A running configuration CRC.
///
/// # Example
///
/// ```
/// use bitstream::crc::ConfigCrc;
///
/// let mut crc = ConfigCrc::new();
/// crc.update(2, 0xDEADBEEF); // write to FDRI (reg 2)
/// let a = crc.value();
/// crc.reset();
/// assert_eq!(crc.value(), ConfigCrc::new().value());
/// assert_ne!(a, crc.value());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfigCrc {
    state: u32,
}

impl Default for ConfigCrc {
    fn default() -> Self {
        Self::new()
    }
}

impl ConfigCrc {
    /// A freshly reset CRC.
    #[must_use]
    pub fn new() -> Self {
        Self { state: 0 }
    }

    /// Resets the running value (the `RCRC` command).
    pub fn reset(&mut self) {
        self.state = 0;
    }

    /// Feeds one register write: the 32 data bits followed by the
    /// 5 address bits.
    pub fn update(&mut self, addr: u16, word: u32) {
        let mut bits = u64::from(word) | (u64::from(addr & 0x1F) << 32);
        let mut crc = self.state;
        for _ in 0..37 {
            let feed = (crc ^ (bits as u32)) & 1;
            crc >>= 1;
            if feed == 1 {
                crc ^= POLY;
            }
            bits >>= 1;
        }
        self.state = crc;
    }

    /// The current CRC value.
    #[must_use]
    pub fn value(&self) -> u32 {
        self.state
    }
}

/// A running CRC-32C over a plain byte stream (same Castagnoli
/// polynomial as [`ConfigCrc`], fed 8 bits at a time instead of
/// 37-bit register writes). This is the guard the crash-safe journal
/// codec puts on every frame it writes: a torn write or a flipped
/// bit in a persisted checkpoint must be detected, never decoded.
///
/// The value is finalised like the standard CRC-32C (initial value
/// `0xFFFF_FFFF`, output complemented), so `ByteCrc::of(b"123456789")`
/// is the catalogue check value `0xE306_9283`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ByteCrc {
    state: u32,
}

impl Default for ByteCrc {
    fn default() -> Self {
        Self::new()
    }
}

impl ByteCrc {
    /// A fresh CRC (initial state `0xFFFF_FFFF`).
    #[must_use]
    pub fn new() -> Self {
        Self { state: u32::MAX }
    }

    /// Feeds a slice of bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc ^= u32::from(b);
            for _ in 0..8 {
                let feed = crc & 1;
                crc >>= 1;
                if feed == 1 {
                    crc ^= POLY;
                }
            }
        }
        self.state = crc;
    }

    /// The finalised CRC value (complemented state).
    #[must_use]
    pub fn value(&self) -> u32 {
        !self.state
    }

    /// One-shot CRC of a byte slice.
    #[must_use]
    pub fn of(bytes: &[u8]) -> u32 {
        let mut crc = Self::new();
        crc.update(bytes);
        crc.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_order_sensitive() {
        let mut a = ConfigCrc::new();
        a.update(2, 1);
        a.update(2, 2);
        let mut b = ConfigCrc::new();
        b.update(2, 2);
        b.update(2, 1);
        assert_ne!(a.value(), b.value());

        let mut c = ConfigCrc::new();
        c.update(2, 1);
        c.update(2, 2);
        assert_eq!(a.value(), c.value());
    }

    #[test]
    fn address_matters() {
        let mut a = ConfigCrc::new();
        a.update(2, 0x1234);
        let mut b = ConfigCrc::new();
        b.update(4, 0x1234);
        assert_ne!(a.value(), b.value());
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let words = [0xAAAA_5555u32, 0x0F0F_F0F0, 0x1234_5678];
        let crc_of = |ws: &[u32]| {
            let mut c = ConfigCrc::new();
            for &w in ws {
                c.update(2, w);
            }
            c.value()
        };
        let base = crc_of(&words);
        for i in 0..3 {
            for bit in [0, 7, 31] {
                let mut mutated = words;
                mutated[i] ^= 1 << bit;
                assert_ne!(crc_of(&mutated), base, "word {i} bit {bit}");
            }
        }
    }

    #[test]
    fn byte_crc_matches_the_crc32c_check_value() {
        // The catalogue check value for CRC-32C ("iSCSI CRC").
        assert_eq!(ByteCrc::of(b"123456789"), 0xE306_9283);
        assert_eq!(ByteCrc::of(b""), 0);
    }

    #[test]
    fn byte_crc_is_incremental_and_bit_sensitive() {
        let mut inc = ByteCrc::new();
        inc.update(b"hello ");
        inc.update(b"world");
        assert_eq!(inc.value(), ByteCrc::of(b"hello world"));
        let mut mutated = b"hello world".to_vec();
        for i in 0..mutated.len() {
            for bit in [0u8, 3, 7] {
                mutated[i] ^= 1 << bit;
                assert_ne!(
                    ByteCrc::of(&mutated),
                    ByteCrc::of(b"hello world"),
                    "byte {i} bit {bit}"
                );
                mutated[i] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut c = ConfigCrc::new();
        c.update(2, 0xFFFF_FFFF);
        c.reset();
        assert_eq!(c.value(), 0);
    }
}
