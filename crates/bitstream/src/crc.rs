//! The configuration CRC.
//!
//! 7-series devices compute a 32-bit CRC over every `(register
//! address, data word)` pair written during configuration, reset it
//! on the `RCRC` command, and compare it against the value written to
//! the CRC register; a mismatch pulls `INIT_B` low and aborts
//! configuration (Section V-B). The polynomial is CRC-32C
//! (Castagnoli); each update feeds the 32 data bits and the 5-bit
//! register address.

/// Reflected CRC-32C polynomial.
pub const POLY: u32 = 0x82F6_3B78;

/// Runs `k` steps of the reflected LFSR with an all-zero bit feed.
///
/// This is the kernel both lookup tables are built from: by linearity
/// of the LFSR over GF(2), feeding `k` data bits `b` from state `crc`
/// equals `(crc >> k) ^ step_zero((crc ^ b) & mask_k, k)`.
const fn step_zero(mut crc: u32, k: u32) -> u32 {
    let mut j = 0;
    while j < k {
        let feed = crc & 1;
        crc >>= 1;
        if feed == 1 {
            crc ^= POLY;
        }
        j += 1;
    }
    crc
}

/// Byte-at-a-time table for the 32 data bits of a register write.
const TABLE8: [u32; 256] = {
    let mut t = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        t[i] = step_zero(i as u32, 8);
        i += 1;
    }
    t
};

/// Five-bit table for the register-address tail of a register write.
const TABLE5: [u32; 32] = {
    let mut t = [0u32; 32];
    let mut i = 0;
    while i < 32 {
        t[i] = step_zero(i as u32, 5);
        i += 1;
    }
    t
};

/// A running configuration CRC.
///
/// # Example
///
/// ```
/// use bitstream::crc::ConfigCrc;
///
/// let mut crc = ConfigCrc::new();
/// crc.update(2, 0xDEADBEEF); // write to FDRI (reg 2)
/// let a = crc.value();
/// crc.reset();
/// assert_eq!(crc.value(), ConfigCrc::new().value());
/// assert_ne!(a, crc.value());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfigCrc {
    state: u32,
}

impl Default for ConfigCrc {
    fn default() -> Self {
        Self::new()
    }
}

impl ConfigCrc {
    /// A freshly reset CRC.
    #[must_use]
    pub fn new() -> Self {
        Self { state: 0 }
    }

    /// A CRC resumed from a previously observed running value.
    ///
    /// The register stream is fed through a plain LFSR, so the whole
    /// computation is a function of the running value alone; this
    /// constructor lets differential tooling (e.g. the candidate-edit
    /// forge) continue a walk from a cached midpoint.
    #[must_use]
    pub fn with_state(state: u32) -> Self {
        Self { state }
    }

    /// Resets the running value (the `RCRC` command).
    pub fn reset(&mut self) {
        self.state = 0;
    }

    /// Feeds one register write: the 32 data bits followed by the
    /// 5 address bits.
    ///
    /// Table-driven (four byte steps for the data word, one 5-bit
    /// step for the address); bit-for-bit equivalent to the reference
    /// 37-step LFSR loop, which the test suite pins.
    pub fn update(&mut self, addr: u16, word: u32) {
        let mut crc = self.state;
        let mut w = word;
        for _ in 0..4 {
            crc = (crc >> 8) ^ TABLE8[((crc ^ w) & 0xFF) as usize];
            w >>= 8;
        }
        crc = (crc >> 5) ^ TABLE5[((crc ^ u32::from(addr)) & 0x1F) as usize];
        self.state = crc;
    }

    /// The current CRC value.
    #[must_use]
    pub fn value(&self) -> u32 {
        self.state
    }
}

/// A running CRC-32C over a plain byte stream (same Castagnoli
/// polynomial as [`ConfigCrc`], fed 8 bits at a time instead of
/// 37-bit register writes). This is the guard the crash-safe journal
/// codec puts on every frame it writes: a torn write or a flipped
/// bit in a persisted checkpoint must be detected, never decoded.
///
/// The value is finalised like the standard CRC-32C (initial value
/// `0xFFFF_FFFF`, output complemented), so `ByteCrc::of(b"123456789")`
/// is the catalogue check value `0xE306_9283`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ByteCrc {
    state: u32,
}

impl Default for ByteCrc {
    fn default() -> Self {
        Self::new()
    }
}

impl ByteCrc {
    /// A fresh CRC (initial state `0xFFFF_FFFF`).
    #[must_use]
    pub fn new() -> Self {
        Self { state: u32::MAX }
    }

    /// Feeds a slice of bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc ^= u32::from(b);
            for _ in 0..8 {
                let feed = crc & 1;
                crc >>= 1;
                if feed == 1 {
                    crc ^= POLY;
                }
            }
        }
        self.state = crc;
    }

    /// The finalised CRC value (complemented state).
    #[must_use]
    pub fn value(&self) -> u32 {
        !self.state
    }

    /// One-shot CRC of a byte slice.
    #[must_use]
    pub fn of(bytes: &[u8]) -> u32 {
        let mut crc = Self::new();
        crc.update(bytes);
        crc.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The pre-table reference implementation: one LFSR step per bit,
    /// 32 data bits then 5 address bits.
    fn update_reference(state: u32, addr: u16, word: u32) -> u32 {
        let mut bits = u64::from(word) | (u64::from(addr & 0x1F) << 32);
        let mut crc = state;
        for _ in 0..37 {
            let feed = (crc ^ (bits as u32)) & 1;
            crc >>= 1;
            if feed == 1 {
                crc ^= POLY;
            }
            bits >>= 1;
        }
        crc
    }

    #[test]
    fn table_update_matches_bitwise_reference() {
        // A deterministic pseudo-random sweep over (state, addr, word)
        // triples plus the structured corners.
        let mut x = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut cases: Vec<(u32, u16, u32)> = vec![
            (0, 0, 0),
            (0, 0x1F, 0),
            (0, 2, 0xFFFF_FFFF),
            (u32::MAX, 0x1F, u32::MAX),
            (1, 0, 1),
            (0x8000_0000, 0x10, 0x8000_0000),
        ];
        for _ in 0..2000 {
            let r = next();
            cases.push((r as u32, (r >> 32) as u16 & 0x3F, (r >> 13) as u32));
        }
        for (state, addr, word) in cases {
            let mut c = ConfigCrc::with_state(state);
            c.update(addr, word);
            assert_eq!(
                c.value(),
                update_reference(state, addr, word),
                "state {state:#x} addr {addr:#x} word {word:#x}"
            );
        }
    }

    #[test]
    fn with_state_resumes_a_walk() {
        let mut whole = ConfigCrc::new();
        whole.update(2, 0xDEAD_BEEF);
        whole.update(2, 0x0123_4567);
        let mut front = ConfigCrc::new();
        front.update(2, 0xDEAD_BEEF);
        let mut back = ConfigCrc::with_state(front.value());
        back.update(2, 0x0123_4567);
        assert_eq!(whole.value(), back.value());
    }

    #[test]
    fn deterministic_and_order_sensitive() {
        let mut a = ConfigCrc::new();
        a.update(2, 1);
        a.update(2, 2);
        let mut b = ConfigCrc::new();
        b.update(2, 2);
        b.update(2, 1);
        assert_ne!(a.value(), b.value());

        let mut c = ConfigCrc::new();
        c.update(2, 1);
        c.update(2, 2);
        assert_eq!(a.value(), c.value());
    }

    #[test]
    fn address_matters() {
        let mut a = ConfigCrc::new();
        a.update(2, 0x1234);
        let mut b = ConfigCrc::new();
        b.update(4, 0x1234);
        assert_ne!(a.value(), b.value());
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let words = [0xAAAA_5555u32, 0x0F0F_F0F0, 0x1234_5678];
        let crc_of = |ws: &[u32]| {
            let mut c = ConfigCrc::new();
            for &w in ws {
                c.update(2, w);
            }
            c.value()
        };
        let base = crc_of(&words);
        for i in 0..3 {
            for bit in [0, 7, 31] {
                let mut mutated = words;
                mutated[i] ^= 1 << bit;
                assert_ne!(crc_of(&mutated), base, "word {i} bit {bit}");
            }
        }
    }

    #[test]
    fn byte_crc_matches_the_crc32c_check_value() {
        // The catalogue check value for CRC-32C ("iSCSI CRC").
        assert_eq!(ByteCrc::of(b"123456789"), 0xE306_9283);
        assert_eq!(ByteCrc::of(b""), 0);
    }

    #[test]
    fn byte_crc_is_incremental_and_bit_sensitive() {
        let mut inc = ByteCrc::new();
        inc.update(b"hello ");
        inc.update(b"world");
        assert_eq!(inc.value(), ByteCrc::of(b"hello world"));
        let mut mutated = b"hello world".to_vec();
        for i in 0..mutated.len() {
            for bit in [0u8, 3, 7] {
                mutated[i] ^= 1 << bit;
                assert_ne!(
                    ByteCrc::of(&mutated),
                    ByteCrc::of(b"hello world"),
                    "byte {i} bit {bit}"
                );
                mutated[i] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut c = ConfigCrc::new();
        c.update(2, 0xFFFF_FFFF);
        c.reset();
        assert_eq!(c.value(), 0);
    }
}
