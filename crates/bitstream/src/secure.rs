//! The Fig. 1 bitstream security container: MAC-then-encrypt with the
//! authentication key stored inside the encrypted stream.
//!
//! Xilinx 7-series devices authenticate a bitstream with
//! HMAC-SHA-256 under a key `K_A`, append the MAC, then encrypt with
//! AES-256-CBC under a key `K_E` held on-chip. Crucially, `K_A`
//! itself travels *inside the encrypted bitstream* (in two places —
//! an "HMAC header" and an "HMAC footer"). The paper's attack model
//! assumes `K_E` can be recovered by a side-channel attack
//! (\[16\]–\[18\] in the paper); [`ScaOracle`] stands in for that
//! capability. Once `K_E` is known, the attacker decrypts, reads
//! `K_A`, modifies the bitstream, recomputes the MAC and re-encrypts.
//!
//! The primitives (SHA-256, HMAC, AES-256) are implemented here from
//! the FIPS specifications and pinned by standard test vectors. The
//! [`patch`] submodule builds the position-seekable CBC patch oracle
//! on top of them: it re-seals a candidate edit by touching only the
//! ciphertext blocks downstream of the edit, never the whole stream.

pub mod patch;

use core::fmt;

use crate::image::Bitstream;

// --------------------------------------------------------------------
// SHA-256
// --------------------------------------------------------------------

/// SHA-256 round constants.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Streaming SHA-256 with a cloneable midstate.
///
/// The patch oracle checkpoints copies of this state at fixed
/// boundaries of the authenticated body so a candidate edit can
/// re-MAC from the nearest checkpoint instead of from byte zero.
#[derive(Clone, Copy)]
pub struct Sha256 {
    h: [u32; 8],
    /// Bytes absorbed so far (including those still buffered).
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl fmt::Debug for Sha256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sha256(absorbed: {} bytes)", self.len)
    }
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Starts a fresh hash.
    #[must_use]
    pub fn new() -> Self {
        Self {
            h: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.len += data.len() as u64;
        let mut rest = data;
        if self.buf_len > 0 {
            let take = rest.len().min(64 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len < 64 {
                // `take` drained all of `rest`, or the buffer would
                // be full — nothing left for the block loop below.
                return;
            }
            let block = self.buf;
            self.compress(&block);
            self.buf_len = 0;
        }
        let mut chunks = rest.chunks_exact(64);
        for chunk in &mut chunks {
            let mut block = [0u8; 64];
            block.copy_from_slice(chunk);
            self.compress(&block);
        }
        let tail = chunks.remainder();
        self.buf[..tail.len()].copy_from_slice(tail);
        self.buf_len = tail.len();
    }

    /// Pads and produces the digest.
    #[must_use]
    pub fn finalize(mut self) -> [u8; 32] {
        let bitlen = self.len * 8;
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // The length block must not count toward the message length,
        // but `update` only reads `buf_len` for padding logic, so
        // feeding it through is safe.
        self.update(&bitlen.to_be_bytes());
        debug_assert_eq!(self.buf_len, 0);
        let mut out = [0u8; 32];
        for (i, word) in self.h.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (w, c) in w.iter_mut().zip(block.chunks_exact(4)) {
            *w = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16].wrapping_add(s0).wrapping_add(w[i - 7]).wrapping_add(s1);
        }
        let h = &mut self.h;
        let (mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh) =
            (h[0], h[1], h[2], h[3], h[4], h[5], h[6], h[7]);
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = hh.wrapping_add(s1).wrapping_add(ch).wrapping_add(K[i]).wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
        h[5] = h[5].wrapping_add(f);
        h[6] = h[6].wrapping_add(g);
        h[7] = h[7].wrapping_add(hh);
    }
}

/// Computes SHA-256 of `data`.
#[must_use]
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut hasher = Sha256::new();
    hasher.update(data);
    hasher.finalize()
}

/// Streaming HMAC-SHA-256 with a cloneable midstate (the inner-hash
/// state can be checkpointed and resumed like [`Sha256`]).
#[derive(Clone, Copy)]
pub struct HmacSha256 {
    inner: Sha256,
    /// The padded key block, kept to build the opad at finalize time.
    key_block: [u8; 64],
}

impl fmt::Debug for HmacSha256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HmacSha256(<key material redacted>)")
    }
}

impl HmacSha256 {
    /// Starts a MAC under `key`.
    #[must_use]
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; 64];
        if key.len() > 64 {
            key_block[..32].copy_from_slice(&sha256(key));
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let mut inner = Sha256::new();
        let ipad: [u8; 64] = core::array::from_fn(|i| key_block[i] ^ 0x36);
        inner.update(&ipad);
        Self { inner, key_block }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Produces the tag.
    #[must_use]
    pub fn finalize(self) -> [u8; 32] {
        let ih = self.inner.finalize();
        let mut outer = Sha256::new();
        let opad: [u8; 64] = core::array::from_fn(|i| self.key_block[i] ^ 0x5c);
        outer.update(&opad);
        outer.update(&ih);
        outer.finalize()
    }
}

/// Computes HMAC-SHA-256 of `data` under `key`.
#[must_use]
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; 32] {
    let mut mac = HmacSha256::new(key);
    mac.update(data);
    mac.finalize()
}

// --------------------------------------------------------------------
// AES-256
// --------------------------------------------------------------------

fn aes_sbox() -> [u8; 256] {
    // Generate from GF(2^8) inversion + affine map (same construction
    // as the Rijndael S-box used inside SNOW 3G's S1).
    fn xtime(a: u8) -> u8 {
        (a << 1) ^ (if a & 0x80 != 0 { 0x1B } else { 0 })
    }
    fn mul(mut a: u8, mut b: u8) -> u8 {
        let mut p = 0;
        while b != 0 {
            if b & 1 != 0 {
                p ^= a;
            }
            a = xtime(a);
            b >>= 1;
        }
        p
    }
    let mut inv = [0u8; 256];
    for a in 1..=255u8 {
        for b in 1..=255u8 {
            if mul(a, b) == 1 {
                inv[a as usize] = b;
                break;
            }
        }
    }
    let mut s = [0u8; 256];
    for (i, e) in s.iter_mut().enumerate() {
        let x = inv[i];
        *e = x ^ x.rotate_left(1) ^ x.rotate_left(2) ^ x.rotate_left(3) ^ x.rotate_left(4) ^ 0x63;
    }
    s
}

fn aes_tables() -> &'static ([u8; 256], [u8; 256]) {
    use std::sync::OnceLock;
    static T: OnceLock<([u8; 256], [u8; 256])> = OnceLock::new();
    T.get_or_init(|| {
        let s = aes_sbox();
        let mut si = [0u8; 256];
        for (i, &v) in s.iter().enumerate() {
            si[v as usize] = i as u8;
        }
        (s, si)
    })
}

fn xtime(a: u8) -> u8 {
    (a << 1) ^ (if a & 0x80 != 0 { 0x1B } else { 0 })
}

fn gmul(a: u8, mut b: u8) -> u8 {
    let mut p = 0;
    let mut x = a;
    while b != 0 {
        if b & 1 != 0 {
            p ^= x;
        }
        x = xtime(x);
        b >>= 1;
    }
    p
}

/// Precomputed GF(2^8) multiplication tables for the (Inv)MixColumns
/// constants. The bit-serial [`gmul`] is kept as the generating
/// reference; these tables exist because the patch oracle puts block
/// en/decryption on the per-candidate hot path (DESIGN.md §16).
struct MulTables {
    m2: [u8; 256],
    m3: [u8; 256],
    m9: [u8; 256],
    m11: [u8; 256],
    m13: [u8; 256],
    m14: [u8; 256],
}

fn mul_tables() -> &'static MulTables {
    use std::sync::OnceLock;
    static T: OnceLock<MulTables> = OnceLock::new();
    T.get_or_init(|| {
        let mut t = MulTables {
            m2: [0; 256],
            m3: [0; 256],
            m9: [0; 256],
            m11: [0; 256],
            m13: [0; 256],
            m14: [0; 256],
        };
        for a in 0..=255u8 {
            let i = a as usize;
            t.m2[i] = gmul(a, 2);
            t.m3[i] = gmul(a, 3);
            t.m9[i] = gmul(a, 9);
            t.m11[i] = gmul(a, 11);
            t.m13[i] = gmul(a, 13);
            t.m14[i] = gmul(a, 14);
        }
        t
    })
}

/// An expanded AES-256 key (15 round keys).
#[derive(Clone)]
pub struct Aes256 {
    round_keys: [[u8; 16]; 15],
}

impl fmt::Debug for Aes256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Aes256(<key material redacted>)")
    }
}

impl Aes256 {
    /// Expands a 256-bit key.
    #[must_use]
    pub fn new(key: &[u8; 32]) -> Self {
        let (sbox, _) = aes_tables();
        let nk = 8;
        let nr = 14;
        let mut w = [[0u8; 4]; 60];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            w[i].copy_from_slice(chunk);
        }
        let mut rcon = 1u8;
        for i in nk..4 * (nr + 1) {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                temp = [
                    sbox[temp[1] as usize] ^ rcon,
                    sbox[temp[2] as usize],
                    sbox[temp[3] as usize],
                    sbox[temp[0] as usize],
                ];
                rcon = xtime(rcon);
            } else if i % nk == 4 {
                temp = [
                    sbox[temp[0] as usize],
                    sbox[temp[1] as usize],
                    sbox[temp[2] as usize],
                    sbox[temp[3] as usize],
                ];
            }
            for j in 0..4 {
                w[i][j] = w[i - nk][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 15];
        for r in 0..15 {
            for c in 0..4 {
                round_keys[r][c * 4..c * 4 + 4].copy_from_slice(&w[r * 4 + c]);
            }
        }
        Self { round_keys }
    }

    /// Encrypts one 16-byte block.
    #[must_use]
    pub fn encrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let (sbox, _) = aes_tables();
        let mut s = *block;
        add_round_key(&mut s, &self.round_keys[0]);
        for r in 1..14 {
            sub_bytes(&mut s, sbox);
            shift_rows(&mut s);
            mix_columns(&mut s);
            add_round_key(&mut s, &self.round_keys[r]);
        }
        sub_bytes(&mut s, sbox);
        shift_rows(&mut s);
        add_round_key(&mut s, &self.round_keys[14]);
        s
    }

    /// Decrypts one 16-byte block.
    #[must_use]
    pub fn decrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let (_, sinv) = aes_tables();
        let mut s = *block;
        add_round_key(&mut s, &self.round_keys[14]);
        for r in (1..14).rev() {
            inv_shift_rows(&mut s);
            sub_bytes(&mut s, sinv);
            add_round_key(&mut s, &self.round_keys[r]);
            inv_mix_columns(&mut s);
        }
        inv_shift_rows(&mut s);
        sub_bytes(&mut s, sinv);
        add_round_key(&mut s, &self.round_keys[0]);
        s
    }

    /// Encrypts with CBC mode and PKCS#7 padding.
    #[must_use]
    pub fn cbc_encrypt(&self, iv: &[u8; 16], plaintext: &[u8]) -> Vec<u8> {
        let pad = 16 - (plaintext.len() % 16);
        let mut data = plaintext.to_vec();
        data.extend(std::iter::repeat_n(pad as u8, pad));
        let mut prev = *iv;
        let mut out = Vec::with_capacity(data.len());
        for chunk in data.chunks_exact(16) {
            let mut block = [0u8; 16];
            for (i, b) in block.iter_mut().enumerate() {
                *b = chunk[i] ^ prev[i];
            }
            prev = self.encrypt_block(&block);
            out.extend_from_slice(&prev);
        }
        out
    }

    /// Decrypts CBC + PKCS#7.
    ///
    /// # Errors
    ///
    /// [`CbcError::BadLength`] when the ciphertext is empty or not a
    /// multiple of the block size (a framing problem — no key was
    /// consulted); [`CbcError::BadPadding`] when decryption succeeds
    /// structurally but the PKCS#7 trailer is inconsistent (wrong key
    /// or tampered final blocks).
    pub fn cbc_decrypt(&self, iv: &[u8; 16], ciphertext: &[u8]) -> Result<Vec<u8>, CbcError> {
        if ciphertext.is_empty() || !ciphertext.len().is_multiple_of(16) {
            return Err(CbcError::BadLength { len: ciphertext.len() });
        }
        let mut prev = *iv;
        let mut out = Vec::with_capacity(ciphertext.len());
        for chunk in ciphertext.chunks_exact(16) {
            let mut block = [0u8; 16];
            block.copy_from_slice(chunk);
            let dec = self.decrypt_block(&block);
            for (i, d) in dec.iter().enumerate() {
                out.push(d ^ prev[i]);
            }
            prev = block;
        }
        strip_pkcs7(&mut out)?;
        Ok(out)
    }
}

/// Validates and removes PKCS#7 padding in place.
pub(crate) fn strip_pkcs7(out: &mut Vec<u8>) -> Result<(), CbcError> {
    let pad = *out.last().ok_or(CbcError::BadPadding)? as usize;
    if pad == 0 || pad > 16 || out.len() < pad {
        return Err(CbcError::BadPadding);
    }
    if !out[out.len() - pad..].iter().all(|&b| b == pad as u8) {
        return Err(CbcError::BadPadding);
    }
    out.truncate(out.len() - pad);
    Ok(())
}

/// An error from [`Aes256::cbc_decrypt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CbcError {
    /// The ciphertext length is not a non-zero multiple of the AES
    /// block size — a framing/truncation problem, detected before any
    /// key material is consulted.
    BadLength {
        /// The offending ciphertext length in bytes.
        len: usize,
    },
    /// The PKCS#7 padding did not verify after decryption — a wrong
    /// key or tampered trailing blocks.
    BadPadding,
}

impl fmt::Display for CbcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CbcError::BadLength { len } => {
                write!(f, "ciphertext length {len} is not a non-zero multiple of 16")
            }
            CbcError::BadPadding => write!(f, "pkcs#7 padding check failed"),
        }
    }
}

impl std::error::Error for CbcError {}

fn add_round_key(s: &mut [u8; 16], rk: &[u8; 16]) {
    for i in 0..16 {
        s[i] ^= rk[i];
    }
}

fn sub_bytes(s: &mut [u8; 16], table: &[u8; 256]) {
    for b in s.iter_mut() {
        *b = table[*b as usize];
    }
}

fn shift_rows(s: &mut [u8; 16]) {
    // Column-major state: s[r + 4c].
    let orig = *s;
    for r in 1..4 {
        for c in 0..4 {
            s[r + 4 * c] = orig[r + 4 * ((c + r) % 4)];
        }
    }
}

fn inv_shift_rows(s: &mut [u8; 16]) {
    let orig = *s;
    for r in 1..4 {
        for c in 0..4 {
            s[r + 4 * ((c + r) % 4)] = orig[r + 4 * c];
        }
    }
}

fn mix_columns(s: &mut [u8; 16]) {
    let t = mul_tables();
    for c in 0..4 {
        let b = [s[4 * c], s[4 * c + 1], s[4 * c + 2], s[4 * c + 3]];
        let i = [b[0] as usize, b[1] as usize, b[2] as usize, b[3] as usize];
        s[4 * c] = t.m2[i[0]] ^ t.m3[i[1]] ^ b[2] ^ b[3];
        s[4 * c + 1] = b[0] ^ t.m2[i[1]] ^ t.m3[i[2]] ^ b[3];
        s[4 * c + 2] = b[0] ^ b[1] ^ t.m2[i[2]] ^ t.m3[i[3]];
        s[4 * c + 3] = t.m3[i[0]] ^ b[1] ^ b[2] ^ t.m2[i[3]];
    }
}

fn inv_mix_columns(s: &mut [u8; 16]) {
    let t = mul_tables();
    for c in 0..4 {
        let i = [
            s[4 * c] as usize,
            s[4 * c + 1] as usize,
            s[4 * c + 2] as usize,
            s[4 * c + 3] as usize,
        ];
        s[4 * c] = t.m14[i[0]] ^ t.m11[i[1]] ^ t.m13[i[2]] ^ t.m9[i[3]];
        s[4 * c + 1] = t.m9[i[0]] ^ t.m14[i[1]] ^ t.m11[i[2]] ^ t.m13[i[3]];
        s[4 * c + 2] = t.m13[i[0]] ^ t.m9[i[1]] ^ t.m14[i[2]] ^ t.m11[i[3]];
        s[4 * c + 3] = t.m11[i[0]] ^ t.m13[i[1]] ^ t.m9[i[2]] ^ t.m14[i[3]];
    }
}

// --------------------------------------------------------------------
// The Fig. 1 container
// --------------------------------------------------------------------

/// Magic prefix of the authenticated payload.
pub(crate) const MAGIC: &[u8; 8] = b"XLNXSEC1";

/// A sealed (MAC-then-encrypt) bitstream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecureBitstream {
    /// The unencrypted CBC initialization vector.
    pub iv: [u8; 16],
    /// The AES-256-CBC ciphertext.
    pub ciphertext: Vec<u8>,
}

/// An error from [`SecureBitstream::open`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenSecureError {
    /// Decryption failed (wrong key or corrupted ciphertext); carries
    /// whether the problem was framing or padding.
    Decrypt(CbcError),
    /// The payload structure is malformed.
    Malformed,
    /// The HMAC does not verify. Reported via `BOOTSTS` in real
    /// devices.
    MacMismatch,
}

impl fmt::Display for OpenSecureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpenSecureError::Decrypt(e) => write!(f, "decryption failed: {e}"),
            OpenSecureError::Malformed => write!(f, "malformed secure payload"),
            OpenSecureError::MacMismatch => write!(f, "hmac verification failed"),
        }
    }
}

impl std::error::Error for OpenSecureError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OpenSecureError::Decrypt(e) => Some(e),
            _ => None,
        }
    }
}

/// The decrypted contents of a secure bitstream.
#[derive(Debug, Clone)]
pub struct OpenedBitstream {
    /// The configuration bitstream.
    pub bitstream: Bitstream,
    /// The authentication key recovered from the stream — the Fig. 1
    /// design flaw the paper highlights: once `K_E` leaks, `K_A` is
    /// free.
    pub k_auth: [u8; 32],
}

impl SecureBitstream {
    /// Seals `bitstream`: authenticates with HMAC-SHA-256 under
    /// `k_auth` (storing `k_auth` in the header *and* footer, as in
    /// Fig. 1), then encrypts with AES-256-CBC under `k_enc`.
    #[must_use]
    pub fn seal(bitstream: &Bitstream, k_enc: &[u8; 32], k_auth: &[u8; 32], iv: [u8; 16]) -> Self {
        let body = bitstream.as_bytes();
        let mac = hmac_sha256(k_auth, body);
        let mut plain = Vec::with_capacity(body.len() + 128);
        plain.extend_from_slice(MAGIC);
        plain.extend_from_slice(k_auth); // HMAC header (contains K_A)
        plain.extend_from_slice(&(body.len() as u64).to_be_bytes());
        plain.extend_from_slice(body);
        plain.extend_from_slice(k_auth); // HMAC footer (contains K_A again)
        plain.extend_from_slice(&mac);
        let ciphertext = Aes256::new(k_enc).cbc_encrypt(&iv, &plain);
        Self { iv, ciphertext }
    }

    /// Decrypts and verifies, returning the bitstream and the
    /// recovered `K_A`.
    ///
    /// # Errors
    ///
    /// See [`OpenSecureError`].
    pub fn open(&self, k_enc: &[u8; 32]) -> Result<OpenedBitstream, OpenSecureError> {
        let plain = Aes256::new(k_enc)
            .cbc_decrypt(&self.iv, &self.ciphertext)
            .map_err(OpenSecureError::Decrypt)?;
        let (body, k_auth) = parse_and_verify_plain(&plain)?;
        Ok(OpenedBitstream { bitstream: Bitstream::from_bytes(plain[body].to_vec()), k_auth })
    }
}

/// Validates a decrypted container payload (structure, footer key,
/// MAC) and returns the body range plus the embedded `K_A`. Shared by
/// [`SecureBitstream::open`] and the patch oracle's slow path so both
/// agree byte-for-byte on what the device accepts.
pub(crate) fn parse_and_verify_plain(
    plain: &[u8],
) -> Result<(core::ops::Range<usize>, [u8; 32]), OpenSecureError> {
    if plain.len() < 8 + 32 + 8 + 32 + 32 || &plain[..8] != MAGIC {
        return Err(OpenSecureError::Malformed);
    }
    let mut k_auth = [0u8; 32];
    k_auth.copy_from_slice(&plain[8..40]);
    let len_bytes: [u8; 8] =
        plain.get(40..48).and_then(|s| s.try_into().ok()).ok_or(OpenSecureError::Malformed)?;
    let len = u64::from_be_bytes(len_bytes) as usize;
    let body_end = 48usize.checked_add(len).ok_or(OpenSecureError::Malformed)?;
    if plain.len() != body_end.checked_add(32 + 32).ok_or(OpenSecureError::Malformed)? {
        return Err(OpenSecureError::Malformed);
    }
    let body = &plain[48..body_end];
    let footer_key = &plain[body_end..body_end + 32];
    if footer_key != k_auth {
        return Err(OpenSecureError::Malformed);
    }
    let mac = &plain[body_end + 32..];
    if hmac_sha256(&k_auth, body) != mac[..32] {
        return Err(OpenSecureError::MacMismatch);
    }
    Ok((48..body_end, k_auth))
}

/// A model of the side-channel capability assumed by the attack
/// (paper references \[16\]–\[18\]): measuring enough power traces of the
/// decryption engine recovers the on-chip AES key `K_E`.
#[derive(Clone)]
pub struct ScaOracle {
    k_enc: [u8; 32],
    traces_needed: u32,
}

impl fmt::Debug for ScaOracle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ScaOracle(traces_needed: {})", self.traces_needed)
    }
}

impl ScaOracle {
    /// Creates an oracle holding the victim's key; `traces_needed`
    /// models the measurement effort (~10⁴–10⁵ traces in the cited
    /// attacks).
    #[must_use]
    pub fn new(k_enc: [u8; 32], traces_needed: u32) -> Self {
        Self { k_enc, traces_needed }
    }

    /// Attempts key recovery with `traces` measured power traces.
    /// Returns the key once enough traces are collected.
    #[must_use]
    pub fn extract_key(&self, traces: u32) -> Option<[u8; 32]> {
        (traces >= self.traces_needed).then_some(self.k_enc)
    }

    /// The measurement effort this oracle demands before it yields
    /// the key.
    #[must_use]
    pub fn traces_needed(&self) -> u32 {
        self.traces_needed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn sha256_vectors() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn hmac_vectors() {
        // RFC 4231 test case 2.
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
        // RFC 4231 test case 1.
        assert_eq!(
            hex(&hmac_sha256(&[0x0b; 20], b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn aes256_fips_vector() {
        // FIPS-197 Appendix C.3.
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let pt: [u8; 16] = core::array::from_fn(|i| (i as u8) * 0x11);
        let aes = Aes256::new(&key);
        let ct = aes.encrypt_block(&pt);
        assert_eq!(hex(&ct), "8ea2b7ca516745bfeafc49904b496089");
        assert_eq!(aes.decrypt_block(&ct), pt);
    }

    #[test]
    fn cbc_roundtrip_various_lengths() {
        let key = [7u8; 32];
        let iv = [9u8; 16];
        let aes = Aes256::new(&key);
        for len in [0usize, 1, 15, 16, 17, 100, 1000] {
            let msg: Vec<u8> = (0..len).map(|i| (i * 13 % 251) as u8).collect();
            let ct = aes.cbc_encrypt(&iv, &msg);
            assert_eq!(ct.len() % 16, 0);
            assert_eq!(aes.cbc_decrypt(&iv, &ct).unwrap(), msg, "len {len}");
        }
    }

    #[test]
    fn cbc_rejects_tampered_padding() {
        let key = [1u8; 32];
        let iv = [2u8; 16];
        let aes = Aes256::new(&key);
        let ct = aes.cbc_encrypt(&iv, b"hello");
        // Truncation is a framing error, caught before decryption.
        assert_eq!(
            aes.cbc_decrypt(&iv, &ct[..ct.len() - 1]),
            Err(CbcError::BadLength { len: ct.len() - 1 })
        );
        assert_eq!(aes.cbc_decrypt(&iv, &[]), Err(CbcError::BadLength { len: 0 }));
        // A wrong key decrypts to garbage: structurally fine, padding
        // almost surely wrong — and distinguishable from framing.
        let wrong = Aes256::new(&[3u8; 32]);
        assert_eq!(wrong.cbc_decrypt(&iv, &ct), Err(CbcError::BadPadding));
    }

    #[test]
    fn streaming_sha256_matches_oneshot_at_all_split_points() {
        let msg: Vec<u8> = (0..300u32).map(|i| (i * 7 % 256) as u8).collect();
        let want = sha256(&msg);
        for split in [0, 1, 55, 56, 63, 64, 65, 128, 299, 300] {
            let mut h = Sha256::new();
            h.update(&msg[..split]);
            // The clone is a midstate: resuming it must not disturb
            // the original semantics.
            let mut resumed = h;
            resumed.update(&msg[split..]);
            assert_eq!(resumed.finalize(), want, "split at {split}");
        }
    }

    #[test]
    fn streaming_hmac_matches_oneshot() {
        let msg: Vec<u8> = (0..517u32).map(|i| (i * 11 % 256) as u8).collect();
        let want = hmac_sha256(b"a key", &msg);
        let mut mac = HmacSha256::new(b"a key");
        mac.update(&msg[..129]);
        let checkpoint = mac;
        mac.update(&msg[129..]);
        assert_eq!(mac.finalize(), want);
        let mut resumed = checkpoint;
        resumed.update(&msg[129..]);
        assert_eq!(resumed.finalize(), want);
    }

    #[test]
    fn seal_open_roundtrip() {
        let bs = Bitstream::from_bytes((0..512u32).map(|i| (i % 256) as u8).collect());
        let k_enc = [0xE1; 32];
        let k_auth = [0xA2; 32];
        let sealed = SecureBitstream::seal(&bs, &k_enc, &k_auth, [3; 16]);
        let opened = sealed.open(&k_enc).expect("opens");
        assert_eq!(opened.bitstream, bs);
        assert_eq!(opened.k_auth, k_auth, "K_A recovered from the stream");
    }

    #[test]
    fn wrong_key_fails() {
        let bs = Bitstream::from_bytes(vec![1, 2, 3, 4]);
        let sealed = SecureBitstream::seal(&bs, &[5; 32], &[6; 32], [7; 16]);
        assert!(sealed.open(&[0; 32]).is_err());
    }

    #[test]
    fn tampered_ciphertext_fails_mac_or_structure() {
        let bs = Bitstream::from_bytes(vec![0xAB; 256]);
        let k_enc = [5; 32];
        let mut sealed = SecureBitstream::seal(&bs, &k_enc, &[6; 32], [7; 16]);
        // Flip one bit in a body block (CBC garbles one block and
        // bit-flips the next; HMAC must catch it).
        let mid = sealed.ciphertext.len() / 2;
        sealed.ciphertext[mid] ^= 1;
        assert!(sealed.open(&k_enc).is_err());
    }

    #[test]
    fn sca_oracle_thresholds() {
        let oracle = ScaOracle::new([9; 32], 50_000);
        assert_eq!(oracle.extract_key(10_000), None);
        assert_eq!(oracle.extract_key(50_000), Some([9; 32]));
    }
}
