//! Configuration packets.
//!
//! 7-series configuration data is a stream of 32-bit words: a sync
//! word, then Type 1 packets (register reads/writes with an 11-bit
//! word count) optionally followed by Type 2 packets (long payloads
//! using the previous packet's address; 27-bit word count). The
//! constants below reproduce the values quoted in Section V of the
//! paper: `0x30004000` (Type 1 write FDRI, count 0), `0x5xxxxxxx`
//! (Type 2 payload), `0x30000001` (write CRC), `0x30008001` +
//! `0x00000007` (CMD = RCRC).

use core::fmt;

/// The synchronization word that starts configuration.
pub const SYNC_WORD: u32 = 0xAA99_5566;

/// The dummy padding word.
pub const DUMMY_WORD: u32 = 0xFFFF_FFFF;

/// The bus-width auto-detect words.
pub const BUS_WIDTH_SYNC: u32 = 0x0000_00BB;
/// Second bus-width detect word.
pub const BUS_WIDTH_DETECT: u32 = 0x1122_0044;

/// A Type 1 NOP.
pub const NOP: u32 = 0x2000_0000;

/// The Type 1 "write FDRI register, WORD_COUNT=0" header the paper
/// quotes (`0x30004000`) — the anchor the payload search locates.
pub const FDRI_WRITE_HEADER: u32 = 0x3000_4000;

/// The Type 1 "write CRC register, WORD_COUNT=1" header the paper
/// quotes (`0x30000001`) — the packet the CRC-disable trick zeroes.
pub const CRC_WRITE_HEADER: u32 = 0x3000_0001;

/// Configuration register addresses (7-series subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum RegisterAddress {
    /// Cyclic-redundancy-check register.
    Crc = 0,
    /// Frame address register.
    Far = 1,
    /// Frame data input register (configuration payload).
    Fdri = 2,
    /// Frame data output register.
    Fdro = 3,
    /// Command register.
    Cmd = 4,
    /// Control register 0.
    Ctl0 = 5,
    /// Mask register.
    Mask = 6,
    /// Status register.
    Stat = 7,
    /// Legacy output register.
    Lout = 8,
    /// Configuration option register 0.
    Cor0 = 9,
    /// Device ID register.
    Idcode = 12,
}

impl RegisterAddress {
    /// Decodes a register address field.
    #[must_use]
    pub fn from_raw(raw: u16) -> Option<Self> {
        Some(match raw {
            0 => Self::Crc,
            1 => Self::Far,
            2 => Self::Fdri,
            3 => Self::Fdro,
            4 => Self::Cmd,
            5 => Self::Ctl0,
            6 => Self::Mask,
            7 => Self::Stat,
            8 => Self::Lout,
            9 => Self::Cor0,
            12 => Self::Idcode,
            _ => return None,
        })
    }
}

/// Values written to the CMD register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum CommandCode {
    /// Null command.
    Null = 0,
    /// Write configuration data.
    Wcfg = 1,
    /// Reset the CRC register (`CMD[4:0] = 00111`, as quoted in the
    /// paper).
    Rcrc = 7,
    /// Begin the startup sequence.
    Start = 5,
    /// Desynchronize: stop interpreting packets.
    Desync = 13,
}

/// A decoded configuration packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Packet {
    /// Type 1 register write with inline payload (≤ 2047 words).
    Type1Write {
        /// Target register.
        addr: RegisterAddress,
        /// Payload words.
        data: Vec<u32>,
    },
    /// Type 2 long write; uses the address of the preceding Type 1
    /// packet.
    Type2Write {
        /// Payload words.
        data: Vec<u32>,
    },
    /// A NOP word.
    Nop,
}

/// A word count that does not fit its packet header field. Encoding
/// is total over all other inputs; these are the only failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketEncodeError {
    /// A Type 1 count exceeds the 11-bit field.
    Type1CountOverflow {
        /// The offending word count.
        count: usize,
    },
    /// A Type 2 count exceeds the 27-bit field.
    Type2CountOverflow {
        /// The offending word count.
        count: usize,
    },
}

impl fmt::Display for PacketEncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PacketEncodeError::Type1CountOverflow { count } => {
                write!(f, "word count {count} exceeds the 11-bit Type 1 field")
            }
            PacketEncodeError::Type2CountOverflow { count } => {
                write!(f, "word count {count} exceeds the 27-bit Type 2 field")
            }
        }
    }
}

impl std::error::Error for PacketEncodeError {}

impl Packet {
    /// Encodes a Type 1 write header for `count` payload words.
    ///
    /// # Errors
    ///
    /// Returns [`PacketEncodeError::Type1CountOverflow`] if `count`
    /// exceeds the 11-bit field.
    pub fn type1_header(addr: RegisterAddress, count: usize) -> Result<u32, PacketEncodeError> {
        if count >= (1 << 11) {
            return Err(PacketEncodeError::Type1CountOverflow { count });
        }
        Ok(0x3000_0000 | ((addr as u32) << 13) | count as u32)
    }

    /// Encodes a Type 2 write header for `count` payload words.
    ///
    /// # Errors
    ///
    /// Returns [`PacketEncodeError::Type2CountOverflow`] if `count`
    /// exceeds the 27-bit field.
    pub fn type2_header(count: usize) -> Result<u32, PacketEncodeError> {
        if count >= (1 << 27) {
            return Err(PacketEncodeError::Type2CountOverflow { count });
        }
        Ok(0x5000_0000 | count as u32)
    }

    /// Decodes the header fields of a packet word:
    /// `(type, opcode, addr, count)`.
    #[must_use]
    pub fn decode_header(word: u32) -> HeaderFields {
        HeaderFields {
            packet_type: (word >> 29) as u8,
            opcode: ((word >> 27) & 0x3) as u8,
            addr: ((word >> 13) & 0x3FFF) as u16,
            count_type1: (word & 0x7FF) as usize,
            count_type2: (word & 0x07FF_FFFF) as usize,
        }
    }
}

/// Raw header fields of a packet word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeaderFields {
    /// Bits `[31:29]`.
    pub packet_type: u8,
    /// Bits `[28:27]`: 0 = NOP, 1 = read, 2 = write.
    pub opcode: u8,
    /// Bits `[26:13]` (Type 1 only).
    pub addr: u16,
    /// Bits `[10:0]` (Type 1).
    pub count_type1: usize,
    /// Bits `[26:0]` (Type 2).
    pub count_type2: usize,
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Packet::Type1Write { addr, data } => {
                write!(f, "Type 1: write {addr:?}, {} words", data.len())
            }
            Packet::Type2Write { data } => write!(f, "Type 2: write, {} words", data.len()),
            Packet::Nop => write!(f, "NOP"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        // "Packet Type 1: Write FDRI register, WORD_COUNT=0" is
        // 0x30004000.
        assert_eq!(Packet::type1_header(RegisterAddress::Fdri, 0), Ok(FDRI_WRITE_HEADER));
        // "Packet Type 1: Write CRC register, WORD_COUNT=1" is
        // 0x30000001.
        assert_eq!(Packet::type1_header(RegisterAddress::Crc, 1), Ok(CRC_WRITE_HEADER));
        // "Packet Type 1: Write CMD register, WORD_COUNT=1" is
        // 0x30008001.
        assert_eq!(Packet::type1_header(RegisterAddress::Cmd, 1), Ok(0x3000_8001));
        // "Packet Type 2: Write FDRI register, WORD_COUNT=2432080" is
        // 0x50251c50.
        assert_eq!(Packet::type2_header(2_432_080), Ok(0x5025_1C50));
    }

    #[test]
    fn header_field_extraction() {
        let h = Packet::decode_header(0x3000_4000);
        assert_eq!(h.packet_type, 1);
        assert_eq!(h.opcode, 2);
        assert_eq!(RegisterAddress::from_raw(h.addr), Some(RegisterAddress::Fdri));
        assert_eq!(h.count_type1, 0);

        let h2 = Packet::decode_header(0x5025_1C50);
        assert_eq!(h2.packet_type, 2);
        assert_eq!(h2.count_type2, 2_432_080);
    }

    #[test]
    fn rcrc_is_00111() {
        assert_eq!(CommandCode::Rcrc as u32, 0b00111);
        assert_eq!(CommandCode::Desync as u32, 13);
    }

    #[test]
    fn count_overflow_is_a_typed_error_not_a_panic() {
        assert_eq!(
            Packet::type1_header(RegisterAddress::Fdri, 2048),
            Err(PacketEncodeError::Type1CountOverflow { count: 2048 })
        );
        assert_eq!(Packet::type1_header(RegisterAddress::Fdri, 2047).map(|w| w & 0x7FF), Ok(2047));
        assert_eq!(
            Packet::type2_header(1 << 27),
            Err(PacketEncodeError::Type2CountOverflow { count: 1 << 27 })
        );
        let e = Packet::type2_header(usize::MAX).unwrap_err();
        assert!(e.to_string().contains("27-bit"));
    }
}
