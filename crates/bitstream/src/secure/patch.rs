//! The position-seekable CBC patch oracle.
//!
//! A 545-load attack over the Fig. 1 container must re-seal one
//! candidate edit per load. Re-running [`SecureBitstream::seal`] would
//! decrypt, re-MAC and re-encrypt the *whole* stream every time; the
//! [`PatchOracle`] instead pays once to open the golden container and
//! cache its plaintext, ciphertext and HMAC midstates, after which
//! each candidate costs crypto work proportional to the **dirty
//! window** only (see below). This is the same trick xous-core's
//! restartable `BitstreamOracle` plays on real 7-series streams: CBC
//! is position-seekable, so there is no reason to touch clean blocks.
//!
//! # Block/frame geometry
//!
//! The sealed plaintext is laid out as
//!
//! ```text
//! offset   0        8        40       48        48+n     80+n   112+n
//!          | MAGIC  |  K_A   | len(n) |  body   |  K_A   | MAC  | pad
//! CBC blk  |----- blocks 0..2 ------->|-- blk 3 + p/16 --...
//! ```
//!
//! The 48-byte header is exactly three AES blocks, so bitstream byte
//! `p` lives in plaintext block `3 + p/16`. A frame-word edit at byte
//! `p` therefore dirties plaintext from block `⌊(48+p)/16⌋` onward.
//!
//! # Dirty-window rules
//!
//! * **Decrypt** — never: the golden plaintext is cached at
//!   construction. The *device-side* seekable verifier
//!   ([`PatchOracle::open_patched`]) decrypts only the ciphertext
//!   blocks that differ from the cached golden container (CBC
//!   decryption is random-access: block `i` depends only on
//!   ciphertext blocks `i-1` and `i`).
//! * **CRC** — repaired in O(changed words × log stream) via
//!   [`DeltaCrc`], never by re-walking the packet stream.
//! * **MAC** — HMAC-SHA-256 inner-hash midstates are checkpointed
//!   every [`MIDSTATE_STRIDE`] body bytes; a re-MAC resumes from the
//!   last checkpoint before the first edited byte and absorbs only
//!   the suffix.
//! * **Re-encrypt** — CBC chains forward, so every ciphertext block
//!   from the first dirty block to the end of the stream changes (the
//!   MAC and footer live in the trailing blocks and are always dirty
//!   anyway). Blocks *before* the first dirty block are reused
//!   byte-for-byte from the golden ciphertext — the clean prefix is
//!   the saved work, and for edits uniformly placed in the stream it
//!   averages half the container on top of skipping the decrypt
//!   entirely.
//!
//! Plain `memcpy` of cached bytes is not counted against the budget —
//! only AES and SHA-256 work scales with the container, and both are
//! confined to the dirty window.

use core::cell::Cell;
use core::fmt;
use core::ops::Range;

use crate::delta::DeltaCrc;
use crate::image::Bitstream;

use super::{
    parse_and_verify_plain, strip_pkcs7, Aes256, HmacSha256, OpenSecureError, SecureBitstream,
};

/// Plaintext offset where the bitstream body starts (3 CBC blocks of
/// header: magic, K_A, length).
pub const BODY_OFFSET: usize = 48;

/// Body bytes between consecutive HMAC inner-hash checkpoints. A
/// multiple of the SHA-256 block size so checkpoints carry no partial
/// buffer.
pub const MIDSTATE_STRIDE: usize = 1024;

/// A contiguous, length-preserving byte splice into the bitstream
/// body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BodyEdit {
    /// Byte offset into the bitstream body.
    pub offset: usize,
    /// Replacement bytes (the edit cannot grow or shrink the body —
    /// CBC geometry is fixed at seal time).
    pub bytes: Vec<u8>,
}

impl BodyEdit {
    /// Convenience constructor.
    #[must_use]
    pub fn new(offset: usize, bytes: Vec<u8>) -> Self {
        Self { offset, bytes }
    }
}

/// An error from the patch paths.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PatchError {
    /// An edit extends past the end of the body.
    OutOfRange {
        /// The edit's byte offset.
        offset: usize,
        /// The edit's length.
        len: usize,
        /// The body length it overran.
        body: usize,
    },
    /// Two edits overlap (the result would depend on application
    /// order).
    Overlap {
        /// Offset of the second edit of the overlapping pair.
        offset: usize,
    },
    /// A variant bitstream changed length; CBC geometry is fixed at
    /// seal time, so only same-length variants can be patched.
    LengthChanged {
        /// The variant's length.
        got: usize,
        /// The golden length.
        want: usize,
    },
    /// CRC repair was requested but the golden stream has no
    /// [`DeltaCrc`]-coverable FDRI payload (no payload, or a stream
    /// shape the delta model declines).
    CrcUnrepairable,
    /// A CRC-repaired edit fell outside the FDRI payload, where the
    /// delta model cannot price its CRC contribution.
    OutsidePayload {
        /// The offending edit's byte offset.
        offset: usize,
    },
}

impl fmt::Display for PatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatchError::OutOfRange { offset, len, body } => {
                write!(f, "edit at {offset}+{len} overruns the {body}-byte body")
            }
            PatchError::Overlap { offset } => write!(f, "overlapping edit at offset {offset}"),
            PatchError::LengthChanged { got, want } => {
                write!(f, "variant is {got} bytes, sealed geometry is fixed at {want}")
            }
            PatchError::CrcUnrepairable => {
                write!(f, "no delta-CRC coverage: the stream has no analyzable FDRI payload")
            }
            PatchError::OutsidePayload { offset } => {
                write!(f, "edit at offset {offset} is outside the FDRI payload")
            }
        }
    }
}

impl std::error::Error for PatchError {}

/// Cumulative crypto-work accounting for one oracle.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PatchStats {
    /// Containers produced by the patch paths.
    pub patches: u64,
    /// AES blocks re-encrypted (the dirty window).
    pub blocks_reencrypted: u64,
    /// AES blocks reused from the golden ciphertext (the clean
    /// prefix).
    pub blocks_reused: u64,
    /// Body bytes re-absorbed into HMAC past the nearest checkpoint.
    pub mac_bytes: u64,
    /// Seekable device-side opens served.
    pub opens: u64,
    /// AES blocks decrypted by seekable opens.
    pub blocks_decrypted: u64,
    /// AES blocks a seekable open reused from the cached plaintext.
    pub open_blocks_reused: u64,
    /// Seekable opens that fell back to a full decrypt (different IV,
    /// different length, or a dirty header).
    pub full_opens: u64,
}

/// A position-seekable patch-and-verify oracle over one golden sealed
/// container. See the module docs for the geometry and the
/// dirty-window rules.
pub struct PatchOracle {
    aes: Aes256,
    iv: [u8; 16],
    /// K_A as embedded in the container's header and footer.
    k_auth: [u8; 32],
    /// Key used to recompute the MAC of a patched body. Equals
    /// `k_auth` unless overridden via [`PatchOracle::with_mac_key`]
    /// (modelling an attacker guessing K_A instead of reading it).
    mac_key: [u8; 32],
    /// The unpadded golden plaintext (header ‖ body ‖ footer ‖ MAC).
    plain: Vec<u8>,
    /// The golden ciphertext (PKCS#7 padded length).
    golden_ct: Vec<u8>,
    /// The golden body parsed as a bitstream.
    golden: Bitstream,
    /// HMAC inner midstates under `mac_key`: entry `i` has absorbed
    /// the first `i·MIDSTATE_STRIDE` body bytes.
    mac_midstates: Vec<HmacSha256>,
    /// HMAC inner midstates under the embedded `k_auth`, for the
    /// device-side seekable verify.
    auth_midstates: Vec<HmacSha256>,
    /// Delta-CRC analysis of the golden stream, when coverable.
    delta: Option<DeltaCrc>,
    /// The FDRI payload range, when present.
    payload: Option<Range<usize>>,
    stats: Cell<PatchStats>,
}

impl fmt::Debug for PatchOracle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PatchOracle(body: {} bytes, container: {} blocks, delta-crc: {})",
            self.golden.len(),
            self.golden_ct.len() / 16,
            self.delta.is_some(),
        )
    }
}

impl PatchOracle {
    /// Opens `sealed` under `k_enc` (one full decrypt + verify — the
    /// only whole-container crypto this oracle ever performs) and
    /// builds the caches.
    ///
    /// # Errors
    ///
    /// Exactly [`SecureBitstream::open`]'s errors: the oracle refuses
    /// containers the device would refuse.
    pub fn new(sealed: &SecureBitstream, k_enc: &[u8; 32]) -> Result<Self, OpenSecureError> {
        let aes = Aes256::new(k_enc);
        let plain =
            aes.cbc_decrypt(&sealed.iv, &sealed.ciphertext).map_err(OpenSecureError::Decrypt)?;
        let (body_range, k_auth) = parse_and_verify_plain(&plain)?;
        let golden = Bitstream::from_bytes(plain[body_range.clone()].to_vec());
        let payload = golden.fdri_data_range();
        let delta = payload.as_ref().and_then(|p| DeltaCrc::analyze(&golden, p));
        let midstates = Self::build_midstates(&k_auth, golden.as_bytes());
        Ok(Self {
            aes,
            iv: sealed.iv,
            k_auth,
            mac_key: k_auth,
            golden_ct: sealed.ciphertext.clone(),
            golden,
            mac_midstates: midstates.clone(),
            auth_midstates: midstates,
            delta,
            payload,
            plain,
            stats: Cell::new(PatchStats::default()),
        })
    }

    /// Replaces the re-MAC key — modelling an attacker who *guessed*
    /// K_A instead of reading it from the opened container. The
    /// embedded header/footer keys are left untouched, so a wrong
    /// guess yields containers the device rejects with
    /// [`OpenSecureError::MacMismatch`].
    #[must_use]
    pub fn with_mac_key(mut self, key: [u8; 32]) -> Self {
        self.mac_key = key;
        self.mac_midstates = Self::build_midstates(&key, self.golden.as_bytes());
        self
    }

    /// The golden bitstream recovered from the container — the only
    /// plaintext source an encrypted-path attack works from.
    #[must_use]
    pub fn golden(&self) -> &Bitstream {
        &self.golden
    }

    /// The authentication key read from the opened container (the
    /// Fig. 1 design flaw: once `K_E` leaks, `K_A` is free).
    #[must_use]
    pub fn k_auth(&self) -> [u8; 32] {
        self.k_auth
    }

    /// The golden sealed container (byte-identical to the input).
    #[must_use]
    pub fn golden_container(&self) -> SecureBitstream {
        SecureBitstream { iv: self.iv, ciphertext: self.golden_ct.clone() }
    }

    /// Cumulative crypto-work accounting.
    #[must_use]
    pub fn stats(&self) -> PatchStats {
        self.stats.get()
    }

    fn build_midstates(key: &[u8; 32], body: &[u8]) -> Vec<HmacSha256> {
        let mut mac = HmacSha256::new(key);
        let mut states = Vec::with_capacity(body.len() / MIDSTATE_STRIDE + 1);
        states.push(mac);
        for chunk in body.chunks(MIDSTATE_STRIDE) {
            mac.update(chunk);
            if chunk.len() == MIDSTATE_STRIDE {
                states.push(mac);
            }
        }
        states
    }

    /// Seals a candidate variant of the golden bitstream, re-touching
    /// only the dirty window. The variant must be the same length and
    /// carry its own valid config CRC (the attack's candidate forge
    /// already delta-patches it); use
    /// [`PatchOracle::patch_payload_edits`] to have the oracle repair
    /// the CRC itself.
    ///
    /// # Errors
    ///
    /// [`PatchError::LengthChanged`] on a length-changing variant.
    pub fn patch_bitstream(&self, variant: &Bitstream) -> Result<SecureBitstream, PatchError> {
        if variant.len() != self.golden.len() {
            return Err(PatchError::LengthChanged { got: variant.len(), want: self.golden.len() });
        }
        let diff = self.golden.diff(variant);
        match diff.first() {
            None => {
                // Unchanged: the golden container is already sealed.
                let mut stats = self.stats.get();
                stats.patches += 1;
                stats.blocks_reused += (self.golden_ct.len() / 16) as u64;
                self.stats.set(stats);
                Ok(self.golden_container())
            }
            Some(first) => Ok(self.reseal(variant.as_bytes(), first.start)),
        }
    }

    /// Applies raw body edits (caller-supplied CRC) and seals.
    ///
    /// # Errors
    ///
    /// [`PatchError::OutOfRange`] / [`PatchError::Overlap`] on
    /// malformed edit lists.
    pub fn patch_edits(&self, edits: &[BodyEdit]) -> Result<SecureBitstream, PatchError> {
        let Some(first_changed) = self.check_edits(edits)? else {
            return self.patch_bitstream(&self.golden.clone());
        };
        let mut body = self.golden.as_bytes().to_vec();
        for e in edits {
            body[e.offset..e.offset + e.bytes.len()].copy_from_slice(&e.bytes);
        }
        Ok(self.reseal(&body, first_changed))
    }

    /// Applies frame-payload edits, repairs the config CRC via the
    /// cached [`DeltaCrc`] analysis, and seals — the candidate-LUT
    /// fast path: the caller supplies only the LUT delta and the
    /// oracle prices the CRC in O(changed words × log stream).
    ///
    /// # Errors
    ///
    /// [`PatchError::CrcUnrepairable`] when the golden stream has no
    /// delta-coverable payload, [`PatchError::OutsidePayload`] when an
    /// edit leaves it, plus the edit-list errors of
    /// [`PatchOracle::patch_edits`].
    pub fn patch_payload_edits(&self, edits: &[BodyEdit]) -> Result<SecureBitstream, PatchError> {
        let (Some(delta), Some(payload)) = (&self.delta, &self.payload) else {
            return Err(PatchError::CrcUnrepairable);
        };
        let Some(first_edit) = self.check_edits(edits)? else {
            return self.patch_bitstream(&self.golden.clone());
        };
        let mut words: Vec<usize> = Vec::new();
        for e in edits {
            if e.offset < payload.start || e.offset + e.bytes.len() > payload.end {
                return Err(PatchError::OutsidePayload { offset: e.offset });
            }
            let first_word = (e.offset - payload.start) / 4;
            let last_word = (e.offset + e.bytes.len() - 1 - payload.start) / 4;
            words.extend(first_word..=last_word);
        }
        words.sort_unstable();
        words.dedup();
        let mut body = self.golden.as_bytes().to_vec();
        for e in edits {
            body[e.offset..e.offset + e.bytes.len()].copy_from_slice(&e.bytes);
        }
        delta.patch(self.golden.as_bytes(), &mut body, payload.start, &words);
        let first_changed = if self.golden.as_bytes()
            [delta.crc_value_at()..delta.crc_value_at() + 4]
            == body[delta.crc_value_at()..delta.crc_value_at() + 4]
        {
            first_edit
        } else {
            first_edit.min(delta.crc_value_at())
        };
        Ok(self.reseal(&body, first_changed))
    }

    /// Validates an edit list; returns the first changed body offset,
    /// or `None` for an empty list.
    fn check_edits(&self, edits: &[BodyEdit]) -> Result<Option<usize>, PatchError> {
        let body = self.golden.len();
        for e in edits {
            if e.offset + e.bytes.len() > body {
                return Err(PatchError::OutOfRange { offset: e.offset, len: e.bytes.len(), body });
            }
        }
        let mut spans: Vec<(usize, usize)> =
            edits.iter().map(|e| (e.offset, e.offset + e.bytes.len())).collect();
        spans.sort_unstable();
        for pair in spans.windows(2) {
            if pair[1].0 < pair[0].1 {
                return Err(PatchError::Overlap { offset: pair[1].0 });
            }
        }
        Ok(spans.first().map(|&(start, _)| start))
    }

    /// Seals `body` (a same-length variant of the golden body whose
    /// bytes before `first_changed` equal the golden's), re-encrypting
    /// only from the first dirty CBC block and re-MACing from the
    /// nearest midstate checkpoint.
    fn reseal(&self, body: &[u8], first_changed: usize) -> SecureBitstream {
        debug_assert_eq!(body.len(), self.golden.len());
        debug_assert_eq!(body[..first_changed], self.golden.as_bytes()[..first_changed]);

        // Incremental re-MAC: resume the inner hash at the last
        // checkpoint before the edit.
        let ckpt = (first_changed / MIDSTATE_STRIDE).min(self.mac_midstates.len() - 1);
        let mut mac = self.mac_midstates[ckpt];
        mac.update(&body[ckpt * MIDSTATE_STRIDE..]);
        let mac = mac.finalize();

        // The dirty window starts at the CBC block holding the first
        // changed plaintext byte and runs to the end of the stream.
        let first_plain = BODY_OFFSET + first_changed;
        let tail_start = first_plain - first_plain % 16;
        let plain_len = self.plain.len();
        let pad = 16 - plain_len % 16;
        let mut tail = Vec::with_capacity(plain_len - tail_start + pad);
        tail.extend_from_slice(&body[tail_start - BODY_OFFSET..]);
        tail.extend_from_slice(&self.k_auth);
        tail.extend_from_slice(&mac);
        tail.extend(core::iter::repeat_n(pad as u8, pad));
        debug_assert!(tail.len().is_multiple_of(16));

        // CBC forward from the last clean ciphertext block.
        let mut prev = [0u8; 16];
        prev.copy_from_slice(&self.golden_ct[tail_start - 16..tail_start]);
        let mut ciphertext = Vec::with_capacity(self.golden_ct.len());
        ciphertext.extend_from_slice(&self.golden_ct[..tail_start]);
        for chunk in tail.chunks_exact(16) {
            let mut block = [0u8; 16];
            for (i, b) in block.iter_mut().enumerate() {
                *b = chunk[i] ^ prev[i];
            }
            prev = self.aes.encrypt_block(&block);
            ciphertext.extend_from_slice(&prev);
        }
        debug_assert_eq!(ciphertext.len(), self.golden_ct.len());

        let mut stats = self.stats.get();
        stats.patches += 1;
        stats.blocks_reencrypted += (tail.len() / 16) as u64;
        stats.blocks_reused += (tail_start / 16) as u64;
        stats.mac_bytes += (body.len() - ckpt * MIDSTATE_STRIDE) as u64;
        self.stats.set(stats);

        SecureBitstream { iv: self.iv, ciphertext }
    }

    /// Device-side seekable open: decrypts and verifies `sealed`
    /// against the cached golden container, decrypting only the
    /// ciphertext blocks that differ and resuming the MAC from the
    /// nearest checkpoint. Byte-identical in outcome to
    /// [`SecureBitstream::open`] under the construction key; falls
    /// back to the full open on containers that changed IV, length or
    /// header blocks.
    ///
    /// # Errors
    ///
    /// Exactly [`SecureBitstream::open`]'s errors.
    pub fn open_patched(&self, sealed: &SecureBitstream) -> Result<Bitstream, OpenSecureError> {
        if sealed.iv != self.iv || sealed.ciphertext.len() != self.golden_ct.len() {
            return self.open_full(sealed);
        }
        let ct = &sealed.ciphertext;
        let first_dirty = (0..ct.len() / 16)
            .find(|&b| ct[b * 16..b * 16 + 16] != self.golden_ct[b * 16..b * 16 + 16]);
        let Some(fd) = first_dirty else {
            // The golden container itself.
            let mut stats = self.stats.get();
            stats.opens += 1;
            stats.open_blocks_reused += (ct.len() / 16) as u64;
            self.stats.set(stats);
            return Ok(self.golden.clone());
        };
        if fd < BODY_OFFSET / 16 {
            // Header blocks touched: no clean prefix to lean on.
            return self.open_full(sealed);
        }

        // Seek-decrypt the dirty suffix: CBC block `i` needs only
        // ciphertext blocks `i-1` and `i`.
        let mut prev = [0u8; 16];
        prev.copy_from_slice(&ct[fd * 16 - 16..fd * 16]);
        let mut tail = Vec::with_capacity(ct.len() - fd * 16);
        for chunk in ct[fd * 16..].chunks_exact(16) {
            let mut block = [0u8; 16];
            block.copy_from_slice(chunk);
            let dec = self.aes.decrypt_block(&block);
            for (i, d) in dec.iter().enumerate() {
                tail.push(d ^ prev[i]);
            }
            prev = block;
        }
        strip_pkcs7(&mut tail).map_err(OpenSecureError::Decrypt)?;

        // Reassemble: clean plaintext prefix (cached) + dirty tail.
        let mut plain = self.plain[..fd * 16].to_vec();
        plain.extend_from_slice(&tail);
        // The length field sits in the (unchanged) header, so the
        // total must still match the golden geometry.
        if plain.len() != self.plain.len() {
            return Err(OpenSecureError::Malformed);
        }
        let n = self.golden.len();
        let body = &plain[BODY_OFFSET..BODY_OFFSET + n];
        let footer = &plain[BODY_OFFSET + n..BODY_OFFSET + n + 32];
        if footer != self.k_auth {
            return Err(OpenSecureError::Malformed);
        }
        let stored_mac = &plain[BODY_OFFSET + n + 32..];

        // Seekable verify under the *embedded* K_A: resume from the
        // last checkpoint before the first dirty body byte.
        let first_changed_body = (fd * 16).saturating_sub(BODY_OFFSET).min(n);
        let ckpt = (first_changed_body / MIDSTATE_STRIDE).min(self.auth_midstates.len() - 1);
        let mut mac = self.auth_midstates[ckpt];
        mac.update(&body[ckpt * MIDSTATE_STRIDE..]);
        if mac.finalize() != stored_mac[..32] {
            return Err(OpenSecureError::MacMismatch);
        }

        let mut stats = self.stats.get();
        stats.opens += 1;
        stats.blocks_decrypted += (ct.len() / 16 - fd) as u64;
        stats.open_blocks_reused += fd as u64;
        self.stats.set(stats);
        Ok(Bitstream::from_bytes(body.to_vec()))
    }

    /// Seals an arbitrary body — a *partial* bitstream, whose length
    /// has nothing to do with the golden container — into a fresh
    /// Fig. 1 container under the oracle's keys. Partial streams are a
    /// few frames long, so there is no clean prefix to reuse: the
    /// whole (small) container is MACed and encrypted, and the work is
    /// charged to the same counters as a patch.
    ///
    /// The MAC is computed under the oracle's re-MAC key (normally the
    /// embedded `K_A`; a [`PatchOracle::with_mac_key`] guess produces
    /// containers the device rejects, exactly like the full-load
    /// path).
    #[must_use]
    pub fn seal_fresh(&self, body: &[u8]) -> SecureBitstream {
        let mut mac = HmacSha256::new(&self.mac_key);
        mac.update(body);
        let mac = mac.finalize();
        let mut plain = Vec::with_capacity(body.len() + 128);
        plain.extend_from_slice(crate::secure::MAGIC);
        plain.extend_from_slice(&self.k_auth);
        plain.extend_from_slice(&(body.len() as u64).to_be_bytes());
        plain.extend_from_slice(body);
        plain.extend_from_slice(&self.k_auth);
        plain.extend_from_slice(&mac);
        let ciphertext = self.aes.cbc_encrypt(&self.iv, &plain);
        let mut stats = self.stats.get();
        stats.patches += 1;
        stats.blocks_reencrypted += (ciphertext.len() / 16) as u64;
        stats.mac_bytes += body.len() as u64;
        self.stats.set(stats);
        SecureBitstream { iv: self.iv, ciphertext }
    }

    /// Device-side open of a fresh (non-golden-geometry) container:
    /// full decrypt + structural + `K_A` + MAC verification, exactly
    /// as [`SecureBitstream::open`] under the construction key.
    /// Returns the raw body bytes.
    ///
    /// # Errors
    ///
    /// Exactly [`SecureBitstream::open`]'s errors.
    pub fn open_fresh(&self, sealed: &SecureBitstream) -> Result<Vec<u8>, OpenSecureError> {
        let plain = self
            .aes
            .cbc_decrypt(&sealed.iv, &sealed.ciphertext)
            .map_err(OpenSecureError::Decrypt)?;
        let (body_range, _) = parse_and_verify_plain(&plain)?;
        let mut stats = self.stats.get();
        stats.opens += 1;
        stats.full_opens += 1;
        stats.blocks_decrypted += (sealed.ciphertext.len() / 16) as u64;
        self.stats.set(stats);
        Ok(plain[body_range].to_vec())
    }

    /// The slow-path open under the construction key, for containers
    /// the seekable path cannot relate to the golden one.
    fn open_full(&self, sealed: &SecureBitstream) -> Result<Bitstream, OpenSecureError> {
        let plain = self
            .aes
            .cbc_decrypt(&sealed.iv, &sealed.ciphertext)
            .map_err(OpenSecureError::Decrypt)?;
        let (body_range, _) = parse_and_verify_plain(&plain)?;
        let mut stats = self.stats.get();
        stats.opens += 1;
        stats.full_opens += 1;
        stats.blocks_decrypted += (sealed.ciphertext.len() / 16) as u64;
        self.stats.set(stats);
        Ok(Bitstream::from_bytes(plain[body_range].to_vec()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameData;
    use crate::image::BitstreamBuilder;

    const K_ENC: [u8; 32] = [0xE1; 32];
    const K_AUTH: [u8; 32] = [0xA2; 32];
    const IV: [u8; 16] = [0x35; 16];

    fn sample(frames: usize, seed: u64) -> Bitstream {
        let mut data = FrameData::new(frames);
        let mut x = seed | 1;
        for b in data.as_mut_bytes() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *b = x as u8;
        }
        BitstreamBuilder::new(data).build()
    }

    fn oracle(frames: usize, seed: u64) -> (Bitstream, PatchOracle) {
        let golden = sample(frames, seed);
        let sealed = SecureBitstream::seal(&golden, &K_ENC, &K_AUTH, IV);
        let oracle = PatchOracle::new(&sealed, &K_ENC).expect("golden container opens");
        (golden, oracle)
    }

    #[test]
    fn construction_recovers_golden_and_k_auth() {
        let (golden, oracle) = oracle(4, 1);
        assert_eq!(oracle.golden(), &golden);
        assert_eq!(oracle.k_auth(), K_AUTH);
        assert_eq!(oracle.golden_container(), SecureBitstream::seal(&golden, &K_ENC, &K_AUTH, IV));
    }

    #[test]
    fn patched_container_equals_full_reseal() {
        let (golden, oracle) = oracle(4, 2);
        let payload = golden.fdri_data_range().expect("payload");
        for offset in [payload.start, payload.start + 1021, payload.end - 4, 0, golden.len() - 1] {
            let mut variant = golden.clone();
            variant.as_mut_bytes()[offset] ^= 0x5A;
            let patched = oracle.patch_bitstream(&variant).expect("patches");
            let resealed = SecureBitstream::seal(&variant, &K_ENC, &K_AUTH, IV);
            assert_eq!(patched, resealed, "offset {offset}");
            // And the device accepts it.
            let opened = patched.open(&K_ENC).expect("device opens");
            assert_eq!(opened.bitstream, variant);
        }
    }

    #[test]
    fn fresh_container_round_trips_and_matches_full_seal() {
        let (_, oracle) = oracle(4, 7);
        // A short body (a partial stream is a few hundred bytes, not a
        // whole configuration) seals into a device-valid container.
        let body: Vec<u8> = (0u16..600).map(|i| (i * 7) as u8).collect();
        let fresh = oracle.seal_fresh(&body);
        assert_eq!(
            fresh,
            SecureBitstream::seal(&Bitstream::from_bytes(body.clone()), &K_ENC, &K_AUTH, IV),
            "a fresh seal is byte-identical to the vendor sealer"
        );
        assert_eq!(oracle.open_fresh(&fresh).expect("device opens"), body);
        // The full-container open agrees too.
        assert_eq!(fresh.open(&K_ENC).expect("opens").bitstream.as_bytes(), &body[..]);
    }

    #[test]
    fn fresh_container_under_wrong_mac_key_is_refused() {
        let (_, oracle) = oracle(4, 8);
        let oracle = oracle.with_mac_key([0x77; 32]);
        let fresh = oracle.seal_fresh(&[1, 2, 3, 4]);
        assert_eq!(oracle.open_fresh(&fresh), Err(OpenSecureError::MacMismatch));
        assert!(matches!(fresh.open(&K_ENC), Err(OpenSecureError::MacMismatch)));
    }

    #[test]
    fn patch_reuses_clean_prefix_blocks() {
        let (golden, oracle) = oracle(8, 3);
        let offset = golden.len() - 64;
        let mut variant = golden.clone();
        variant.as_mut_bytes()[offset] ^= 1;
        let before = oracle.stats();
        let patched = oracle.patch_bitstream(&variant).expect("patches");
        let stats = oracle.stats();
        let total_blocks = (patched.ciphertext.len() / 16) as u64;
        let dirty = stats.blocks_reencrypted - before.blocks_reencrypted;
        let clean = stats.blocks_reused - before.blocks_reused;
        assert_eq!(dirty + clean, total_blocks);
        assert!(
            dirty < total_blocks / 4,
            "a tail edit must not re-encrypt the stream: {dirty}/{total_blocks}"
        );
        // Clean prefix is byte-identical to the golden ciphertext.
        let golden_ct = oracle.golden_container().ciphertext;
        let split = (clean as usize) * 16;
        assert_eq!(patched.ciphertext[..split], golden_ct[..split]);
    }

    #[test]
    fn payload_edit_mode_repairs_crc() {
        let (golden, oracle) = oracle(4, 4);
        let payload = golden.fdri_data_range().expect("payload");
        let edit = BodyEdit::new(payload.start + 128, vec![0xDE, 0xAD, 0xBE, 0xEF]);
        let patched = oracle.patch_payload_edits(std::slice::from_ref(&edit)).expect("patches");
        let opened = patched.open(&K_ENC).expect("device opens: CRC was repaired");
        assert!(opened.bitstream.parse().expect("parses").crc_checked);
        assert_eq!(
            &opened.bitstream.as_bytes()[payload.start + 128..payload.start + 132],
            &[0xDE, 0xAD, 0xBE, 0xEF],
        );
        // Raw mode with the same edit and no CRC repair is refused by
        // the device model's parser.
        let raw = oracle.patch_edits(&[edit]).expect("raw mode seals");
        let opened_raw =
            raw.open(&K_ENC).expect("MAC still verifies — raw mode MACs what it is given");
        assert!(matches!(
            opened_raw.bitstream.parse(),
            Err(crate::image::ParseBitstreamError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn open_patched_matches_full_open() {
        let (golden, oracle) = oracle(4, 5);
        let mut variant = golden.clone();
        let mid = golden.len() / 2;
        variant.as_mut_bytes()[mid] ^= 0xF0;
        let patched = oracle.patch_bitstream(&variant).expect("patches");
        assert_eq!(oracle.open_patched(&patched).expect("seekable open"), variant);
        // Golden container short-circuits.
        assert_eq!(oracle.open_patched(&oracle.golden_container()).expect("golden opens"), golden);
        let stats = oracle.stats();
        assert_eq!(stats.full_opens, 0, "no fallback needed");
        assert!(stats.blocks_decrypted < (patched.ciphertext.len() / 16) as u64);
    }

    #[test]
    fn open_patched_rejects_what_open_rejects() {
        let (_, oracle) = oracle(4, 6);
        let golden_ct = oracle.golden_container();
        // Garble a body block: both paths must agree on the error.
        for at in [60usize, 300, 1000] {
            let mut tampered = golden_ct.clone();
            tampered.ciphertext[at] ^= 1;
            let full = tampered.open(&K_ENC).expect_err("tampered");
            let seek = oracle.open_patched(&tampered).expect_err("tampered");
            assert_eq!(seek, full, "byte {at}");
        }
        // Truncated container falls back to the full path's error.
        let mut short = golden_ct.clone();
        short.ciphertext.truncate(short.ciphertext.len() - 7);
        assert_eq!(
            oracle.open_patched(&short).expect_err("truncated"),
            short.open(&K_ENC).expect_err("truncated"),
        );
    }

    #[test]
    fn wrong_mac_key_is_rejected_by_the_device() {
        let (golden, oracle) = oracle(4, 7);
        let oracle = oracle.with_mac_key([0x13; 32]);
        let mut variant = golden.clone();
        variant.as_mut_bytes()[100] ^= 1;
        let forged = oracle.patch_bitstream(&variant).expect("seals under the wrong key");
        assert_eq!(forged.open(&K_ENC).expect_err("device refuses"), OpenSecureError::MacMismatch);
        assert_eq!(
            oracle.open_patched(&forged).expect_err("seekable verify agrees"),
            OpenSecureError::MacMismatch
        );
    }

    #[test]
    fn edit_list_validation() {
        let (golden, oracle) = oracle(2, 8);
        let n = golden.len();
        assert!(matches!(
            oracle.patch_edits(&[BodyEdit::new(n - 1, vec![0, 0])]),
            Err(PatchError::OutOfRange { .. })
        ));
        assert!(matches!(
            oracle.patch_edits(&[BodyEdit::new(10, vec![0; 8]), BodyEdit::new(12, vec![1])]),
            Err(PatchError::Overlap { offset: 12 })
        ));
        let mut grown = golden.clone().into_bytes();
        grown.push(0);
        assert!(matches!(
            oracle.patch_bitstream(&Bitstream::from_bytes(grown)),
            Err(PatchError::LengthChanged { .. })
        ));
        assert!(matches!(
            oracle.patch_payload_edits(&[BodyEdit::new(0, vec![9])]),
            Err(PatchError::OutsidePayload { offset: 0 })
        ));
    }
}
