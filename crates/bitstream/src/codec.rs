//! Encoding and decoding LUT configuration in the bitstream byte
//! stream.
//!
//! A 64-bit LUT INIT is first permuted with ξ (Table I), split into
//! four 16-bit sub-vectors `B1..B4`, and stored at byte offsets
//! `l, l+d, l+2d, l+3d` (Section V-A): in the order `B1 B2 B3 B4` for
//! LUTs in SLICEL slices and `B4 B3 B1 B2` for SLICEM slices.

use boolfn::DualOutputInit;

use crate::xi;

/// Sub-vector storage order, determined by the slice type hosting the
/// LUT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SubVectorOrder {
    /// Logic slice: `B1, B2, B3, B4`.
    SliceL,
    /// Memory-capable slice: `B4, B3, B1, B2`.
    SliceM,
}

impl SubVectorOrder {
    /// The storage order as indices into `[B1, B2, B3, B4]`.
    #[must_use]
    pub fn indices(self) -> [usize; 4] {
        match self {
            SubVectorOrder::SliceL => [0, 1, 2, 3],
            SubVectorOrder::SliceM => [3, 2, 0, 1],
        }
    }

    /// All orders a search has to consider when the slice type is
    /// unknown.
    #[must_use]
    pub fn both() -> [SubVectorOrder; 2] {
        [SubVectorOrder::SliceL, SubVectorOrder::SliceM]
    }
}

/// Where a LUT's configuration lives in a byte stream: base index
/// `l`, sub-vector stride `d` and storage order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LutLocation {
    /// Byte index of the first stored sub-vector.
    pub l: usize,
    /// Byte offset between consecutive sub-vectors.
    pub d: usize,
    /// Storage order.
    pub order: SubVectorOrder,
}

impl LutLocation {
    /// The byte range `[l, l + 3d + 2)` this location touches.
    #[must_use]
    pub fn span(&self) -> core::ops::Range<usize> {
        self.l..self.l + 3 * self.d + 2
    }

    /// Whether two locations' stored bytes overlap (two real LUTs can
    /// never overlap in a bitstream — the pruning rule of
    /// Section VI-C).
    #[must_use]
    pub fn overlaps(&self, other: &LutLocation) -> bool {
        let mine: Vec<usize> = self.byte_indices();
        let theirs: Vec<usize> = other.byte_indices();
        mine.iter().any(|b| theirs.contains(b))
    }

    /// The eight byte indices this location's sub-vectors occupy
    /// (two bytes at each of the four strided offsets).
    #[must_use]
    pub fn byte_indices(&self) -> Vec<usize> {
        (0..4).flat_map(|j| [self.l + j * self.d, self.l + j * self.d + 1]).collect()
    }
}

/// Splits a ξ-permuted vector into `[B1, B2, B3, B4]`.
#[must_use]
pub fn split(b: u64) -> [u16; 4] {
    [b as u16, (b >> 16) as u16, (b >> 32) as u16, (b >> 48) as u16]
}

/// Reassembles a ξ-permuted vector from `[B1, B2, B3, B4]`.
#[must_use]
pub fn join(parts: [u16; 4]) -> u64 {
    u64::from(parts[0])
        | (u64::from(parts[1]) << 16)
        | (u64::from(parts[2]) << 32)
        | (u64::from(parts[3]) << 48)
}

/// Encodes a LUT INIT into its four stored sub-vectors, in storage
/// order.
#[must_use]
pub fn encode(init: DualOutputInit, order: SubVectorOrder) -> [u16; 4] {
    let parts = split(xi::permute(init.init()));
    let idx = order.indices();
    [parts[idx[0]], parts[idx[1]], parts[idx[2]], parts[idx[3]]]
}

/// Decodes a LUT INIT from four stored sub-vectors in storage order.
#[must_use]
pub fn decode(stored: [u16; 4], order: SubVectorOrder) -> DualOutputInit {
    let idx = order.indices();
    let mut parts = [0u16; 4];
    for (pos, &which) in idx.iter().enumerate() {
        parts[which] = stored[pos];
    }
    DualOutputInit::new(xi::unpermute(join(parts)))
}

/// Writes a LUT INIT into `data` at `loc`. Sub-vectors are stored
/// little-endian.
///
/// # Panics
///
/// Panics if the location extends past the end of `data`.
pub fn write_lut(data: &mut [u8], loc: LutLocation, init: DualOutputInit) {
    let stored = encode(init, loc.order);
    for (j, sv) in stored.iter().enumerate() {
        let at = loc.l + j * loc.d;
        data[at..at + 2].copy_from_slice(&sv.to_le_bytes());
    }
}

/// Reads a LUT INIT from `data` at `loc`.
///
/// # Panics
///
/// Panics if the location extends past the end of `data`.
#[must_use]
pub fn read_lut(data: &[u8], loc: LutLocation) -> DualOutputInit {
    let mut stored = [0u16; 4];
    for (j, sv) in stored.iter_mut().enumerate() {
        let at = loc.l + j * loc.d;
        *sv = u16::from_le_bytes([data[at], data[at + 1]]);
    }
    decode(stored, loc.order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FRAME_BYTES;

    fn loc(l: usize, order: SubVectorOrder) -> LutLocation {
        LutLocation { l, d: FRAME_BYTES, order }
    }

    #[test]
    fn encode_decode_roundtrip_both_orders() {
        let mut x: u64 = 0xFEED_FACE_CAFE_BEEF;
        for order in SubVectorOrder::both() {
            for _ in 0..50 {
                let init = DualOutputInit::new(x);
                assert_eq!(decode(encode(init, order), order), init);
                x = x.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(7);
            }
        }
    }

    #[test]
    fn write_read_roundtrip() {
        let mut data = vec![0u8; 5 * FRAME_BYTES];
        let init = DualOutputInit::new(0x0123_4567_89AB_CDEF);
        for order in SubVectorOrder::both() {
            let location = loc(37, order);
            write_lut(&mut data, location, init);
            assert_eq!(read_lut(&data, location), init);
        }
    }

    #[test]
    fn orders_store_differently() {
        let init = DualOutputInit::new(0x0123_4567_89AB_CDEF);
        let l = encode(init, SubVectorOrder::SliceL);
        let m = encode(init, SubVectorOrder::SliceM);
        assert_ne!(l, m);
        // SLICEM stores B4 B3 B1 B2.
        assert_eq!(m, [l[3], l[2], l[0], l[1]]);
    }

    #[test]
    fn split_join_roundtrip() {
        let x = 0xA1B2_C3D4_E5F6_0718u64;
        assert_eq!(join(split(x)), x);
        assert_eq!(split(x)[0], 0x0718);
        assert_eq!(split(x)[3], 0xA1B2);
    }

    #[test]
    fn overlap_detection() {
        let a = loc(100, SubVectorOrder::SliceL);
        let b = loc(101, SubVectorOrder::SliceL);
        let c = loc(102, SubVectorOrder::SliceL);
        assert!(a.overlaps(&b), "adjacent bases share a byte");
        assert!(!a.overlaps(&c), "two-byte stride separates cleanly");
        assert!(a.overlaps(&a));
    }

    #[test]
    fn constant_zero_lut_is_all_zero_bytes() {
        // ξ is a pure permutation, so the all-0 truth table stores as
        // all-0 bytes — which is why the "replace with 0s" fault of
        // the paper is easy to spot-check.
        assert_eq!(encode(DualOutputInit::new(0), SubVectorOrder::SliceL), [0; 4]);
        assert_eq!(encode(DualOutputInit::new(u64::MAX), SubVectorOrder::SliceM), [u16::MAX; 4]);
    }
}
