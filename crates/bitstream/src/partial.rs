//! Partial-reconfiguration streams: frame-delta configuration.
//!
//! 7-series devices accept configuration streams that rewrite only a
//! window of frames: a `FAR` (frame address register) write selects
//! where the next `FDRI` payload lands, and the payload may be any
//! whole number of frames instead of the full device image. This
//! module models that capability along the same attack boundary as
//! [`crate::image`]:
//!
//! * [`PartialBitstream`] is the wire form — sync header, `RCRC`,
//!   `IDCODE`, then one `FAR`/`WCFG`/`FDRI` group per contiguous run
//!   of touched frames, a CRC write over exactly the words shipped,
//!   and `Start`/`Desync`;
//! * [`PartialBitstream::parse`] consumes such streams the way the
//!   configuration logic does (zero words skipped, `RCRC` resets,
//!   stored-CRC compare), returning typed errors for anything
//!   malformed;
//! * [`PartialForge`] turns a candidate full bitstream into the
//!   frame-delta against the image currently on the device, refusing
//!   (→ caller falls back to a full load) any pair the delta model
//!   does not cover — so acceptance and rejection stay bit-identical
//!   to full-load behaviour in every case.
//!
//! The frame address is modelled as a linear frame index (the real
//! device's block/row/column major address decomposes to one; the
//! attack never needs the split fields). The forge caches one
//! assembled stream per run *shape* and re-CRCs same-shape variants
//! through the linear [`DeltaCrc`], so steady-state forging costs
//! O(changed words × log stream) instead of a fresh CRC walk.

use core::fmt;
use core::ops::Range;
use std::collections::HashMap;

use crate::crc::ConfigCrc;
use crate::delta::DeltaCrc;
use crate::frame::{FrameData, FRAME_BYTES, FRAME_WORDS};
use crate::image::Bitstream;
use crate::packet::{
    CommandCode, Packet, PacketEncodeError, RegisterAddress, BUS_WIDTH_DETECT, BUS_WIDTH_SYNC,
    DUMMY_WORD, NOP, SYNC_WORD,
};

/// One contiguous run of frames carried by a partial stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialRun {
    /// Linear index of the first frame written.
    pub start_frame: usize,
    /// The frame contents, written absolutely (idempotent: re-shipping
    /// the same run is a no-op on a device already holding it).
    pub frames: FrameData,
}

/// The result of parsing a partial stream, as seen by the
/// configuration logic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialConfig {
    /// The device ID written during configuration, if any.
    pub idcode: Option<u32>,
    /// The frame runs, in stream order.
    pub runs: Vec<PartialRun>,
    /// Whether a CRC write was present and matched.
    pub crc_checked: bool,
}

impl PartialConfig {
    /// Total frames written across all runs.
    #[must_use]
    pub fn frames_written(&self) -> usize {
        self.runs.iter().map(|r| r.frames.frame_count()).sum()
    }
}

/// An error from [`PartialBitstream::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParsePartialError {
    /// No sync word found.
    NoSync,
    /// The stream ended in the middle of a packet.
    Truncated,
    /// A packet addressed an unknown register.
    UnknownRegister {
        /// Raw address field.
        raw: u16,
    },
    /// The CRC written in the stream does not match the computed one.
    CrcMismatch {
        /// Value found in the stream.
        stored: u32,
        /// Value computed from the writes.
        computed: u32,
    },
    /// FDRI payload arrived before any FAR write selected a frame
    /// address.
    FdriBeforeFar,
    /// A frame run was not a whole number of frames.
    RaggedRun {
        /// Payload words received in the run.
        words: usize,
    },
}

impl fmt::Display for ParsePartialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParsePartialError::NoSync => write!(f, "no sync word found"),
            ParsePartialError::Truncated => write!(f, "partial stream truncated mid-packet"),
            ParsePartialError::UnknownRegister { raw } => {
                write!(f, "write to unknown register {raw:#x}")
            }
            ParsePartialError::CrcMismatch { stored, computed } => {
                write!(f, "crc mismatch: stored {stored:#010x}, computed {computed:#010x}")
            }
            ParsePartialError::FdriBeforeFar => {
                write!(f, "FDRI payload before any FAR write")
            }
            ParsePartialError::RaggedRun { words } => {
                write!(f, "frame run of {words} words is not a whole number of frames")
            }
        }
    }
}

impl std::error::Error for ParsePartialError {}

/// A partial-reconfiguration stream: raw bytes in the device's wire
/// format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialBitstream(Vec<u8>);

impl PartialBitstream {
    /// Wraps raw bytes.
    #[must_use]
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        Self(bytes)
    }

    /// The raw bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Consumes the wrapper.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.0
    }

    /// Size in bytes — the configuration traffic this delta ships.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the stream is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Assembles a partial stream writing `runs`, computing the CRC
    /// over exactly the words shipped.
    ///
    /// # Errors
    ///
    /// Returns [`PacketEncodeError`] if a run exceeds the Type 2
    /// word-count field.
    pub fn assemble(idcode: u32, runs: &[PartialRun]) -> Result<Self, PacketEncodeError> {
        let mut words: Vec<u32> = Vec::new();
        // Short header: two dummy pad words, bus width detection, sync.
        words.extend([DUMMY_WORD; 2]);
        words.push(BUS_WIDTH_SYNC);
        words.push(BUS_WIDTH_DETECT);
        words.push(SYNC_WORD);
        words.push(NOP);

        let mut crc = ConfigCrc::new();
        let write1 = |words: &mut Vec<u32>,
                      crc: &mut ConfigCrc,
                      addr: RegisterAddress,
                      vals: &[u32]|
         -> Result<(), PacketEncodeError> {
            words.push(Packet::type1_header(addr, vals.len())?);
            for &v in vals {
                words.push(v);
                if addr != RegisterAddress::Crc {
                    crc.update(addr as u16, v);
                }
            }
            Ok(())
        };

        write1(&mut words, &mut crc, RegisterAddress::Cmd, &[CommandCode::Rcrc as u32])?;
        crc.reset();
        words.push(NOP);
        write1(&mut words, &mut crc, RegisterAddress::Idcode, &[idcode])?;
        for run in runs {
            write1(&mut words, &mut crc, RegisterAddress::Far, &[run.start_frame as u32])?;
            write1(&mut words, &mut crc, RegisterAddress::Cmd, &[CommandCode::Wcfg as u32])?;
            let payload = run.frames.to_words();
            words.push(Packet::type1_header(RegisterAddress::Fdri, 0)?);
            words.push(Packet::type2_header(payload.len())?);
            for &w in &payload {
                crc.update(RegisterAddress::Fdri as u16, w);
                words.push(w);
            }
        }
        let expected = crc.value();
        write1(&mut words, &mut crc, RegisterAddress::Crc, &[expected])?;
        words.push(NOP);
        write1(&mut words, &mut crc, RegisterAddress::Cmd, &[CommandCode::Start as u32])?;
        write1(&mut words, &mut crc, RegisterAddress::Cmd, &[CommandCode::Desync as u32])?;
        words.push(NOP);

        let mut bytes = Vec::with_capacity(words.len() * 4);
        for w in words {
            bytes.extend_from_slice(&w.to_be_bytes());
        }
        Ok(Self(bytes))
    }

    /// Parses the stream the way the device configuration logic does:
    /// zero/NOP/dummy words skipped, `RCRC` resets the CRC, every FAR
    /// write closes the current frame run and opens a new one, and a
    /// stored CRC must match the computed value.
    ///
    /// # Errors
    ///
    /// See [`ParsePartialError`]. Total over arbitrary bytes: never
    /// panics, never allocates from attacker-controlled length claims.
    pub fn parse(&self) -> Result<PartialConfig, ParsePartialError> {
        let bytes = &self.0;
        let sync = {
            let pat = SYNC_WORD.to_be_bytes();
            let mut at = 0;
            loop {
                if at + 4 > bytes.len() {
                    break None;
                }
                if bytes[at..at + 4] == pat {
                    break Some(at);
                }
                at += 4;
            }
        };
        let mut at = sync.ok_or(ParsePartialError::NoSync)? + 4;
        let read = |at: usize| -> Result<u32, ParsePartialError> {
            bytes
                .get(at..at + 4)
                .map(|b| u32::from_be_bytes(b.try_into().expect("4 bytes")))
                .ok_or(ParsePartialError::Truncated)
        };

        let mut crc = ConfigCrc::new();
        let mut last_addr: Option<RegisterAddress> = None;
        let mut idcode = None;
        let mut crc_checked = false;
        let mut far: Option<u32> = None;
        let mut runs: Vec<PartialRun> = Vec::new();
        let mut pending: Vec<u32> = Vec::new();

        // Closes the currently-accumulating frame run.
        let flush = |far: Option<u32>,
                     pending: &mut Vec<u32>,
                     runs: &mut Vec<PartialRun>|
         -> Result<(), ParsePartialError> {
            if pending.is_empty() {
                return Ok(());
            }
            if !pending.len().is_multiple_of(FRAME_WORDS) {
                return Err(ParsePartialError::RaggedRun { words: pending.len() });
            }
            let start = far.ok_or(ParsePartialError::FdriBeforeFar)?;
            runs.push(PartialRun {
                start_frame: start as usize,
                frames: FrameData::from_words(pending),
            });
            pending.clear();
            Ok(())
        };

        'stream: while at + 4 <= bytes.len() {
            let word = read(at)?;
            at += 4;
            if word == 0 || word == NOP || word == DUMMY_WORD {
                continue;
            }
            let h = Packet::decode_header(word);
            match (h.packet_type, h.opcode) {
                (1, 2) => {
                    let addr = RegisterAddress::from_raw(h.addr)
                        .ok_or(ParsePartialError::UnknownRegister { raw: h.addr })?;
                    let mut values = Vec::with_capacity(h.count_type1.min(64));
                    for _ in 0..h.count_type1 {
                        values.push(read(at)?);
                        at += 4;
                    }
                    match addr {
                        RegisterAddress::Crc => {
                            let stored = *values.first().ok_or(ParsePartialError::Truncated)?;
                            let computed = crc.value();
                            if stored != computed {
                                return Err(ParsePartialError::CrcMismatch { stored, computed });
                            }
                            crc_checked = true;
                        }
                        RegisterAddress::Cmd => {
                            for &v in &values {
                                if v == CommandCode::Rcrc as u32 {
                                    crc.reset();
                                } else {
                                    crc.update(addr as u16, v);
                                }
                                if v == CommandCode::Desync as u32 {
                                    break 'stream;
                                }
                            }
                        }
                        RegisterAddress::Idcode => {
                            idcode = values.first().copied();
                            for &v in &values {
                                crc.update(addr as u16, v);
                            }
                        }
                        RegisterAddress::Far => {
                            flush(far, &mut pending, &mut runs)?;
                            far = values.last().copied();
                            for &v in &values {
                                crc.update(addr as u16, v);
                            }
                        }
                        RegisterAddress::Fdri => {
                            if far.is_none() {
                                return Err(ParsePartialError::FdriBeforeFar);
                            }
                            for &v in &values {
                                crc.update(addr as u16, v);
                                pending.push(v);
                            }
                        }
                        _ => {
                            for &v in &values {
                                crc.update(addr as u16, v);
                            }
                        }
                    }
                    last_addr = Some(addr);
                }
                (2, 2) => {
                    let addr = last_addr.ok_or(ParsePartialError::Truncated)?;
                    if addr == RegisterAddress::Fdri && far.is_none() {
                        return Err(ParsePartialError::FdriBeforeFar);
                    }
                    for _ in 0..h.count_type2 {
                        let v = read(at)?;
                        at += 4;
                        crc.update(addr as u16, v);
                        if addr == RegisterAddress::Fdri {
                            pending.push(v);
                        }
                    }
                }
                (1, 0) => {} // packet-level NOP
                _ => {}      // reads and reserved types are ignored
            }
        }
        flush(far, &mut pending, &mut runs)?;
        Ok(PartialConfig { idcode, runs, crc_checked })
    }
}

impl AsRef<[u8]> for PartialBitstream {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// A forged frame-delta, ready to ship.
#[derive(Debug, Clone)]
pub struct PartialDelta {
    /// The wire stream.
    pub stream: PartialBitstream,
    /// Frames the stream writes.
    pub frames_written: usize,
}

/// A cached same-shape stream: re-forging a delta whose run layout
/// matches only splices new frame bytes and patches the CRC through
/// the linear delta.
struct Template {
    bytes: Vec<u8>,
    /// Byte range of the (single) run's payload within `bytes`.
    payload: Range<usize>,
    delta: DeltaCrc,
}

/// Forges frame-delta partial streams against a reference full
/// bitstream's structure.
///
/// Built once from the first full load of a session; every later
/// candidate that differs from the on-device image only inside the
/// FDRI payload (and the stored CRC word) forges in O(touched
/// frames). Anything else — structural edits, CRC-disabled streams,
/// candidates whose own stored CRC would be refused — returns `None`
/// and the caller falls back to a full load, so device-visible
/// accept/reject behaviour is preserved exactly.
pub struct PartialForge {
    /// Raw bytes of the reference stream.
    reference: Vec<u8>,
    /// Byte range of the FDRI payload within the reference.
    payload: Range<usize>,
    /// Differential-CRC analysis of the reference structure.
    delta: DeltaCrc,
    /// Byte range of the stored CRC value word.
    crc_word: Range<usize>,
    /// Device ID carried by the reference (re-emitted in deltas).
    idcode: u32,
    /// Per-run-shape template cache (single-run shapes only).
    templates: HashMap<(usize, usize), Template>,
}

impl fmt::Debug for PartialForge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PartialForge(payload: {} bytes, templates: {})",
            self.payload.len(),
            self.templates.len()
        )
    }
}

impl PartialForge {
    /// Analyzes `reference` (a full bitstream the device accepted).
    /// `None` when the stream's structure defeats the delta model —
    /// no FDRI payload, no checkable CRC, or no IDCODE.
    #[must_use]
    pub fn new(reference: &Bitstream) -> Option<Self> {
        let payload = reference.fdri_data_range()?;
        let delta = DeltaCrc::analyze(reference, &payload)?;
        let idcode = reference.parse().ok()?.idcode?;
        let crc_word = delta.crc_value_at()..delta.crc_value_at() + 4;
        Some(Self {
            reference: reference.as_bytes().to_vec(),
            payload,
            delta,
            crc_word,
            idcode,
            templates: HashMap::new(),
        })
    }

    /// The reference FDRI payload byte range.
    #[must_use]
    pub fn payload_range(&self) -> Range<usize> {
        self.payload.clone()
    }

    /// Forges the frame-delta that turns the on-device `image` into
    /// `candidate`. Returns `None` — caller ships a full load — when
    /// the pair is not expressible as a payload delta: length or
    /// structural bytes differ from the reference, or the candidate's
    /// stored CRC is not the value the device would compute (the
    /// device must keep refusing such streams).
    #[must_use]
    pub fn delta(&mut self, image: &Bitstream, candidate: &Bitstream) -> Option<PartialDelta> {
        let cand = candidate.as_bytes();
        let img = image.as_bytes();
        if cand.len() != self.reference.len() || img.len() != self.reference.len() {
            return None;
        }
        // Structural check + CRC validity, both against the reference:
        // every byte where the candidate differs from the reference
        // must lie in the payload or be the stored CRC word.
        let words_vs_ref = self.payload_word_diff(&self.reference, cand)?;
        let computed =
            self.delta.value_for(&self.reference, cand, self.payload.start, &words_vs_ref);
        if self.delta.stored(cand) != computed {
            // The device would refuse this candidate; ship it whole so
            // it can.
            return None;
        }
        // The shipped delta: frames where the candidate differs from
        // what is on the device. The image was validated when it was
        // latched, so a payload-confined scan suffices.
        let words_vs_img = self.payload_word_diff(img, cand)?;
        let mut frames: Vec<usize> = words_vs_img.iter().map(|w| w * 4 / FRAME_BYTES).collect();
        frames.dedup();
        let runs = contiguous_runs(&frames);
        let frames_written = frames.len();
        let stream = self.forge_runs(cand, &runs).ok()?;
        Some(PartialDelta { stream, frames_written })
    }

    /// Payload word indices where `a` and `b` differ, or `None` if
    /// they differ anywhere structural (outside payload and stored CRC
    /// word). 8-byte-block scan: near-identical streams are dominated
    /// by equal blocks.
    fn payload_word_diff(&self, a: &[u8], b: &[u8]) -> Option<Vec<usize>> {
        let mut words: Vec<usize> = Vec::new();
        let mut note = |pos: usize| -> bool {
            if self.payload.contains(&pos) {
                let w = (pos - self.payload.start) / 4;
                if words.last() != Some(&w) {
                    words.push(w);
                }
                true
            } else {
                self.crc_word.contains(&pos)
            }
        };
        let mut chunks_a = a.chunks_exact(8);
        let mut chunks_b = b.chunks_exact(8);
        let mut block = 0;
        for (ca, cb) in chunks_a.by_ref().zip(chunks_b.by_ref()) {
            let x = u64::from_ne_bytes(ca.try_into().expect("8-byte chunk"));
            let y = u64::from_ne_bytes(cb.try_into().expect("8-byte chunk"));
            if x != y {
                for pos in block..block + 8 {
                    if a[pos] != b[pos] && !note(pos) {
                        return None;
                    }
                }
            }
            block += 8;
        }
        for (pos, (x, y)) in chunks_a.remainder().iter().zip(chunks_b.remainder()).enumerate() {
            if x != y && !note(block + pos) {
                return None;
            }
        }
        Some(words)
    }

    /// Assembles (or re-CRCs from a cached template) the stream
    /// shipping `runs` with frame bytes taken from `candidate`.
    fn forge_runs(
        &mut self,
        candidate: &[u8],
        runs: &[(usize, usize)],
    ) -> Result<PartialBitstream, PacketEncodeError> {
        let payload_start = self.payload.start;
        let run_bytes = |start: usize, len: usize| {
            let at = payload_start + start * FRAME_BYTES;
            &candidate[at..at + len * FRAME_BYTES]
        };
        if let [(start, len)] = runs {
            // Single contiguous run: the common case (one LUT edit
            // touches 4–5 consecutive frames). Same-shape templates
            // re-CRC through the linear delta instead of re-walking.
            if let Some(t) = self.templates.get(&(*start, *len)) {
                // `t.bytes` is the exact stream `t.delta` was analyzed
                // against and stays immutable: every reforge patches a
                // clone against it.
                let fresh = run_bytes(*start, *len);
                let mut words: Vec<usize> = Vec::new();
                for (w, (a, b)) in t.bytes[t.payload.clone()]
                    .chunks_exact(4)
                    .zip(fresh.chunks_exact(4))
                    .enumerate()
                {
                    if a != b {
                        words.push(w);
                    }
                }
                let mut out = t.bytes.clone();
                out[t.payload.clone()].copy_from_slice(fresh);
                t.delta.patch(&t.bytes, &mut out, t.payload.start, &words);
                return Ok(PartialBitstream(out));
            }
        }
        let assembled_runs: Vec<PartialRun> = runs
            .iter()
            .map(|&(start, len)| PartialRun {
                start_frame: start,
                frames: FrameData::from_bytes(run_bytes(start, len).to_vec()),
            })
            .collect();
        let stream = PartialBitstream::assemble(self.idcode, &assembled_runs)?;
        if let [(start, len)] = runs {
            // Cache the shape for same-shape reforges, when the
            // partial stream's own structure is delta-coverable
            // (single contiguous payload run — always true here).
            let as_image = Bitstream::from_bytes(stream.0.clone());
            if let Some(payload) = as_image.fdri_data_range() {
                if let Some(delta) = DeltaCrc::analyze(&as_image, &payload) {
                    self.templates.insert(
                        (*start, *len),
                        Template { bytes: stream.0.clone(), payload, delta },
                    );
                }
            }
        }
        Ok(stream)
    }
}

/// Groups sorted frame indices into `(start, len)` runs of
/// consecutive frames.
#[must_use]
pub fn contiguous_runs(frames: &[usize]) -> Vec<(usize, usize)> {
    let mut out: Vec<(usize, usize)> = Vec::new();
    for &f in frames {
        match out.last_mut() {
            Some((start, len)) if *start + *len == f => *len += 1,
            _ => out.push((f, 1)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::BitstreamBuilder;

    fn sample(frames: usize, seed: u64) -> Bitstream {
        let mut data = FrameData::new(frames);
        let mut x = seed | 1;
        for b in data.as_mut_bytes() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *b = x as u8;
        }
        BitstreamBuilder::new(data).build()
    }

    #[test]
    fn assemble_parse_roundtrip() {
        let mut frames = FrameData::new(2);
        frames.as_mut_bytes()[3] = 0xAB;
        let runs = vec![
            PartialRun { start_frame: 5, frames: frames.clone() },
            PartialRun { start_frame: 11, frames: FrameData::new(1) },
        ];
        let stream = PartialBitstream::assemble(0x0362_D093, &runs).expect("assembles");
        let cfg = stream.parse().expect("parses");
        assert_eq!(cfg.idcode, Some(0x0362_D093));
        assert!(cfg.crc_checked);
        assert_eq!(cfg.runs, runs);
        assert_eq!(cfg.frames_written(), 3);
    }

    #[test]
    fn corrupted_stream_is_refused() {
        let runs = vec![PartialRun { start_frame: 0, frames: FrameData::new(1) }];
        let stream = PartialBitstream::assemble(1, &runs).expect("assembles");
        let mut bad = stream.as_bytes().to_vec();
        // Flip a payload bit: the partial CRC must catch it.
        let at = bad.len() - 40;
        bad[at] ^= 0x10;
        assert!(matches!(
            PartialBitstream::from_bytes(bad).parse(),
            Err(ParsePartialError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn fdri_without_far_is_refused() {
        // A full builder stream writes FAR=0 before FDRI, so it parses
        // as one run at frame 0; stripping the FAR write must be
        // refused. Easier: hand-build words.
        let mut words = vec![SYNC_WORD, NOP];
        words.push(Packet::type1_header(RegisterAddress::Cmd, 1).unwrap());
        words.push(CommandCode::Rcrc as u32);
        words.push(Packet::type1_header(RegisterAddress::Fdri, 0).unwrap());
        words.push(Packet::type2_header(FRAME_WORDS).unwrap());
        words.extend(std::iter::repeat_n(0x1111_1111u32, FRAME_WORDS));
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_be_bytes()).collect();
        assert_eq!(
            PartialBitstream::from_bytes(bytes).parse(),
            Err(ParsePartialError::FdriBeforeFar)
        );
    }

    #[test]
    fn ragged_run_is_refused() {
        let mut words = vec![SYNC_WORD, NOP];
        words.push(Packet::type1_header(RegisterAddress::Far, 1).unwrap());
        words.push(3);
        words.push(Packet::type1_header(RegisterAddress::Fdri, 0).unwrap());
        words.push(Packet::type2_header(FRAME_WORDS / 2).unwrap());
        words.extend(std::iter::repeat_n(0u32, FRAME_WORDS / 2));
        // Zero words are skipped by the parser, so pad with non-zero.
        let words: Vec<u32> =
            words.into_iter().map(|w| if w == 0 { 0x2222_2222 } else { w }).collect();
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_be_bytes()).collect();
        assert!(matches!(
            PartialBitstream::from_bytes(bytes).parse(),
            Err(ParsePartialError::RaggedRun { .. })
        ));
    }

    #[test]
    fn forge_ships_only_touched_frames() {
        let golden = sample(16, 0xFEED);
        let mut forge = PartialForge::new(&golden).expect("analyzes");
        let payload = golden.fdri_data_range().expect("payload");

        // Edit two bytes inside frame 7 and repair the CRC.
        let mut cand = golden.clone();
        cand.as_mut_bytes()[payload.start + 7 * FRAME_BYTES + 10] ^= 0xA5;
        cand.as_mut_bytes()[payload.start + 7 * FRAME_BYTES + 200] ^= 0x0F;
        assert!(cand.recompute_crc());

        let d = forge.delta(&golden, &cand).expect("expressible");
        assert_eq!(d.frames_written, 1);
        assert!(d.stream.len() < golden.len() / 4, "a delta is much smaller than a full load");
        let cfg = d.stream.parse().expect("parses");
        assert!(cfg.crc_checked);
        assert_eq!(cfg.runs.len(), 1);
        assert_eq!(cfg.runs[0].start_frame, 7);
        assert_eq!(
            cfg.runs[0].frames.as_bytes(),
            &cand.as_bytes()[payload.start + 7 * FRAME_BYTES..payload.start + 8 * FRAME_BYTES]
        );
    }

    #[test]
    fn template_reforge_is_byte_identical_to_fresh_assembly() {
        let golden = sample(8, 0x0DD);
        let payload = golden.fdri_data_range().expect("payload");
        let mut forge = PartialForge::new(&golden).expect("analyzes");

        // Two different edits with the same run shape (frame 3).
        let edit = |mask: u8| {
            let mut cand = golden.clone();
            cand.as_mut_bytes()[payload.start + 3 * FRAME_BYTES + 42] ^= mask;
            assert!(cand.recompute_crc());
            cand
        };
        let a = edit(0x11);
        let b = edit(0x2C);
        let first = forge.delta(&golden, &a).expect("expressible");
        let second = forge.delta(&golden, &b).expect("expressible (template path)");
        // An un-cached forge of the same delta must agree byte for
        // byte with the template fast path.
        let mut fresh_forge = PartialForge::new(&golden).expect("analyzes");
        let fresh = fresh_forge.delta(&golden, &b).expect("expressible");
        assert_eq!(second.stream.as_bytes(), fresh.stream.as_bytes());
        assert_ne!(first.stream.as_bytes(), second.stream.as_bytes());
        assert!(second.stream.parse().expect("parses").crc_checked);
        // A third reforge returning to the first edit must reproduce
        // the originally-assembled stream exactly (templates must not
        // drift as they are reused).
        let third = forge.delta(&golden, &a).expect("expressible (template path)");
        assert_eq!(third.stream.as_bytes(), first.stream.as_bytes());
        assert!(third.stream.parse().expect("parses").crc_checked);
    }

    #[test]
    fn structural_or_invalid_crc_candidates_fall_back() {
        let golden = sample(6, 0xBEE);
        let payload = golden.fdri_data_range().expect("payload");
        let mut forge = PartialForge::new(&golden).expect("analyzes");

        // A candidate with a broken stored CRC: the device must still
        // refuse it, so it cannot ship as a (valid) delta.
        let mut bad_crc = golden.clone();
        bad_crc.as_mut_bytes()[payload.start + 9] ^= 0x80;
        assert!(forge.delta(&golden, &bad_crc).is_none());

        // A CRC-disabled candidate differs structurally (zeroed CRC
        // packet) — not expressible.
        let mut disabled = golden.clone();
        disabled.as_mut_bytes()[payload.start + 9] ^= 0x80;
        disabled.disable_crc();
        assert!(forge.delta(&golden, &disabled).is_none());

        // A different length is never expressible.
        let longer = Bitstream::from_bytes([golden.as_bytes(), &[0u8; 4][..]].concat());
        assert!(forge.delta(&golden, &longer).is_none());
    }

    #[test]
    fn rollback_rides_the_next_delta() {
        // image holds edit A; the next candidate has only edit B: the
        // delta must cover both A's frame (reverting it) and B's.
        let golden = sample(16, 0x1CE);
        let payload = golden.fdri_data_range().expect("payload");
        let mut forge = PartialForge::new(&golden).expect("analyzes");
        let with_edit = |frame: usize| {
            let mut cand = golden.clone();
            cand.as_mut_bytes()[payload.start + frame * FRAME_BYTES + 5] ^= 0xFF;
            assert!(cand.recompute_crc());
            cand
        };
        let a = with_edit(2);
        let b = with_edit(12);
        let d = forge.delta(&a, &b).expect("expressible");
        assert_eq!(d.frames_written, 2, "revert frame 2 and write frame 12");
        let cfg = d.stream.parse().expect("parses");
        let starts: Vec<usize> = cfg.runs.iter().map(|r| r.start_frame).collect();
        assert_eq!(starts, vec![2, 12]);
        // The reverting run carries the *golden* frame bytes.
        assert_eq!(
            cfg.runs[0].frames.as_bytes(),
            &golden.as_bytes()[payload.start + 2 * FRAME_BYTES..payload.start + 3 * FRAME_BYTES]
        );
    }

    #[test]
    fn parse_is_total_on_garbage() {
        for seed in 0u8..16 {
            let bytes: Vec<u8> =
                (0..256).map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed)).collect();
            let _ = PartialBitstream::from_bytes(bytes).parse();
        }
        let _ = PartialBitstream::from_bytes(Vec::new()).parse();
    }
}
