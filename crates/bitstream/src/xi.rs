//! The LUT bitstream permutation ξ of Xilinx 7-series devices
//! (Table I of the paper).
//!
//! The 64-bit truth table `F` of a 6-input LUT is not stored
//! contiguously: each bit `F[i]` (where `i` is the input assignment
//! with `a1` as bit 0, matching Table I's row order) lands at position
//! `ξ(i)` of the permuted vector `B`, which is then split into four
//! 16-bit sub-vectors.

/// Table I, transcribed verbatim: `XI_TABLE[i]` is the index of
/// `B` that receives `F[i]`.
pub const XI_TABLE: [u8; 64] = [
    63, 47, 62, 46, 61, 45, 60, 44, 15, 31, 14, 30, 13, 29, 12, 28, //
    59, 43, 58, 42, 57, 41, 56, 40, 11, 27, 10, 26, 9, 25, 8, 24, //
    55, 39, 54, 38, 53, 37, 52, 36, 7, 23, 6, 22, 5, 21, 4, 20, //
    51, 35, 50, 34, 49, 33, 48, 32, 3, 19, 2, 18, 1, 17, 0, 16,
];

/// The closed form of ξ: starting from all-ones, each input bit of
/// the assignment toggles a fixed mask
/// (`a1 → 0x10`, `a2 → 0x01`, `a3 → 0x02`, `a4 → 0x30`, `a5 → 0x04`,
/// `a6 → 0x08`). A unit test pins this against [`XI_TABLE`].
#[must_use]
pub fn xi(i: u8) -> u8 {
    const MASKS: [u8; 6] = [0x10, 0x01, 0x02, 0x30, 0x04, 0x08];
    let mut b = 0x3f;
    for (bit, mask) in MASKS.iter().enumerate() {
        if (i >> bit) & 1 == 1 {
            b ^= mask;
        }
    }
    b
}

/// Applies ξ to a full 64-bit truth table: bit `i` of `f` moves to
/// bit `ξ(i)` of the result.
///
/// # Example
///
/// ```
/// use bitstream::xi;
///
/// // Table I, first row: F[0] lands at B[63].
/// assert_eq!(xi::permute(1), 1 << 63);
/// assert_eq!(xi::unpermute(xi::permute(0xDEADBEEF)), 0xDEADBEEF);
/// ```
#[must_use]
pub fn permute(f: u64) -> u64 {
    let mut b = 0u64;
    for i in 0..64u8 {
        if (f >> i) & 1 == 1 {
            b |= 1 << XI_TABLE[i as usize];
        }
    }
    b
}

/// Inverts ξ: recovers the truth table from the permuted vector.
#[must_use]
pub fn unpermute(b: u64) -> u64 {
    let mut f = 0u64;
    for i in 0..64u8 {
        if (b >> XI_TABLE[i as usize]) & 1 == 1 {
            f |= 1 << i;
        }
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_matches_table() {
        for i in 0..64u8 {
            assert_eq!(xi(i), XI_TABLE[i as usize], "xi({i})");
        }
    }

    #[test]
    fn table_is_a_permutation() {
        let mut seen = [false; 64];
        for &b in &XI_TABLE {
            assert!(!seen[b as usize], "duplicate target {b}");
            seen[b as usize] = true;
        }
    }

    #[test]
    fn permute_roundtrip() {
        let mut x: u64 = 0x0123_4567_89AB_CDEF;
        for _ in 0..100 {
            assert_eq!(unpermute(permute(x)), x);
            assert_eq!(permute(unpermute(x)), x);
            x = x.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(1);
        }
    }

    #[test]
    fn spot_checks_from_paper_table() {
        // F[0] → B[63], F[9] → B[31], F[40] → B[7], F[63] → B[16].
        assert_eq!(permute(1 << 0) >> 63 & 1, 1);
        assert_eq!(permute(1 << 9) >> 31 & 1, 1);
        assert_eq!(permute(1 << 40) >> 7 & 1, 1);
        assert_eq!(permute(1 << 63) >> 16 & 1, 1);
    }

    #[test]
    fn permute_is_linear_in_xor() {
        let a = 0xDEAD_BEEF_0BAD_F00Du64;
        let b = 0x1234_5678_9ABC_DEF0u64;
        assert_eq!(permute(a ^ b), permute(a) ^ permute(b));
    }
}
