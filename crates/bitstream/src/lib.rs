//! A Xilinx-7-series-style FPGA bitstream model.
//!
//! Implements everything the paper documents about the format under
//! attack (Section V):
//!
//! * configuration packets (Type 1 / Type 2), the `FDRI` register,
//!   frames of 101 32-bit words ([`packet`], [`frame`]);
//! * the LUT-content permutation ξ of Table I ([`xi`]) and the
//!   partitioning of a 64-bit LUT INIT into `r = 4` 16-bit
//!   sub-vectors placed at a fixed byte offset `d` from each other,
//!   in SLICEL or SLICEM order ([`codec`]);
//! * the 32-bit configuration CRC: computation, verification,
//!   re-computation after modification, and the disable-by-zeroing
//!   trick of Section V-B ([`crc`], [`image`]);
//! * bitstream assembly and parsing ([`image`]);
//! * the Fig. 1 security container: AES-256-CBC encryption over an
//!   HMAC-SHA-256-authenticated payload with the authentication key
//!   stored *inside* the encrypted stream ([`secure`]).
//!
//! The cryptographic primitives in [`secure`] are implemented in-repo
//! (they are part of the modelled system, and an attack-tooling
//! repository benefits from an auditable supply chain).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod crc;
pub mod delta;
pub mod frame;
pub mod image;
pub mod packet;
pub mod partial;
pub mod secure;
pub mod xi;

pub use codec::{LutLocation, SubVectorOrder};
pub use delta::DeltaCrc;
pub use frame::{FrameData, FRAME_BYTES, FRAME_WORDS};
pub use image::{Bitstream, BitstreamBuilder, ConfigData, ParseBitstreamError};
pub use packet::{CommandCode, Packet, PacketEncodeError, RegisterAddress, SYNC_WORD};
pub use partial::{
    ParsePartialError, PartialBitstream, PartialConfig, PartialDelta, PartialForge, PartialRun,
};
pub use secure::patch::{
    BodyEdit, PatchError, PatchOracle, PatchStats, BODY_OFFSET, MIDSTATE_STRIDE,
};
pub use secure::{CbcError, OpenSecureError, ScaOracle, SecureBitstream};
