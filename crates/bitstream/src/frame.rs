//! Configuration frames.
//!
//! In 7-series devices the smallest addressable unit of configuration
//! memory is a *frame* of 101 32-bit words (Section V-A of the
//! paper). The `FDRI` payload is a sequence of whole frames.

/// Words per frame.
pub const FRAME_WORDS: usize = 101;

/// Bytes per frame.
pub const FRAME_BYTES: usize = FRAME_WORDS * 4;

/// A flat view over the FDRI payload as frames.
///
/// # Example
///
/// ```
/// use bitstream::FrameData;
///
/// let mut frames = FrameData::new(4);
/// frames.as_mut_bytes()[5] = 0xAB;
/// assert_eq!(frames.frame(0)[5], 0xAB);
/// assert_eq!(frames.frame_count(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameData {
    bytes: Vec<u8>,
}

impl FrameData {
    /// Allocates `frames` zeroed frames.
    #[must_use]
    pub fn new(frames: usize) -> Self {
        Self { bytes: vec![0u8; frames * FRAME_BYTES] }
    }

    /// Wraps an existing payload.
    ///
    /// # Panics
    ///
    /// Panics if the length is not a multiple of the frame size.
    #[must_use]
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        assert_eq!(bytes.len() % FRAME_BYTES, 0, "payload must be whole frames");
        Self { bytes }
    }

    /// Number of frames.
    #[must_use]
    pub fn frame_count(&self) -> usize {
        self.bytes.len() / FRAME_BYTES
    }

    /// The whole payload.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Mutable access to the whole payload.
    pub fn as_mut_bytes(&mut self) -> &mut [u8] {
        &mut self.bytes
    }

    /// Consumes the view, returning the payload.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Frame `i` as a byte slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn frame(&self, i: usize) -> &[u8] {
        &self.bytes[i * FRAME_BYTES..(i + 1) * FRAME_BYTES]
    }

    /// Frame `i` as a mutable byte slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn frame_mut(&mut self, i: usize) -> &mut [u8] {
        &mut self.bytes[i * FRAME_BYTES..(i + 1) * FRAME_BYTES]
    }

    /// The payload as big-endian configuration words.
    #[must_use]
    pub fn to_words(&self) -> Vec<u32> {
        self.bytes
            .chunks_exact(4)
            .map(|c| u32::from_be_bytes(c.try_into().expect("chunk of 4")))
            .collect()
    }

    /// Builds frame data from big-endian configuration words.
    ///
    /// # Panics
    ///
    /// Panics if the word count is not a multiple of [`FRAME_WORDS`].
    #[must_use]
    pub fn from_words(words: &[u32]) -> Self {
        assert_eq!(words.len() % FRAME_WORDS, 0, "payload must be whole frames");
        let mut bytes = Vec::with_capacity(words.len() * 4);
        for w in words {
            bytes.extend_from_slice(&w.to_be_bytes());
        }
        Self { bytes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_roundtrip() {
        let mut f = FrameData::new(2);
        f.as_mut_bytes()[0..4].copy_from_slice(&[0x30, 0x00, 0x40, 0x00]);
        let words = f.to_words();
        assert_eq!(words[0], 0x30004000);
        assert_eq!(FrameData::from_words(&words), f);
    }

    #[test]
    #[should_panic(expected = "whole frames")]
    fn ragged_payload_rejected() {
        let _ = FrameData::from_bytes(vec![0u8; FRAME_BYTES + 1]);
    }

    #[test]
    fn frame_indexing() {
        let mut f = FrameData::new(3);
        f.frame_mut(2)[0] = 0x55;
        assert_eq!(f.as_bytes()[2 * FRAME_BYTES], 0x55);
        assert_eq!(f.frame(1), &[0u8; FRAME_BYTES][..]);
    }
}
