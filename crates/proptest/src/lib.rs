//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no network access, so the real `proptest`
//! cannot be fetched. This crate re-implements the subset of the 1.x
//! API the workspace's property tests use:
//!
//! * the [`proptest!`] macro with `#![proptest_config(..)]` and
//!   `arg in strategy` bindings;
//! * [`strategy::Strategy`] with `prop_map` / `prop_perturb`,
//!   [`strategy::Just`], integer-range strategies, tuple strategies,
//!   and [`prop_oneof!`];
//! * [`arbitrary::any`] for the primitive types and arrays;
//! * [`collection::vec`];
//! * the `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Unlike the real crate it performs no shrinking: a failing case
//! reports its case index and RNG seed, which reproduce the run
//! (generation is deterministic per test name and case index).
//! `*.proptest-regressions` files are ignored.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod test_runner {
    //! Deterministic case generation and failure plumbing.

    /// The failure carried out of a test case by `prop_assert!`-style
    /// macros.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Builds a failure with a message.
        #[must_use]
        pub fn fail(msg: String) -> Self {
            Self(msg)
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// A test-case body's result.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Per-test configuration (`#![proptest_config(..)]`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases to run.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases per test.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// The per-case random source handed to strategies
    /// (SplitMix64-based; deterministic in its seed).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded from a test name and case index.
        #[must_use]
        pub fn for_case(test_name: &str, case: u32) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut h = 0xCBF2_9CE4_8422_2325u64;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self { state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)) }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// The next 32 random bits.
        pub fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        /// A fresh generator split off this one (used by
        /// `prop_perturb`, which takes the RNG by value).
        #[must_use]
        pub fn fork(&mut self) -> Self {
            Self { state: self.next_u64() }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Maps generated values through `f` with access to a fresh
        /// RNG (the real crate's signature: the RNG is passed by
        /// value).
        fn prop_perturb<U, F>(self, f: F) -> Perturb<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value, TestRng) -> U,
        {
            Perturb { inner: self, f }
        }

        /// Type-erases the strategy (used by [`prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe generation, for [`BoxedStrategy`].
    trait DynStrategy {
        type Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn DynStrategy<Value = V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate_dyn(rng)
        }
    }

    /// A uniform choice between equally-weighted boxed strategies.
    pub struct Union<V>(Vec<BoxedStrategy<V>>);

    impl<V> Union<V> {
        /// Builds the union; panics if `options` is empty.
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Self(options)
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = (rng.next_u64() % self.0.len() as u64) as usize;
            self.0[i].generate(rng)
        }
    }

    /// Always generates a clone of its payload.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_perturb`].
    pub struct Perturb<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value, TestRng) -> U> Strategy for Perturb<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            let v = self.inner.generate(rng);
            (self.f)(v, rng.fork())
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + ((rng.next_u64() % span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + ((rng.next_u64() % (span + 1)) as $t)
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    //! `any::<T>()` — the canonical strategy for a type.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value from the full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> [T; N] {
            core::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A `Vec` strategy: length drawn from `size`, elements from
    /// `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// Generates vectors with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything a property test needs in scope.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The real crate's prelude re-exports the crate itself as
    /// `prop`, enabling `prop::collection::vec(..)`.
    pub use crate as prop;
}

/// Runs property tests: takes an optional
/// `#![proptest_config(expr)]` header followed by `#[test]` functions
/// whose arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let strategies = ($($strat,)+);
                let test_name = concat!(module_path!(), "::", stringify!($name));
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(test_name, case);
                    let ($($arg,)+) =
                        $crate::strategy::Strategy::generate(&strategies, &mut rng);
                    let outcome: $crate::test_runner::TestCaseResult =
                        (|| { $body Ok(()) })();
                    if let Err(e) = outcome {
                        panic!(
                            "proptest case {case}/{total} of {name} failed: {e}",
                            total = config.cases,
                            name = test_name,
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::Config::default()) $($rest)*
        );
    };
}

/// `assert!` that reports a test-case failure instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that reports a test-case failure instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
                stringify!($a), stringify!($b), a, b, format!($($fmt)*)
            )));
        }
    }};
}

/// `assert_ne!` that reports a test-case failure instead of panicking.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Skips the current case when its inputs don't satisfy a
/// precondition (no global rejection budget: the case just passes).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}

/// A uniform choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat),)+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u8..9, y in 1usize..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn tuples_and_collections(v in prop::collection::vec((0u8..4, any::<bool>()), 0..10)) {
            prop_assert!(v.len() < 10);
            for (a, _) in &v {
                prop_assert!(*a < 4);
            }
        }

        #[test]
        fn map_and_perturb(x in (0u8..5).prop_map(u32::from),
                           p in Just(()).prop_perturb(|(), mut rng| rng.next_u32() % 3)) {
            prop_assert!(x < 5);
            prop_assert!(p < 3);
        }

        #[test]
        fn oneof_picks_from_options(o in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(o == 1 || o == 2);
        }

        #[test]
        fn assume_skips(x in any::<u8>()) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        let strat = (0usize..100, crate::arbitrary::any::<u64>());
        let mut a = crate::test_runner::TestRng::for_case("t", 3);
        let mut b = crate::test_runner::TestRng::for_case("t", 3);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        let mut c = crate::test_runner::TestRng::for_case("t", 4);
        assert_ne!(strat.generate(&mut a), strat.generate(&mut c));
    }
}
