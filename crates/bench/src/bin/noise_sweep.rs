//! Noise sweep: the full key-recovery attack across a grid of fault
//! rates, with fixed seeds — the robustness experiment behind the
//! EXPERIMENTS.md table.
//!
//! ```text
//! noise-sweep [--smoke] [--seed N] [--votes N] [--dir DIR]
//!             [--journal PATH] [--trace PATH] [--encrypted]
//! ```
//!
//! Each cell wraps the victim in [`UnreliableBoard`] at a (per-bit
//! keystream glitch, transient load failure) rate pair, runs the
//! attack through the resilience layer, and reports whether the
//! Test Set 1 key was recovered plus the physical query cost.
//! `--smoke` runs a single noisy cell (for CI). With `--encrypted`
//! every cell runs over the Fig. 1 secure container: candidate loads
//! go through the seekable CBC patch oracle and the device-side
//! verifier before the noisy board sees them — the recovered keys and
//! query traces must match the plaintext sweep cell for cell.
//!
//! The grid is built by the validating [`SweepGrid`] builder and each
//! cell runs through the session facade
//! ([`SessionSpec::run_against`]) — the same engine behind `bitmod
//! attack` and the fleet workers. The grid runs under the
//! [`Campaign`] engine: each cell is panic-isolated, and with
//! `--journal` completed cells are persisted (write-ahead, atomic) so
//! a killed sweep resumes at the first incomplete cell. `--dir`
//! resolves both the campaign journal and the NDJSON trace inside one
//! atomically-created session directory ([`OutputPaths`]); mixing it
//! with an explicit `--journal`/`--trace` path is a typed error, not
//! a half-created session.

use std::path::PathBuf;
use std::process::ExitCode;

use bitmod::campaign::{Campaign, CellOutcome, CellStats, CellSupervisor};
use bitmod::fleet::{OutputPaths, ResumePolicy, SessionIo, SessionOutcome, SweepCell, SweepGrid};
use bitmod::telemetry::names;
use bitmod::Telemetry;
use fpga_sim::UnreliableBoard;
use snow3g::vectors::TEST_SET_1_KEY;

fn run_cell(
    cell: &SweepCell,
    supervisor: &CellSupervisor,
    cell_journal: Option<PathBuf>,
) -> CellOutcome {
    let board = UnreliableBoard::new(bench::test_board(false), cell.spec.fault_profile());
    let golden = board.extract_bitstream();
    // One cancel token and one recorder span both layers: the
    // campaign's supervisor and the facade's supervised oracle.
    let telemetry = supervisor.telemetry();
    let io = SessionIo {
        journal: cell_journal.clone(),
        resume: ResumePolicy::IfJournalExists,
        telemetry: telemetry.clone(),
        cancel: supervisor.cancel_token(),
        expected_key: Some(TEST_SET_1_KEY),
    };
    let report = cell.spec.run_harnessed(&board, golden, &io);
    bitmod::fleet::session::record_board_faults(&telemetry, &board);
    match report {
        Ok(report) => match report.outcome {
            SessionOutcome::Recovered(stats) => CellOutcome::Recovered(stats),
            // The typed failure is the finding: it separates "voting
            // overwhelmed" (attack-layer mismatch) from "board never
            // answered" (retries exhausted) from "budget cut". A
            // budget cut additionally names the checkpoint journal a
            // bigger-budget rerun of the same sweep resumes from.
            SessionOutcome::Exhausted { stats, summary } => {
                let note = match &cell_journal {
                    Some(path) => format!("{summary}; resume journal: {}", path.display()),
                    None => summary,
                };
                CellOutcome::Failed { stats, note }
            }
            SessionOutcome::Failed { stats, note } => CellOutcome::Failed { stats, note },
            SessionOutcome::Cancelled => CellOutcome::Cancelled,
        },
        Err(e) => CellOutcome::Failed {
            stats: bitmod::fleet::session::stats_from(&telemetry),
            note: e.to_string(),
        },
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let encrypted = args.iter().any(|a| a == "--encrypted");
    let mut seed = 7u64;
    let mut votes = 5u32;
    let mut dir: Option<PathBuf> = None;
    let mut journal: Option<PathBuf> = None;
    let mut trace: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => match it.next().map(|v| v.parse()) {
                Some(Ok(v)) => seed = v,
                _ => {
                    eprintln!("--seed needs an integer");
                    return ExitCode::FAILURE;
                }
            },
            "--votes" => match it.next().map(|v| v.parse()) {
                Some(Ok(v)) => votes = v,
                _ => {
                    eprintln!("--votes needs an integer");
                    return ExitCode::FAILURE;
                }
            },
            "--dir" => match it.next() {
                Some(path) => dir = Some(path.into()),
                None => {
                    eprintln!("--dir needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--journal" => match it.next() {
                Some(path) => journal = Some(path.into()),
                None => {
                    eprintln!("--journal needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--trace" => match it.next() {
                Some(path) => trace = Some(path.into()),
                None => {
                    eprintln!("--trace needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--smoke" | "--encrypted" => {}
            other => {
                eprintln!(
                    "unknown option '{other}'; usage: \
                     noise-sweep [--smoke] [--seed N] [--votes N] [--dir DIR] \
                     [--journal PATH] [--trace PATH] [--encrypted]"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    // One resolution for both output paths: `--dir` derives them from
    // an atomically-created session directory, and conflicts (or an
    // uncreatable directory) fail typed and up front — not halfway
    // through a multi-minute sweep.
    let paths = match OutputPaths::resolve(dir.as_deref(), journal, trace) {
        Ok(paths) => paths,
        Err(e) => {
            eprintln!("noise-sweep: {e}");
            return ExitCode::FAILURE;
        }
    };
    let telemetry = match &paths.trace {
        Some(path) => match Telemetry::to_path(path) {
            Ok(t) => {
                println!("tracing to {}", path.display());
                t
            }
            Err(e) => {
                eprintln!("noise-sweep: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Telemetry::off(),
    };

    let mut builder = SweepGrid::builder().seed(seed).votes(votes).encrypted(encrypted);
    if smoke {
        // One genuinely noisy cell at the acceptance floor.
        builder = builder.smoke();
    }
    let grid = match builder.build() {
        Ok(grid) => grid,
        Err(e) => {
            eprintln!("noise-sweep: invalid sweep grid: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Per-cell checkpoint journals live next to the campaign journal:
    // a budget-exhausted cell keeps its attack journal on disk and
    // names it in the sweep table, so a bigger-budget rerun resumes
    // the cell mid-phase instead of restarting it.
    let cell_dir: Option<PathBuf> = paths.journal.as_ref().map(|j| j.with_extension("cells"));
    if let Some(dir) = &cell_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("noise-sweep: cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }

    let mut campaign = Campaign::new().with_telemetry(telemetry.clone());
    if let Some(path) = &paths.journal {
        campaign = campaign.with_journal(path);
    }
    let report = match campaign.run(&grid.labels(), |i, supervisor| {
        let journal = cell_dir.as_ref().map(|d| d.join(format!("cell-{i:02}.journal")));
        run_cell(&grid.cells()[i], supervisor, journal)
    }) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("noise-sweep: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "noise sweep: seed {seed}, {votes} votes, {} cell(s){}",
        grid.len(),
        if encrypted { ", encrypted container" } else { "" }
    );
    if report.resumed_count() > 0 {
        println!("resumed: {} cell(s) replayed from the journal", report.resumed_count());
    }
    println!("glitch/bit | load-fail | key | physical | logical | retries | backoff(vms)");
    // Cells outside the envelope failing is a *finding*, not a
    // harness error; only the acceptance-floor cell (1% glitch, 10%
    // load failure) gates the exit code.
    let mut floor_ok = true;
    for (cell, record) in grid.cells().iter().zip(&report.cells) {
        let (recovered, stats, note) = match &record.outcome {
            CellOutcome::Recovered(stats) => (true, stats.clone(), String::new()),
            CellOutcome::Failed { stats, note } => (false, stats.clone(), note.clone()),
            CellOutcome::Panicked { message } => {
                (false, CellStats::default(), format!("panic: {message}"))
            }
            CellOutcome::Cancelled => (false, CellStats::default(), "cancelled".to_string()),
        };
        if (cell.glitch, cell.load_fail) == (0.01, 0.10) {
            floor_ok = recovered;
        }
        println!(
            "{:>9.2}% | {:>8.1}% | {} | {:>8} | {:>7} | {:>7} | {:>12}{}{}",
            cell.glitch * 100.0,
            cell.load_fail * 100.0,
            if recovered { "yes" } else { "NO " },
            stats.physical,
            stats.logical,
            stats.retries,
            stats.backoff_ms,
            if note.is_empty() { "" } else { "  # " },
            note
        );
    }

    // The campaign rollup: every live cell's metric bag merged with
    // the associative [`bitmod::Metrics::merge`].
    let totals = &report.metrics;
    if !totals.is_empty() {
        println!(
            "campaign totals: {} physical loads, {} logical queries, {} retries, \
             {} board faults injected",
            totals.counter(names::ORACLE_LOADS),
            totals.counter(names::ORACLE_QUERIES),
            totals.counter(names::ORACLE_RETRIES),
            totals.counter(names::BOARD_INJECTED),
        );
    }
    if telemetry.is_enabled() {
        // A sink that failed mid-sweep surfaces here, typed, and
        // fails the run loudly rather than shipping a silently
        // truncated trace.
        if let Err(e) = telemetry.finish() {
            eprintln!("noise-sweep: {e}");
            return ExitCode::FAILURE;
        }
        print!("{}", telemetry.summary_table());
    }

    if floor_ok {
        ExitCode::SUCCESS
    } else {
        eprintln!("noise-sweep: the acceptance-floor cell (1% glitch, 10% load-fail) failed");
        ExitCode::FAILURE
    }
}
