//! Noise sweep: the full key-recovery attack across a grid of fault
//! rates, with fixed seeds — the robustness experiment behind the
//! EXPERIMENTS.md table.
//!
//! ```text
//! noise-sweep [--smoke] [--seed N] [--votes N]
//! ```
//!
//! Each cell wraps the victim in [`UnreliableBoard`] at a (per-bit
//! keystream glitch, transient load failure) rate pair, runs the
//! attack through the resilience layer, and reports whether the
//! Test Set 1 key was recovered plus the physical query cost.
//! `--smoke` runs a single noisy cell (for CI).

use std::process::ExitCode;

use bitmod::resilient::ResilienceConfig;
use bitmod::Attack;
use fpga_sim::{FaultProfile, UnreliableBoard};
use snow3g::vectors::TEST_SET_1_KEY;

struct Cell {
    glitch: f64,
    load_fail: f64,
    recovered: bool,
    physical: usize,
    logical: u64,
    retries: u64,
    backoff_ms: u64,
    note: String,
}

fn run_cell(glitch: f64, load_fail: f64, seed: u64, votes: u32) -> Cell {
    let profile = FaultProfile::flaky(seed).with_bit_glitch(glitch).with_load_failure(load_fail);
    let board = UnreliableBoard::new(bench::test_board(false), profile);
    let golden = board.extract_bitstream();
    let config = ResilienceConfig::noisy(seed ^ 0x5EED).with_votes(votes);
    let outcome = Attack::with_resilience(&board, golden, bitstream::FRAME_BYTES, config)
        .and_then(Attack::run);
    match outcome {
        Ok(report) => Cell {
            glitch,
            load_fail,
            recovered: report.recovered.key == TEST_SET_1_KEY,
            physical: report.oracle_loads,
            logical: report.resilience.queries,
            retries: report.resilience.transient_errors,
            backoff_ms: report.resilience.backoff_ms,
            note: String::new(),
        },
        Err(e) => Cell {
            glitch,
            load_fail,
            recovered: false,
            physical: 0,
            logical: 0,
            retries: 0,
            backoff_ms: 0,
            // The typed failure is the finding: it separates "voting
            // overwhelmed" (attack-layer mismatch) from "board never
            // answered" (retries exhausted).
            note: e.to_string(),
        },
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut seed = 7u64;
    let mut votes = 5u32;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => match it.next().map(|v| v.parse()) {
                Some(Ok(v)) => seed = v,
                _ => {
                    eprintln!("--seed needs an integer");
                    return ExitCode::FAILURE;
                }
            },
            "--votes" => match it.next().map(|v| v.parse()) {
                Some(Ok(v)) => votes = v,
                _ => {
                    eprintln!("--votes needs an integer");
                    return ExitCode::FAILURE;
                }
            },
            "--smoke" => {}
            other => {
                eprintln!(
                    "unknown option '{other}'; usage: noise-sweep [--smoke] [--seed N] [--votes N]"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    let grid: Vec<(f64, f64)> = if smoke {
        // One genuinely noisy cell at the acceptance floor.
        vec![(0.01, 0.10)]
    } else {
        let glitches = [0.0, 0.005, 0.01, 0.02];
        let load_fails = [0.0, 0.10, 0.25];
        glitches.iter().flat_map(|&g| load_fails.iter().map(move |&l| (g, l))).collect()
    };

    println!("noise sweep: seed {seed}, {votes} votes, {} cell(s)", grid.len());
    println!("glitch/bit | load-fail | key | physical | logical | retries | backoff(vms)");
    // Cells outside the envelope failing is a *finding*, not a
    // harness error; only the acceptance-floor cell (1% glitch, 10%
    // load failure) gates the exit code.
    let mut floor_ok = true;
    for (glitch, load_fail) in grid {
        let cell = run_cell(glitch, load_fail, seed, votes);
        if (glitch, load_fail) == (0.01, 0.10) {
            floor_ok = cell.recovered;
        }
        println!(
            "{:>9.2}% | {:>8.1}% | {} | {:>8} | {:>7} | {:>7} | {:>12}{}{}",
            cell.glitch * 100.0,
            cell.load_fail * 100.0,
            if cell.recovered { "yes" } else { "NO " },
            cell.physical,
            cell.logical,
            cell.retries,
            cell.backoff_ms,
            if cell.note.is_empty() { "" } else { "  # " },
            cell.note
        );
    }
    if floor_ok {
        ExitCode::SUCCESS
    } else {
        eprintln!("noise-sweep: the acceptance-floor cell (1% glitch, 10% load-fail) failed");
        ExitCode::FAILURE
    }
}
