//! Noise sweep: the full key-recovery attack across a grid of fault
//! rates, with fixed seeds — the robustness experiment behind the
//! EXPERIMENTS.md table.
//!
//! ```text
//! noise-sweep [--smoke] [--seed N] [--votes N] [--journal PATH]
//!             [--trace PATH]
//! ```
//!
//! Each cell wraps the victim in [`UnreliableBoard`] at a (per-bit
//! keystream glitch, transient load failure) rate pair, runs the
//! attack through the resilience layer, and reports whether the
//! Test Set 1 key was recovered plus the physical query cost.
//! `--smoke` runs a single noisy cell (for CI).
//!
//! The grid runs under the [`Campaign`] engine: each cell is panic-
//! isolated, and with `--journal` completed cells are persisted
//! (write-ahead, atomic) so a killed sweep resumes at the first
//! incomplete cell. Every cell's effort numbers are read back from
//! the telemetry recorder the campaign attaches to it — the printed
//! table *is* the telemetry rollup — and `--trace` streams the full
//! NDJSON event feed (per-cell metric bags included) to a file.

use std::process::ExitCode;

use bitmod::campaign::{Campaign, CellOutcome, CellStats, CellSupervisor};
use bitmod::resilient::ResilienceConfig;
use bitmod::telemetry::names;
use bitmod::{Attack, Telemetry};
use fpga_sim::{FaultProfile, UnreliableBoard};
use snow3g::vectors::TEST_SET_1_KEY;

fn run_cell(
    glitch: f64,
    load_fail: f64,
    seed: u64,
    votes: u32,
    supervisor: &CellSupervisor,
) -> CellOutcome {
    let profile = FaultProfile::flaky(seed).with_bit_glitch(glitch).with_load_failure(load_fail);
    let board = UnreliableBoard::new(bench::test_board(false), profile);
    let golden = board.extract_bitstream();
    let oracle = supervisor.supervise(&board);
    let telemetry = supervisor.telemetry();
    let config = ResilienceConfig::noisy(seed ^ 0x5EED).with_votes(votes);
    let outcome =
        Attack::instrumented(&oracle, golden, bitstream::FRAME_BYTES, config, telemetry.clone())
            .and_then(Attack::run);
    let fs = board.fault_stats();
    telemetry.record_board_faults(
        fs.loads_attempted,
        fs.transient_failures,
        fs.timeouts,
        fs.truncated_reads,
        fs.bits_flipped,
    );
    // The cell's effort numbers come from the recorder, not the
    // report — so a *failed* cell still accounts for the physical
    // work it burned before giving up.
    let m = telemetry.metrics();
    let stats = CellStats {
        physical: m.counter(names::ORACLE_LOADS),
        logical: m.counter(names::ORACLE_QUERIES),
        retries: m.counter(names::ORACLE_RETRIES),
        backoff_ms: m.counter(names::ORACLE_BACKOFF_MS),
    };
    match outcome {
        Ok(report) => {
            if report.recovered.key == TEST_SET_1_KEY {
                CellOutcome::Recovered(stats)
            } else {
                CellOutcome::Failed { stats, note: String::new() }
            }
        }
        // The typed failure is the finding: it separates "voting
        // overwhelmed" (attack-layer mismatch) from "board never
        // answered" (retries exhausted).
        Err(e) => CellOutcome::Failed { stats, note: e.to_string() },
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut seed = 7u64;
    let mut votes = 5u32;
    let mut journal: Option<String> = None;
    let mut trace: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => match it.next().map(|v| v.parse()) {
                Some(Ok(v)) => seed = v,
                _ => {
                    eprintln!("--seed needs an integer");
                    return ExitCode::FAILURE;
                }
            },
            "--votes" => match it.next().map(|v| v.parse()) {
                Some(Ok(v)) => votes = v,
                _ => {
                    eprintln!("--votes needs an integer");
                    return ExitCode::FAILURE;
                }
            },
            "--journal" => match it.next() {
                Some(path) => journal = Some(path.clone()),
                None => {
                    eprintln!("--journal needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--trace" => match it.next() {
                Some(path) => trace = Some(path.clone()),
                None => {
                    eprintln!("--trace needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--smoke" => {}
            other => {
                eprintln!(
                    "unknown option '{other}'; usage: \
                     noise-sweep [--smoke] [--seed N] [--votes N] [--journal PATH] [--trace PATH]"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    // An unwritable trace path is a typed, pre-flight failure — not a
    // panic halfway through a multi-minute sweep.
    let telemetry = match &trace {
        Some(path) => match Telemetry::to_path(path) {
            Ok(t) => {
                println!("tracing to {path}");
                t
            }
            Err(e) => {
                eprintln!("noise-sweep: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Telemetry::off(),
    };

    let grid: Vec<(f64, f64)> = if smoke {
        // One genuinely noisy cell at the acceptance floor.
        vec![(0.01, 0.10)]
    } else {
        let glitches = [0.0, 0.005, 0.01, 0.02];
        let load_fails = [0.0, 0.10, 0.25];
        glitches.iter().flat_map(|&g| load_fails.iter().map(move |&l| (g, l))).collect()
    };
    // The label identifies a cell in the campaign journal, so it
    // carries everything trace-determining: rates, seed and votes.
    let labels: Vec<String> = grid
        .iter()
        .map(|(g, l)| format!("glitch={g} load_fail={l} seed={seed} votes={votes}"))
        .collect();

    let mut campaign = Campaign::new().with_telemetry(telemetry.clone());
    if let Some(path) = journal {
        campaign = campaign.with_journal(path);
    }
    let report = match campaign.run(&labels, |i, supervisor| {
        let (glitch, load_fail) = grid[i];
        run_cell(glitch, load_fail, seed, votes, supervisor)
    }) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("noise-sweep: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("noise sweep: seed {seed}, {votes} votes, {} cell(s)", grid.len());
    if report.resumed_count() > 0 {
        println!("resumed: {} cell(s) replayed from the journal", report.resumed_count());
    }
    println!("glitch/bit | load-fail | key | physical | logical | retries | backoff(vms)");
    // Cells outside the envelope failing is a *finding*, not a
    // harness error; only the acceptance-floor cell (1% glitch, 10%
    // load failure) gates the exit code.
    let mut floor_ok = true;
    for ((glitch, load_fail), record) in grid.iter().zip(&report.cells) {
        let (recovered, stats, note) = match &record.outcome {
            CellOutcome::Recovered(stats) => (true, stats.clone(), String::new()),
            CellOutcome::Failed { stats, note } => (false, stats.clone(), note.clone()),
            CellOutcome::Panicked { message } => {
                (false, CellStats::default(), format!("panic: {message}"))
            }
            CellOutcome::Cancelled => (false, CellStats::default(), "cancelled".to_string()),
        };
        if (*glitch, *load_fail) == (0.01, 0.10) {
            floor_ok = recovered;
        }
        println!(
            "{:>9.2}% | {:>8.1}% | {} | {:>8} | {:>7} | {:>7} | {:>12}{}{}",
            glitch * 100.0,
            load_fail * 100.0,
            if recovered { "yes" } else { "NO " },
            stats.physical,
            stats.logical,
            stats.retries,
            stats.backoff_ms,
            if note.is_empty() { "" } else { "  # " },
            note
        );
    }

    // The campaign rollup: every live cell's metric bag merged with
    // the associative [`bitmod::Metrics::merge`].
    let totals = &report.metrics;
    if !totals.is_empty() {
        println!(
            "campaign totals: {} physical loads, {} logical queries, {} retries, \
             {} board faults injected",
            totals.counter(names::ORACLE_LOADS),
            totals.counter(names::ORACLE_QUERIES),
            totals.counter(names::ORACLE_RETRIES),
            totals.counter(names::BOARD_INJECTED),
        );
    }
    if telemetry.is_enabled() {
        // A sink that failed mid-sweep surfaces here, typed, and
        // fails the run loudly rather than shipping a silently
        // truncated trace.
        if let Err(e) = telemetry.finish() {
            eprintln!("noise-sweep: {e}");
            return ExitCode::FAILURE;
        }
        print!("{}", telemetry.summary_table());
    }

    if floor_ok {
        ExitCode::SUCCESS
    } else {
        eprintln!("noise-sweep: the acceptance-floor cell (1% glitch, 10% load-fail) failed");
        ExitCode::FAILURE
    }
}
