//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p bench --bin paper-tables [SECTION...]
//! ```
//!
//! Sections: `xi` (Table I), `table2`, `table3`, `table4`, `table5`,
//! `table6`, `fig4`, `fig5`, `timing`, `xorscan`, `complexity`,
//! `bifi` (the untargeted-baseline ablation; only with an explicit arg),
//! `ablation` (mapper design-choice sweeps).
//! With no arguments, everything is printed. See EXPERIMENTS.md for
//! the recorded paper-vs-measured comparison.

use std::collections::BTreeMap;
use std::time::Instant;

use bench::{payload_of, test_board};
use bitmod::countermeasure::{self, complexity};
use bitmod::{Attack, Catalogue, Scanner};
use bitstream::{xi, FRAME_BYTES};
use snow3g::vectors::{PAPER_TABLE_III, PAPER_TABLE_IV, PAPER_TABLE_V};
use techmap::{map, DelayModel, MapConfig, TimingReport};

fn want(sections: &[String], name: &str) -> bool {
    sections.is_empty() || sections.iter().any(|s| s == name)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sections: Vec<String> = std::env::args().skip(1).collect();

    if want(&sections, "xi") {
        print_xi();
    }

    // Sections that need the unprotected board / attack run.
    let need_attack =
        ["table2", "table3", "table4", "table5", "fig5"].iter().any(|s| want(&sections, s));
    if need_attack {
        let board = test_board(false);
        let report = Attack::new(&board, board.extract_bitstream())?.run()?;
        if want(&sections, "table2") {
            print_table2(&report);
        }
        if want(&sections, "table3") {
            print_words(
                "TABLE III — key-independent keystream",
                &report.key_independent_keystream,
                &PAPER_TABLE_III,
            );
        }
        if want(&sections, "table4") {
            print_words(
                "TABLE IV — keystream under fault α (= S³³)",
                &report.alpha_keystream,
                &PAPER_TABLE_IV,
            );
        }
        if want(&sections, "table5") {
            print_words(
                "TABLE V — recovered initial state S⁰",
                &report.recovered.initial_state,
                &PAPER_TABLE_V,
            );
            println!("recovered key: 0x{}", report.recovered.key);
        }
        if want(&sections, "fig5") {
            print_fig5(&report);
        }
    }

    if want(&sections, "fig4") {
        print_fig4();
    }
    if want(&sections, "timing") {
        print_timing();
    }
    if want(&sections, "table6") || want(&sections, "xorscan") {
        print_protected(&sections)?;
    }
    if want(&sections, "complexity") {
        print_complexity();
    }
    if sections.iter().any(|s| s == "bifi") {
        print_bifi()?;
    }
    if want(&sections, "ablation") {
        print_ablation();
    }
    Ok(())
}

fn print_ablation() {
    use techmap::MapObjective;
    println!("\n== Ablation — mapper design choices (DESIGN.md §3) ==");
    let board = test_board(false);
    let net = &board.circuit.network;
    println!("priority cuts per node (Area objective):");
    println!("  max_cuts |  LUT covers | depth");
    for max_cuts in [4usize, 8, 16, 32] {
        let cfg = MapConfig { max_cuts, ..MapConfig::default() };
        let design = map(net, &cfg).expect("maps");
        println!("  {max_cuts:>8} | {:>11} | {:>5}", design.covers.len(), design.logic_depth());
    }
    println!("cover-selection objective (max_cuts = 16):");
    for (name, objective) in [("area", MapObjective::Area), ("depth", MapObjective::Depth)] {
        let cfg = MapConfig { objective, ..MapConfig::default() };
        let design = map(net, &cfg).expect("maps");
        println!(
            "  {name:>8} | covers {:>5} | physical LUTs {:>5} | depth {:>3}",
            design.covers.len(),
            design.lut_count(),
            design.logic_depth()
        );
    }
    println!("(the attack's frozen cover shapes assume Area, max_cuts = 16)");
}

fn print_bifi() -> Result<(), Box<dyn std::error::Error>> {
    use bitmod::bifi::{self, BifiConfig};
    println!("\n== Ablation — untargeted BiFI baseline (paper ref. [23]) ==");
    let board = test_board(false);
    let golden = board.extract_bitstream();
    let t0 = Instant::now();
    let config = BifiConfig { max_trials: Some(3000), ..BifiConfig::default() };
    let report = bifi::run(&board, &golden, &config)?;
    println!(
        "{} single-LUT mutations in {:.1} s: {} changed the keystream, {} were dead, {} keys recovered",
        report.trials,
        t0.elapsed().as_secs_f64(),
        report.keystream_changed,
        report.keystream_unchanged,
        report.recovered_keys.len()
    );
    println!("(the targeted attack recovers the key in ~520 loads; BiFI cannot, because");
    println!(" linearising SNOW 3G needs 64 coordinated LUT faults)");
    Ok(())
}

fn print_xi() {
    println!("== TABLE I — the ξ permutation of the 7-series LUT bitstream format ==");
    println!("  i (a6..a1) | B = ξ(F[i])");
    for i in 0..64u8 {
        println!("  F[{i:>2}] {:06b} | B[{:>2}]", i, xi::xi(i));
    }
    println!("(64 rows; closed form: start from 63, toggle masks 10/01/02/30/04/08 per input bit)");
}

fn print_table2(report: &bitmod::AttackReport) {
    println!("\n== TABLE II analog — candidate LUTs in the unprotected bitstream ==");
    println!("   shape | hits | note");
    let notes: BTreeMap<&str, &str> = [
        ("f2", "LUT1: z-path cover (paper: 81 hits, 32 true)"),
        ("m0", "LUT2 analog: s15 mux + v, γ=0 (paper's f8/f19 role)"),
        ("m0b", "LUT2 analog: s15 mux + v, γ=1"),
        ("g4", "LUT3 analog: outer-byte gated XOR4"),
        ("f7", "outer-byte edge cover (paper's f7 row: n = 1)"),
        ("g3c", "bit-1 carry-edge cover"),
        ("m1", "s15 mux, lin side, γ=0 (no v)"),
        ("m1b", "s15 mux, lin side, γ=1 (no v)"),
    ]
    .into_iter()
    .collect();
    for (name, count) in &report.candidate_counts {
        let note = notes.get(name).copied().unwrap_or("paper Table II row");
        println!("   {name:>5} | {count:>4} | {note}");
    }
    println!("verified z-path LUTs: {}", report.z_luts.len());
    let mut by_shape: BTreeMap<&str, usize> = BTreeMap::new();
    for f in &report.feedback_luts {
        *by_shape.entry(f.shape).or_default() += 1;
    }
    println!("feedback covers by shape (paper: 24 f8 + 8 f19): {by_shape:?}");
}

fn print_words(title: &str, ours: &[u32], paper: &[u32]) {
    println!("\n== {title} ==");
    println!("   t | measured  | paper     | match");
    for (i, (a, b)) in ours.iter().zip(paper).enumerate() {
        println!("  {:>2} | {a:08x}  | {b:08x}  | {}", i + 1, if a == b { "yes" } else { "NO" });
    }
}

fn print_fig4() {
    println!("\n== FIG. 4 analog — dual-output LUT packing statistics ==");
    let board = test_board(false);
    let design = &board.design;
    let total = design.lut_count();
    let fractured = design.fractured_count();
    println!(
        "physical LUTs: {total}, fractured (two outputs): {fractured}, single: {}",
        total - fractured
    );
    let pboard = test_board(true);
    println!(
        "protected design: {} LUTs, {} fractured (the trivial XOR pairs of Section VII-A)",
        pboard.design.lut_count(),
        pboard.design.fractured_count()
    );
}

fn print_fig5(report: &bitmod::AttackReport) {
    println!("\n== FIG. 5 analog — recovered covers of the target node v ==");
    let cat = Catalogue::full();
    println!("LUT1 (keystream path, 32 LUTs): f2 = {}", cat.shape("f2").unwrap().formula);
    println!("  α₂ pair variants used:");
    let mut pairs: BTreeMap<(u8, u8), usize> = BTreeMap::new();
    for z in &report.z_luts {
        if let Some(p) = z.pair {
            *pairs.entry(p).or_default() += 1;
        }
    }
    for (pair, n) in pairs {
        println!("    v = (a{}, a{}) in {n} LUTs", pair.0, pair.1);
    }
    let mut shapes: BTreeMap<&str, usize> = BTreeMap::new();
    for f in &report.feedback_luts {
        *shapes.entry(f.shape).or_default() += 1;
    }
    println!("feedback path covers:");
    for (name, n) in shapes {
        let s = cat.shape(name).unwrap();
        println!("  {name} x {n}: {}", s.formula);
    }
    println!("(byte-shift split: middle 16 bits fold into the s15 load mux, outer bytes into gated XORs;");
    println!(" the paper saw the same mechanism as its 24 f8 + 8 f19 split)");
}

fn print_timing() {
    println!("\n== Section VII-A — countermeasure timing cost ==");
    let model = DelayModel::default();
    for (name, protected) in [("unprotected", false), ("protected", true)] {
        let board = test_board(protected);
        let t = TimingReport::analyze(
            &map(&board.circuit.network, &MapConfig::default()).expect("maps"),
            &model,
        );
        println!("  {name:>12}: critical path {:.3} ns, LUT depth {}", t.critical_ns, t.depth);
    }
    println!("  (paper: 6.313 ns → 7.514 ns; MULα→s15 becomes critical in the protected design)");
}

fn print_protected(sections: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let board = test_board(true);
    let golden = board.extract_bitstream();
    if want(sections, "table6") {
        println!("\n== TABLE VI analog — candidates in the protected bitstream ==");
        let payload = payload_of(&golden);
        let cat = Catalogue::full();
        println!("   shape | hits");
        let scanner = Scanner::builder().stride(FRAME_BYTES).catalogue(&cat).build()?;
        for (shape, hits) in cat.shapes.iter().zip(scanner.scan_grouped(&payload)) {
            println!("   {:>5} | {}", shape.name, hits.len());
        }
        println!("(paper: all feedback rows 0; stray z-path-class matches remain but are \"not useful\")");
    }
    if want(sections, "xorscan") {
        println!("\n== Section VII-B — XOR-half scan of the protected bitstream ==");
        let payload = payload_of(&golden);
        let t0 = Instant::now();
        let full = countermeasure::xor_half_scan(&payload, FRAME_BYTES, 0..payload.len());
        let dt = t0.elapsed();
        let windowed = countermeasure::xor_half_scan(&payload, FRAME_BYTES, 0..payload.len() / 2);
        println!(
            "unconstrained scan: {} hits in {:.1} ms (paper: 481 hits)",
            full.len(),
            dt.as_secs_f64() * 1e3
        );
        println!(
            "constrained scan (half-payload window): {} hits (paper: 203 in a 200k window)",
            windowed.len()
        );
        let report = countermeasure::evaluate(&board, &golden, Some(0..payload.len() / 2))?;
        println!(
            "after pruning {} z-path XORs: {} candidates remain → search 2^{:.1} (paper: C(171,32) ≈ 2^115)",
            report.z_path_pruned, report.remaining, report.search_bits
        );
    }
    Ok(())
}

fn print_complexity() {
    println!("\n== Section VII-C / Lemma VII-A — complexity figures ==");
    println!(
        "C(171, 32) = 2^{:.1} ≈ 10^{:.1}   (paper: ≈ 4.9×10³⁴ ≈ 2¹¹⁵)",
        complexity::log2_binomial(171, 32),
        complexity::ln_binomial(171, 32) / std::f64::consts::LN_10
    );
    println!(
        "decoy sizing for 2¹²⁸: x ≥ {:.3}   (paper: 16/e − 1 ≈ 4.9)",
        complexity::required_decoy_multiple(128.0)
    );
    println!("  m = 32, r = 32x:");
    for x in [1u64, 2, 3, 5, 8] {
        println!(
            "    x = {x}: exact C(32+32x, 32) = 2^{:>6.1}, Stirling bound = 2^{:>6.1}",
            complexity::log2_binomial(32 + 32 * x, 32),
            complexity::log2_stirling_bound(32, 32 * x)
        );
    }
}
