//! Writes the standard victim board's golden bitstream to a file
//! (helper for exercising the `bitmod` CLI on real data).
//!
//! ```text
//! cargo run --release -p bench --bin dump-bitstream -- out.bit [--protected]
//! ```

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let path = args.next().unwrap_or_else(|| "snow3g.bit".into());
    let protected = args.any(|a| a == "--protected");
    let board = bench::test_board(protected);
    let bs = board.extract_bitstream();
    std::fs::write(&path, bs.as_bytes())?;
    println!("wrote {} bytes to {path} (protected: {protected})", bs.len());
    Ok(())
}
