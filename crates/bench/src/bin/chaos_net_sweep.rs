//! Wire-chaos sweep: the fleet's line protocol across a grid of
//! transport fault rates — the robustness experiment behind the
//! EXPERIMENTS.md fault-rate vs completed-session-rate table.
//!
//! ```text
//! chaos-net-sweep [--smoke] [--seed N] [--sessions N] [--drop R]
//!                 [--out PATH]
//! ```
//!
//! Each cell boots an in-process fleet behind a loopback
//! [`FleetServer`] whose accepted connections are wrapped in the
//! seeded [`ChaosProfile`] injector (dropped connections, partial
//! writes, garbled bytes, injected read delays scale with the cell's
//! drop rate), then drives a batch of sessions through the hardened
//! client — submit, tail to completion, status. Reported per cell:
//! sessions completed, client-side reconnects, and the server's wire
//! counters. The gate: every session completes at every rate up to
//! 10% per-op; the 20% cell is reported as the degradation point, not
//! gated. `--smoke` runs the single 5%-drop cell (for CI); `--drop R`
//! runs one cell at rate R; `--out` writes the final cell's wire
//! counters as one JSON line (the CI smoke-trace artifact).

use std::process::ExitCode;
use std::time::Duration;

use bitmod::fleet::{
    wire, ChaosProfile, ClientConfig, Endpoint, Fleet, FleetClient, FleetConfig, FleetServer,
    SessionSpec,
};
use bitmod::telemetry::names;

struct Cell {
    drop: f64,
    completed: usize,
    attempted: usize,
    client_reconnects: u64,
    server: String,
}

fn counter(counters: &str, name: &str) -> u64 {
    wire::number_field(counters, name).unwrap_or(0)
}

fn run_cell(drop: f64, seed: u64, sessions: usize) -> Result<Cell, String> {
    let root = std::env::temp_dir().join(format!(
        "bitmod-chaos-net-sweep-{}-{}",
        std::process::id(),
        (drop * 1000.0) as u64
    ));
    let _ = std::fs::remove_dir_all(&root);
    let fleet = Fleet::start(FleetConfig::new(&root).workers(2)).map_err(|e| e.to_string())?;
    // The companion fault classes scale with the headline drop rate:
    // a wire that drops also tears, garbles and stalls.
    let profile = ChaosProfile::new(seed)
        .with_drop(drop)
        .with_partial(drop * 2.0)
        .with_garble(drop / 2.0)
        .with_delay(drop / 2.0);
    let mut server =
        FleetServer::bind(&Endpoint::parse("127.0.0.1:0"), fleet).map_err(|e| e.to_string())?;
    if profile.is_active() {
        server = server.with_chaos(profile);
    }
    let endpoint = server.endpoint().clone();
    let join = server.spawn();

    let config = ClientConfig::default()
        .with_read_timeout(Duration::from_secs(2))
        .with_retries(20)
        .with_backoff(Duration::from_millis(5), Duration::from_millis(50))
        .with_seed(seed);
    let mut client = FleetClient::connect_with(&endpoint, config).map_err(|e| e.to_string())?;

    let spec =
        SessionSpec::builder().batch(fpga_sim::GANG_LANES).build().map_err(|e| e.to_string())?;
    let mut completed = 0usize;
    for i in 0..sessions {
        let id = match client.submit(&spec) {
            Ok(id) => id,
            Err(e) => {
                eprintln!("chaos-net-sweep: drop {drop}: session {i} submit failed: {e}");
                continue;
            }
        };
        let mut sink = std::io::sink();
        match client.tail(&id, &mut sink) {
            Ok(state) if state == "recovered" => completed += 1,
            Ok(state) => {
                eprintln!("chaos-net-sweep: drop {drop}: session {i} ({id}) ended '{state}'");
            }
            Err(e) => {
                eprintln!("chaos-net-sweep: drop {drop}: session {i} ({id}) tail failed: {e}");
            }
        }
    }
    let server_counters = client.counters().map_err(|e| e.to_string())?;
    let reconnects = client.reconnects();
    client.shutdown().map_err(|e| e.to_string())?;
    join.join().map_err(|_| "server thread panicked".to_string())?;
    let _ = std::fs::remove_dir_all(&root);
    Ok(Cell {
        drop,
        completed,
        attempted: sessions,
        client_reconnects: reconnects,
        server: server_counters,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut seed = 42u64;
    let mut sessions = 4usize;
    let mut single: Option<f64> = None;
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => match it.next().map(|v| v.parse()) {
                Some(Ok(v)) => seed = v,
                _ => {
                    eprintln!("--seed needs an integer");
                    return ExitCode::FAILURE;
                }
            },
            "--sessions" => match it.next().map(|v| v.parse()) {
                Some(Ok(v)) if v > 0 => sessions = v,
                _ => {
                    eprintln!("--sessions needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--drop" => match it.next().map(|v| v.parse()) {
                Some(Ok(v)) => single = Some(v),
                _ => {
                    eprintln!("--drop needs a rate");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match it.next() {
                Some(path) => out = Some(path.clone()),
                None => {
                    eprintln!("--out needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--smoke" => {}
            other => {
                eprintln!(
                    "unknown option '{other}'; usage: chaos-net-sweep \
                     [--smoke] [--seed N] [--sessions N] [--drop R] [--out PATH]"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    let single_cell;
    let rates: &[f64] = if let Some(rate) = single {
        single_cell = [rate];
        &single_cell
    } else if smoke {
        &[0.05]
    } else {
        &[0.0, 0.02, 0.05, 0.10, 0.20]
    };
    println!("chaos-net sweep: seed {seed}, {sessions} session(s) per cell");
    println!("drop/op | completed | reconnects | chaos faults | frames rejected | srv reconnects");

    let mut cells = Vec::new();
    for &drop in rates {
        match run_cell(drop, seed, sessions) {
            Ok(cell) => {
                println!(
                    "{:>6.1}% | {:>4}/{:<4} | {:>10} | {:>12} | {:>15} | {:>14}",
                    cell.drop * 100.0,
                    cell.completed,
                    cell.attempted,
                    cell.client_reconnects,
                    counter(&cell.server, names::FLEET_NET_CHAOS_FAULTS),
                    counter(&cell.server, names::FLEET_NET_FRAMES_REJECTED),
                    counter(&cell.server, names::FLEET_NET_RECONNECTS),
                );
                cells.push(cell);
            }
            Err(e) => {
                eprintln!("chaos-net-sweep: cell at drop {drop} failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // The acceptance gate: every submitted session completes at every
    // rate up to 10% per-op — the hardening absorbs that much chaos
    // outright within the default retry budget. Harsher cells are
    // reported, not gated: they are the degradation data the
    // EXPERIMENTS table exists to show.
    const GATED_MAX_DROP: f64 = 0.10;
    let all_completed = cells
        .iter()
        .filter(|c| c.drop <= GATED_MAX_DROP + 1e-9)
        .all(|c| c.completed == c.attempted);
    if !all_completed {
        eprintln!(
            "chaos-net-sweep: a session failed at a gated rate (<= {:.0}% drop)",
            GATED_MAX_DROP * 100.0
        );
    }

    if let Some(path) = out {
        // The CI artifact: the last (noisiest) cell's wire counters.
        let last = cells.last().expect("at least one cell ran");
        let line = format!(
            "{{\"drop\":{},\"sessions\":{},\"completed\":{},\"client_reconnects\":{},\
             \"{}\":{},\"{}\":{},\"{}\":{},\"{}\":{}}}",
            last.drop,
            last.attempted,
            last.completed,
            last.client_reconnects,
            names::FLEET_NET_CHAOS_FAULTS,
            counter(&last.server, names::FLEET_NET_CHAOS_FAULTS),
            names::FLEET_NET_FRAMES_REJECTED,
            counter(&last.server, names::FLEET_NET_FRAMES_REJECTED),
            names::FLEET_NET_RECONNECTS,
            counter(&last.server, names::FLEET_NET_RECONNECTS),
            names::FLEET_NET_SUBMIT_DEDUPED,
            counter(&last.server, names::FLEET_NET_SUBMIT_DEDUPED),
        );
        if let Err(e) = std::fs::write(&path, format!("{line}\n")) {
            eprintln!("chaos-net-sweep: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wire counters written to {path}");
    }

    if all_completed {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
