//! Adaptive-resilience overhead gate: runs the full clean-board
//! attack with the policy controller off and on in one process, and
//! reports the relative cost.
//!
//! ```text
//! resilience-overhead [--iterations N]
//! resilience-overhead --write BENCH_resilience.json
//! resilience-overhead --check BENCH_resilience.json
//! ```
//!
//! The adaptive controller promises to be free when nothing is wrong:
//! on a clean board the EWMA never crosses the escalation threshold,
//! so the effective vote count and retry policy stay at the
//! configured floor and the only cost is the controller's own
//! bookkeeping (one fault sample and EWMA update per query, plus the
//! loss of the pass-through fast path). `--write` records the
//! measurement and the overhead ceiling into a committed baseline;
//! `--check` re-measures and exits non-zero when the overhead exceeds
//! the baseline's `max_overhead_pct` — the CI gate keeping the
//! adaptive layer honest about that promise. The gate statistic is
//! the median *paired* on/off ratio across interleaved iterations
//! (after a warmup run), so transient machine load — which hits both
//! arms of an iteration about equally — cancels in the quotient.

// These exercise (or ride on) the pre-0.7 free-form `Attack`
// constructors, kept working behind deprecation warnings; the
// replacement surface is `bitmod::fleet::SessionSpec`.
#![allow(deprecated)]

use std::process::ExitCode;
use std::time::Instant;

use bitmod::resilient::ResilienceConfig;
use bitmod::Attack;
use snow3g::vectors::TEST_SET_1_KEY;

/// The ceiling written into fresh baselines (the acceptance bound
/// from the adaptive-resilience design: < 5% on clean runs).
const MAX_OVERHEAD_PCT: f64 = 5.0;

/// One full clean-board attack; returns the wall-clock milliseconds.
fn timed_run(adaptive: bool) -> Result<f64, String> {
    let board = bench::test_board(false);
    let golden = board.extract_bitstream();
    let config =
        if adaptive { ResilienceConfig::off().with_adaptive() } else { ResilienceConfig::off() };
    let start = Instant::now();
    let report = Attack::with_resilience(&board, golden, bitstream::FRAME_BYTES, config)
        .and_then(Attack::run)
        .map_err(|e| e.to_string())?;
    let elapsed = start.elapsed().as_secs_f64() * 1e3;
    if report.recovered.key != TEST_SET_1_KEY {
        return Err("attack did not recover the Test Set 1 key".into());
    }
    Ok(elapsed)
}

struct Measurement {
    fixed_ms: f64,
    adaptive_ms: f64,
    overhead_pct: f64,
}

fn measure(iterations: u32) -> Result<Measurement, String> {
    // One untimed warmup run pays the cold costs that would otherwise
    // bias whichever arm runs first.
    timed_run(false)?;
    let mut fixed_ms = f64::INFINITY;
    let mut adaptive_ms = f64::INFINITY;
    let mut ratios = Vec::with_capacity(iterations as usize);
    for _ in 0..iterations {
        let fixed = timed_run(false)?;
        let adaptive = timed_run(true)?;
        fixed_ms = fixed_ms.min(fixed);
        adaptive_ms = adaptive_ms.min(adaptive);
        ratios.push(adaptive / fixed);
    }
    ratios.sort_by(|a, b| a.total_cmp(b));
    let overhead_pct = (ratios[ratios.len() / 2] - 1.0) * 100.0;
    Ok(Measurement { fixed_ms, adaptive_ms, overhead_pct })
}

fn baseline_json(m: &Measurement, iterations: u32) -> String {
    format!(
        "{{\n  \"bench\": \"resilience-overhead\",\n  \
         \"workload\": \"clean-board full attack, adaptive policy on vs off\",\n  \
         \"iterations\": {iterations},\n  \
         \"max_overhead_pct\": {MAX_OVERHEAD_PCT},\n  \
         \"recorded_fixed_ms\": {:.2},\n  \
         \"recorded_adaptive_ms\": {:.2},\n  \
         \"recorded_overhead_pct\": {:.2}\n}}\n",
        m.fixed_ms, m.adaptive_ms, m.overhead_pct
    )
}

/// Pulls `"max_overhead_pct": <float>` out of the baseline file
/// without a JSON dependency.
fn parse_ceiling(text: &str) -> Option<f64> {
    let rest = text.split("\"max_overhead_pct\"").nth(1)?;
    let rest = rest.trim_start().strip_prefix(':')?;
    let end = rest.find([',', '\n', '}'])?;
    rest[..end].trim().parse().ok()
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iterations = 5u32;
    let mut write: Option<String> = None;
    let mut check: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--iterations" => {
                iterations = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--iterations needs an integer")?;
            }
            "--write" => write = Some(it.next().ok_or("--write needs a path")?.clone()),
            "--check" => check = Some(it.next().ok_or("--check needs a path")?.clone()),
            other => {
                return Err(format!(
                    "unknown option '{other}'; usage: resilience-overhead \
                     [--iterations N] [--write PATH | --check PATH]"
                ));
            }
        }
    }

    let m = measure(iterations)?;
    println!(
        "adaptive-resilience overhead: fixed {:.2} ms, adaptive {:.2} ms, overhead {:+.2}%",
        m.fixed_ms, m.adaptive_ms, m.overhead_pct
    );

    if let Some(path) = write {
        std::fs::write(&path, baseline_json(&m, iterations))
            .map_err(|e| format!("cannot write baseline {path}: {e}"))?;
        println!("baseline written to {path} (ceiling {MAX_OVERHEAD_PCT}%)");
    }
    if let Some(path) = check {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read baseline {path}: {e}"))?;
        let ceiling =
            parse_ceiling(&text).ok_or(format!("no max_overhead_pct in baseline {path}"))?;
        if m.overhead_pct > ceiling {
            eprintln!(
                "resilience-overhead: {:.2}% exceeds the {ceiling}% ceiling from {path}",
                m.overhead_pct
            );
            return Ok(ExitCode::FAILURE);
        }
        println!("within the {ceiling}% ceiling from {path}");
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("resilience-overhead: {e}");
            ExitCode::FAILURE
        }
    }
}
