//! Attack throughput gate: runs the full clean-board attack serially
//! and with the 64-lane batched oracle pipeline in one process, and
//! reports the speedup.
//!
//! ```text
//! attack-throughput [--iterations N]
//! attack-throughput --write BENCH_attack.json
//! attack-throughput --check BENCH_attack.json
//! ```
//!
//! `--write` records the measurement and the speedup floor into a
//! committed baseline; `--check` re-measures and exits non-zero if
//! the speedup falls below the baseline's `min_speedup` — the CI
//! regression gate keeping the gang simulator honest about being
//! fast. The gate statistic is the median *paired* serial/batched
//! ratio across interleaved iterations (after a warmup run), so
//! transient machine load — which hits both arms of an iteration
//! about equally — cancels in the quotient instead of inflating
//! either the baseline or the check. Both arms must recover the
//! Test Set 1 key and report identical oracle load counts, so the
//! gate doubles as a cheap equivalence smoke test.

use std::process::ExitCode;
use std::time::Instant;

use bitmod::Attack;
use fpga_sim::GANG_LANES;
use snow3g::vectors::TEST_SET_1_KEY;

/// The floor written into fresh baselines (the acceptance bound).
const MIN_SPEEDUP: f64 = 8.0;

/// One full clean-board attack; returns wall-clock milliseconds and
/// the number of oracle loads it issued.
fn timed_run(batch: usize) -> Result<(f64, usize), String> {
    let board = bench::test_board(false);
    let golden = board.extract_bitstream();
    let start = Instant::now();
    let report = Attack::new(&board, golden)
        .map_err(|e| e.to_string())?
        .with_batch(batch)
        .run()
        .map_err(|e| e.to_string())?;
    let elapsed = start.elapsed().as_secs_f64() * 1e3;
    if report.recovered.key != TEST_SET_1_KEY {
        return Err("attack did not recover the Test Set 1 key".into());
    }
    Ok((elapsed, report.oracle_loads))
}

struct Measurement {
    serial_ms: f64,
    batched_ms: f64,
    loads: usize,
    speedup: f64,
}

fn measure(iterations: u32) -> Result<Measurement, String> {
    // One untimed warmup run pays the cold costs (page cache, lazy
    // allocator pools) that would otherwise bias whichever arm runs
    // first.
    timed_run(1)?;
    let mut serial_ms = f64::INFINITY;
    let mut batched_ms = f64::INFINITY;
    let mut loads = None;
    let mut ratios = Vec::with_capacity(iterations as usize);
    // The gate statistic is the *median paired* ratio: a transient
    // load spike hits both arms of the same interleaved iteration
    // about equally and cancels in the quotient, while min-of-N over
    // the arms separately can compare a loaded window against a calm
    // one and report a phantom speedup either way; the median then
    // shrugs off the remaining per-pair outliers in both directions.
    for _ in 0..iterations {
        let (serial, serial_loads) = timed_run(1)?;
        let (batched, batched_loads) = timed_run(GANG_LANES)?;
        if serial_loads != batched_loads {
            return Err(format!(
                "load accounting diverged: serial {serial_loads}, batched {batched_loads}"
            ));
        }
        loads = Some(serial_loads);
        serial_ms = serial_ms.min(serial);
        batched_ms = batched_ms.min(batched);
        ratios.push(serial / batched);
    }
    ratios.sort_by(|a, b| a.total_cmp(b));
    Ok(Measurement {
        serial_ms,
        batched_ms,
        loads: loads.unwrap_or(0),
        speedup: ratios[ratios.len() / 2],
    })
}

fn baseline_json(m: &Measurement, iterations: u32) -> String {
    format!(
        "{{\n  \"bench\": \"attack-throughput\",\n  \
         \"workload\": \"clean-board full attack, serial vs 64-lane batched oracle\",\n  \
         \"iterations\": {iterations},\n  \
         \"batch_width\": {GANG_LANES},\n  \
         \"min_speedup\": {MIN_SPEEDUP},\n  \
         \"oracle_loads\": {},\n  \
         \"recorded_serial_ms\": {:.2},\n  \
         \"recorded_batched_ms\": {:.2},\n  \
         \"recorded_speedup\": {:.2}\n}}\n",
        m.loads, m.serial_ms, m.batched_ms, m.speedup
    )
}

/// Pulls `"min_speedup": <float>` out of the baseline file without a
/// JSON dependency.
fn parse_floor(text: &str) -> Option<f64> {
    let rest = text.split("\"min_speedup\"").nth(1)?;
    let rest = rest.trim_start().strip_prefix(':')?;
    let end = rest.find([',', '\n', '}'])?;
    rest[..end].trim().parse().ok()
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iterations = 5u32;
    let mut write: Option<String> = None;
    let mut check: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--iterations" => {
                iterations = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--iterations needs an integer")?;
            }
            "--write" => write = Some(it.next().ok_or("--write needs a path")?.clone()),
            "--check" => check = Some(it.next().ok_or("--check needs a path")?.clone()),
            other => {
                return Err(format!(
                    "unknown option '{other}'; usage: attack-throughput \
                     [--iterations N] [--write PATH | --check PATH]"
                ));
            }
        }
    }

    let m = measure(iterations)?;
    println!(
        "attack throughput: serial {:.2} ms, batched {:.2} ms, speedup {:.2}x \
         ({} oracle loads in both arms)",
        m.serial_ms, m.batched_ms, m.speedup, m.loads
    );

    if let Some(path) = write {
        std::fs::write(&path, baseline_json(&m, iterations))
            .map_err(|e| format!("cannot write baseline {path}: {e}"))?;
        println!("baseline written to {path} (floor {MIN_SPEEDUP}x)");
    }
    if let Some(path) = check {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read baseline {path}: {e}"))?;
        let floor = parse_floor(&text).ok_or(format!("no min_speedup in baseline {path}"))?;
        if m.speedup < floor {
            eprintln!(
                "attack-throughput: {:.2}x is below the {floor}x floor from {path}",
                m.speedup
            );
            return Ok(ExitCode::FAILURE);
        }
        println!("above the {floor}x floor from {path}");
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("attack-throughput: {e}");
            ExitCode::FAILURE
        }
    }
}
