//! Campaign throughput gate: drives the work-stealing fleet with a
//! batch of identical clean-board sessions at one worker and at N
//! workers in one process, and reports the sessions/sec scaling.
//!
//! ```text
//! campaign-throughput [--sessions N] [--workers N]
//! campaign-throughput --write BENCH_campaign.json
//! campaign-throughput --check BENCH_campaign.json
//! ```
//!
//! `--write` records the measurement and the scaling floor into a
//! committed baseline; `--check` re-measures and exits non-zero if
//! the multi-worker speedup falls below the floor — the CI gate
//! keeping the fleet scheduler honest about actually parallelising.
//! The floor is parallelism-aware: the baseline's `min_speedup` is
//! the bound on a machine with at least `--workers` cores, and the
//! check clamps it to `0.75 × min(workers, available cores)` so a
//! 1-core container (where perfect scheduling yields 1.0×) gates on
//! not *losing* throughput to the scheduler rather than on an
//! impossible speedup. Every session in both arms must terminate
//! `recovered`, so the gate doubles as a fleet correctness smoke
//! test.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use bitmod::fleet::{Fleet, FleetConfig, SessionSpec, SessionState};

/// The floor written into fresh baselines: the acceptance bound at 4
/// workers on a ≥4-core machine.
const MIN_SPEEDUP: f64 = 3.0;

/// Per-arm completion deadline.
const ARM_TIMEOUT: Duration = Duration::from_secs(600);

fn fleet_root(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("bitmod-campaign-bench-{tag}-{}", std::process::id()))
}

/// Runs `sessions` identical clean batched sessions through a fleet
/// of `workers` workers; returns sessions per second.
fn run_arm(workers: usize, sessions: usize) -> Result<f64, String> {
    let spec =
        SessionSpec::builder().batch(fpga_sim::GANG_LANES).build().map_err(|e| e.to_string())?;
    let root = fleet_root(&format!("w{workers}"));
    let _ = std::fs::remove_dir_all(&root);
    let fleet =
        Fleet::start(FleetConfig::new(&root).workers(workers)).map_err(|e| e.to_string())?;
    let start = Instant::now();
    for _ in 0..sessions {
        fleet.submit(spec.clone()).map_err(|e| e.to_string())?;
    }
    if !fleet.wait_idle(ARM_TIMEOUT) {
        return Err(format!("fleet did not drain {sessions} sessions in {ARM_TIMEOUT:?}"));
    }
    let elapsed = start.elapsed().as_secs_f64();
    for handle in fleet.sessions() {
        let status = handle.status();
        if status.state != SessionState::Recovered {
            return Err(format!(
                "session {} ended {} ({}) — the gate requires every session recovered",
                status.id,
                status.state.as_str(),
                status.note
            ));
        }
    }
    fleet.shutdown();
    let _ = std::fs::remove_dir_all(&root);
    Ok(sessions as f64 / elapsed)
}

struct Measurement {
    single_rate: f64,
    multi_rate: f64,
    speedup: f64,
}

fn measure(workers: usize, sessions: usize) -> Result<Measurement, String> {
    // A short untimed warmup pays the cold costs (board synthesis,
    // allocator pools) that would otherwise bias the first arm.
    run_arm(1, 2.min(sessions))?;
    let single_rate = run_arm(1, sessions)?;
    let multi_rate = run_arm(workers, sessions)?;
    Ok(Measurement { single_rate, multi_rate, speedup: multi_rate / single_rate })
}

fn available_cores() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// The effective gate on this machine: the baseline floor assumes at
/// least `workers` cores; with fewer, even a perfect scheduler cannot
/// scale past the core count, so the bound degrades to 75% of the
/// achievable parallelism (at 1 core: "do not lose throughput").
fn effective_floor(baseline_floor: f64, workers: usize) -> f64 {
    baseline_floor.min(0.75 * workers.min(available_cores()) as f64)
}

fn baseline_json(m: &Measurement, workers: usize, sessions: usize) -> String {
    format!(
        "{{\n  \"bench\": \"campaign-throughput\",\n  \
         \"workload\": \"clean-board batched sessions, 1 worker vs {workers} work-stealing workers\",\n  \
         \"sessions\": {sessions},\n  \
         \"workers\": {workers},\n  \
         \"min_speedup\": {MIN_SPEEDUP},\n  \
         \"cores_at_write\": {},\n  \
         \"recorded_single_rate\": {:.2},\n  \
         \"recorded_multi_rate\": {:.2},\n  \
         \"recorded_speedup\": {:.2}\n}}\n",
        available_cores(),
        m.single_rate,
        m.multi_rate,
        m.speedup
    )
}

/// Pulls `"min_speedup": <float>` out of the baseline file without a
/// JSON dependency.
fn parse_floor(text: &str) -> Option<f64> {
    let rest = text.split("\"min_speedup\"").nth(1)?;
    let rest = rest.trim_start().strip_prefix(':')?;
    let end = rest.find([',', '\n', '}'])?;
    rest[..end].trim().parse().ok()
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut sessions = 256usize;
    let mut workers = 4usize;
    let mut write: Option<String> = None;
    let mut check: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--sessions" => {
                sessions =
                    it.next().and_then(|v| v.parse().ok()).ok_or("--sessions needs an integer")?;
            }
            "--workers" => {
                workers =
                    it.next().and_then(|v| v.parse().ok()).ok_or("--workers needs an integer")?;
            }
            "--write" => write = Some(it.next().ok_or("--write needs a path")?.clone()),
            "--check" => check = Some(it.next().ok_or("--check needs a path")?.clone()),
            other => {
                return Err(format!(
                    "unknown option '{other}'; usage: campaign-throughput \
                     [--sessions N] [--workers N] [--write PATH | --check PATH]"
                ));
            }
        }
    }
    if sessions == 0 || workers == 0 {
        return Err("--sessions and --workers must be non-zero".into());
    }

    let m = measure(workers, sessions)?;
    println!(
        "campaign throughput: {sessions} sessions — 1 worker {:.2}/s, {workers} workers \
         {:.2}/s, speedup {:.2}x ({} cores available)",
        m.single_rate,
        m.multi_rate,
        m.speedup,
        available_cores()
    );

    if let Some(path) = write {
        std::fs::write(&path, baseline_json(&m, workers, sessions))
            .map_err(|e| format!("cannot write baseline {path}: {e}"))?;
        println!("baseline written to {path} (floor {MIN_SPEEDUP}x at ≥{workers} cores)");
    }
    if let Some(path) = check {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read baseline {path}: {e}"))?;
        let baseline = parse_floor(&text).ok_or(format!("no min_speedup in baseline {path}"))?;
        let floor = effective_floor(baseline, workers);
        if m.speedup < floor {
            eprintln!(
                "campaign-throughput: {:.2}x is below the {floor:.2}x floor \
                 (baseline {baseline}x from {path}, {} cores)",
                m.speedup,
                available_cores()
            );
            return Ok(ExitCode::FAILURE);
        }
        println!("above the {floor:.2}x effective floor (baseline {baseline}x from {path})");
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("campaign-throughput: {e}");
            ExitCode::FAILURE
        }
    }
}
