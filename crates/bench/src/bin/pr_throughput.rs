//! Partial-reconfiguration throughput gate: runs the full clean-board
//! attack with full-bitstream loads and with frame-delta partial
//! loads in one process, and reports the configuration-traffic
//! reduction and the wall-clock speedup.
//!
//! ```text
//! pr-throughput [--iterations N]
//! pr-throughput --write BENCH_pr.json
//! pr-throughput --check BENCH_pr.json
//! ```
//!
//! `--write` records the measurement and both floors into a committed
//! baseline; `--check` re-measures and exits non-zero if either the
//! bytes-shipped reduction falls below `min_bytes_ratio` or the
//! wall-clock speedup falls below `min_speedup` — the CI regression
//! gate keeping delta loading honest about being the fast path. The
//! bytes ratio is deterministic (same candidate schedule every run);
//! the wall-clock statistic is the median *paired* full/partial ratio
//! across interleaved iterations (after a warmup run), so transient
//! machine load — which hits both arms of an iteration about equally
//! — cancels in the quotient. Both arms must recover the Test Set 1
//! key and report identical oracle load counts, so the gate doubles
//! as a cheap equivalence smoke test.

use std::process::ExitCode;
use std::time::Instant;

use bitmod::campaign::CancelToken;
use bitmod::fleet::{ResumePolicy, SessionIo, SessionSpec};
use bitmod::telemetry::names;
use bitmod::Telemetry;
use snow3g::vectors::TEST_SET_1_KEY;

/// The traffic-reduction floor written into fresh baselines: partial
/// loads must ship less than a tenth of the full-load byte volume
/// (the measured reduction is well over 100×, so 10× is a regression
/// gate, not a target).
const MIN_BYTES_RATIO: f64 = 10.0;

/// The wall-clock floor written into fresh baselines: the delta path
/// must not be materially slower than full loading. The measured
/// speedup sits just above parity (the simulated device applies
/// fewer frames per delta, but forging costs a diff per candidate),
/// so the floor is set below 1.0 to gate against the forge overhead
/// ever eating the win without flaking on scheduler noise.
const MIN_SPEEDUP: f64 = 0.85;

/// One full clean-board attack; returns wall-clock milliseconds, the
/// number of oracle loads, and the configuration bytes shipped.
fn timed_run(partial: bool) -> Result<(f64, usize, u64), String> {
    let board = bench::test_board(false);
    let golden = board.extract_bitstream();
    let golden_len = golden.len() as u64;
    let telemetry = Telemetry::new();
    let io = SessionIo {
        journal: None,
        resume: ResumePolicy::Never,
        telemetry: telemetry.clone(),
        cancel: CancelToken::new(),
        expected_key: Some(TEST_SET_1_KEY),
    };
    let spec = SessionSpec::builder().partial(partial).build().map_err(|e| e.to_string())?;
    let start = Instant::now();
    let report = spec.run_harnessed(&board, golden, &io).map_err(|e| e.to_string())?;
    let elapsed = start.elapsed().as_secs_f64() * 1e3;
    let attack = report.attack.ok_or("session produced no attack report")?;
    if attack.recovered.key != TEST_SET_1_KEY {
        return Err("attack did not recover the Test Set 1 key".into());
    }
    let bytes = if partial {
        report.metrics.counter(names::PR_BYTES_SHIPPED)
    } else {
        attack.oracle_loads as u64 * golden_len
    };
    Ok((elapsed, attack.oracle_loads, bytes))
}

struct Measurement {
    full_ms: f64,
    partial_ms: f64,
    loads: usize,
    full_bytes: u64,
    partial_bytes: u64,
    bytes_ratio: f64,
    speedup: f64,
}

fn measure(iterations: u32) -> Result<Measurement, String> {
    // One untimed warmup run pays the cold costs (page cache, lazy
    // allocator pools) that would otherwise bias whichever arm runs
    // first.
    timed_run(false)?;
    let mut full_ms = f64::INFINITY;
    let mut partial_ms = f64::INFINITY;
    let mut loads = None;
    let mut full_bytes = 0;
    let mut partial_bytes = 0;
    let mut ratios = Vec::with_capacity(iterations as usize);
    // Median paired ratio, same rationale as attack-throughput: a
    // transient load spike hits both arms of one interleaved
    // iteration about equally and cancels in the quotient.
    for _ in 0..iterations {
        let (full, full_loads, fb) = timed_run(false)?;
        let (part, partial_loads, pb) = timed_run(true)?;
        if full_loads != partial_loads {
            return Err(format!(
                "load accounting diverged: full {full_loads}, partial {partial_loads}"
            ));
        }
        loads = Some(full_loads);
        full_bytes = fb;
        partial_bytes = pb;
        full_ms = full_ms.min(full);
        partial_ms = partial_ms.min(part);
        ratios.push(full / part);
    }
    ratios.sort_by(|a, b| a.total_cmp(b));
    if partial_bytes == 0 {
        return Err("partial arm shipped zero bytes — telemetry is broken".into());
    }
    Ok(Measurement {
        full_ms,
        partial_ms,
        loads: loads.unwrap_or(0),
        full_bytes,
        partial_bytes,
        bytes_ratio: full_bytes as f64 / partial_bytes as f64,
        speedup: ratios[ratios.len() / 2],
    })
}

fn baseline_json(m: &Measurement, iterations: u32) -> String {
    format!(
        "{{\n  \"bench\": \"pr-throughput\",\n  \
         \"workload\": \"clean-board full attack, full loads vs frame-delta partial loads\",\n  \
         \"iterations\": {iterations},\n  \
         \"min_bytes_ratio\": {MIN_BYTES_RATIO},\n  \
         \"min_speedup\": {MIN_SPEEDUP},\n  \
         \"oracle_loads\": {},\n  \
         \"full_bytes_shipped\": {},\n  \
         \"partial_bytes_shipped\": {},\n  \
         \"recorded_bytes_ratio\": {:.2},\n  \
         \"recorded_full_ms\": {:.2},\n  \
         \"recorded_partial_ms\": {:.2},\n  \
         \"recorded_speedup\": {:.2}\n}}\n",
        m.loads, m.full_bytes, m.partial_bytes, m.bytes_ratio, m.full_ms, m.partial_ms, m.speedup
    )
}

/// Pulls `"<key>": <float>` out of the baseline file without a JSON
/// dependency.
fn parse_floor(text: &str, key: &str) -> Option<f64> {
    let rest = text.split(&format!("\"{key}\"")).nth(1)?;
    let rest = rest.trim_start().strip_prefix(':')?;
    let end = rest.find([',', '\n', '}'])?;
    rest[..end].trim().parse().ok()
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iterations = 5u32;
    let mut write: Option<String> = None;
    let mut check: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--iterations" => {
                iterations = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--iterations needs an integer")?;
            }
            "--write" => write = Some(it.next().ok_or("--write needs a path")?.clone()),
            "--check" => check = Some(it.next().ok_or("--check needs a path")?.clone()),
            other => {
                return Err(format!(
                    "unknown option '{other}'; usage: pr-throughput \
                     [--iterations N] [--write PATH | --check PATH]"
                ));
            }
        }
    }

    let m = measure(iterations)?;
    println!(
        "pr throughput: full {:.2} ms / {} bytes, partial {:.2} ms / {} bytes — \
         {:.1}x less traffic, {:.2}x wall-clock ({} oracle loads in both arms)",
        m.full_ms, m.full_bytes, m.partial_ms, m.partial_bytes, m.bytes_ratio, m.speedup, m.loads
    );

    if let Some(path) = write {
        std::fs::write(&path, baseline_json(&m, iterations))
            .map_err(|e| format!("cannot write baseline {path}: {e}"))?;
        println!("baseline written to {path} (floors {MIN_BYTES_RATIO}x bytes, {MIN_SPEEDUP}x wall-clock)");
    }
    if let Some(path) = check {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read baseline {path}: {e}"))?;
        let bytes_floor =
            parse_floor(&text, "min_bytes_ratio").ok_or(format!("no min_bytes_ratio in {path}"))?;
        let speed_floor =
            parse_floor(&text, "min_speedup").ok_or(format!("no min_speedup in {path}"))?;
        if m.bytes_ratio < bytes_floor {
            eprintln!(
                "pr-throughput: {:.2}x traffic reduction is below the {bytes_floor}x floor \
                 from {path}",
                m.bytes_ratio
            );
            return Ok(ExitCode::FAILURE);
        }
        if m.speedup < speed_floor {
            eprintln!(
                "pr-throughput: {:.2}x wall-clock is below the {speed_floor}x floor from {path}",
                m.speedup
            );
            return Ok(ExitCode::FAILURE);
        }
        println!("above the {bytes_floor}x bytes and {speed_floor}x wall-clock floors from {path}");
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("pr-throughput: {e}");
            ExitCode::FAILURE
        }
    }
}
