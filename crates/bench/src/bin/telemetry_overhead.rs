//! Telemetry overhead gate: runs the full clean-board attack with the
//! recorder off and on (NDJSON streaming to a temp file — the real
//! deployment shape) in one process, and reports the relative cost.
//!
//! ```text
//! telemetry-overhead [--iterations N]
//! telemetry-overhead --write BENCH_telemetry.json
//! telemetry-overhead --check BENCH_telemetry.json
//! ```
//!
//! `--write` records the measurement and the overhead ceiling into a
//! committed baseline; `--check` re-measures and exits non-zero if
//! the overhead exceeds the baseline's `max_overhead_pct` — the CI
//! regression gate keeping the recorder honest about being cheap.
//! The gate statistic is the median *paired* on/off ratio across
//! interleaved iterations (after a warmup run), so transient machine
//! load — which hits both arms of an iteration about equally —
//! cancels in the quotient instead of inflating either the baseline
//! or the check.

// These exercise (or ride on) the pre-0.7 free-form `Attack`
// constructors, kept working behind deprecation warnings; the
// replacement surface is `bitmod::fleet::SessionSpec`.
#![allow(deprecated)]

use std::process::ExitCode;
use std::time::Instant;

use bitmod::resilient::ResilienceConfig;
use bitmod::{Attack, Telemetry};
use snow3g::vectors::TEST_SET_1_KEY;

/// The ceiling written into fresh baselines (the acceptance bound).
const MAX_OVERHEAD_PCT: f64 = 5.0;

/// One full clean-board attack; returns the wall-clock milliseconds.
///
/// With `traced`, the recorder streams NDJSON to a scratch file and
/// is torn down inside the timed region — the fair end-to-end cost.
fn timed_run(traced: bool, scratch: &std::path::Path) -> Result<f64, String> {
    let board = bench::test_board(false);
    let golden = board.extract_bitstream();
    let start = Instant::now();
    let telemetry = if traced {
        Telemetry::to_path(scratch).map_err(|e| e.to_string())?
    } else {
        Telemetry::off()
    };
    let report = Attack::instrumented(
        &board,
        golden,
        bitstream::FRAME_BYTES,
        ResilienceConfig::off(),
        telemetry.clone(),
    )
    .and_then(Attack::run)
    .map_err(|e| e.to_string())?;
    if traced {
        telemetry.finish().map_err(|e| e.to_string())?;
    }
    let elapsed = start.elapsed().as_secs_f64() * 1e3;
    if report.recovered.key != TEST_SET_1_KEY {
        return Err("attack did not recover the Test Set 1 key".into());
    }
    Ok(elapsed)
}

struct Measurement {
    off_ms: f64,
    on_ms: f64,
    overhead_pct: f64,
}

fn measure(iterations: u32) -> Result<Measurement, String> {
    let scratch = std::env::temp_dir()
        .join(format!("bitmod-telemetry-overhead-{}.ndjson", std::process::id()));
    // One untimed warmup run pays the cold costs (page cache, lazy
    // allocator pools) that would otherwise bias whichever arm runs
    // first.
    timed_run(false, &scratch)?;
    let mut off_ms = f64::INFINITY;
    let mut on_ms = f64::INFINITY;
    let mut ratios = Vec::with_capacity(iterations as usize);
    // The gate statistic is the *median paired* ratio: a transient
    // load spike hits both arms of the same interleaved iteration
    // about equally and cancels in the quotient, while min-of-N over
    // the arms separately can compare a loaded window against a calm
    // one and report phantom overhead either way; the median then
    // shrugs off the remaining per-pair outliers in both directions.
    for _ in 0..iterations {
        let off = timed_run(false, &scratch)?;
        let on = timed_run(true, &scratch)?;
        off_ms = off_ms.min(off);
        on_ms = on_ms.min(on);
        ratios.push(on / off);
    }
    let _ = std::fs::remove_file(&scratch);
    ratios.sort_by(|a, b| a.total_cmp(b));
    let overhead_pct = (ratios[ratios.len() / 2] - 1.0) * 100.0;
    Ok(Measurement { off_ms, on_ms, overhead_pct })
}

fn baseline_json(m: &Measurement, iterations: u32) -> String {
    format!(
        "{{\n  \"bench\": \"telemetry-overhead\",\n  \
         \"workload\": \"clean-board full attack, NDJSON trace to a file\",\n  \
         \"iterations\": {iterations},\n  \
         \"max_overhead_pct\": {MAX_OVERHEAD_PCT},\n  \
         \"recorded_off_ms\": {:.2},\n  \
         \"recorded_on_ms\": {:.2},\n  \
         \"recorded_overhead_pct\": {:.2}\n}}\n",
        m.off_ms, m.on_ms, m.overhead_pct
    )
}

/// Pulls `"max_overhead_pct": <float>` out of the baseline file
/// without a JSON dependency.
fn parse_ceiling(text: &str) -> Option<f64> {
    let rest = text.split("\"max_overhead_pct\"").nth(1)?;
    let rest = rest.trim_start().strip_prefix(':')?;
    let end = rest.find([',', '\n', '}'])?;
    rest[..end].trim().parse().ok()
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iterations = 5u32;
    let mut write: Option<String> = None;
    let mut check: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--iterations" => {
                iterations = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--iterations needs an integer")?;
            }
            "--write" => write = Some(it.next().ok_or("--write needs a path")?.clone()),
            "--check" => check = Some(it.next().ok_or("--check needs a path")?.clone()),
            other => {
                return Err(format!(
                    "unknown option '{other}'; usage: telemetry-overhead \
                     [--iterations N] [--write PATH | --check PATH]"
                ));
            }
        }
    }

    let m = measure(iterations)?;
    println!(
        "telemetry overhead: off {:.2} ms, on {:.2} ms, overhead {:+.2}%",
        m.off_ms, m.on_ms, m.overhead_pct
    );

    if let Some(path) = write {
        std::fs::write(&path, baseline_json(&m, iterations))
            .map_err(|e| format!("cannot write baseline {path}: {e}"))?;
        println!("baseline written to {path} (ceiling {MAX_OVERHEAD_PCT}%)");
    }
    if let Some(path) = check {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read baseline {path}: {e}"))?;
        let ceiling =
            parse_ceiling(&text).ok_or(format!("no max_overhead_pct in baseline {path}"))?;
        if m.overhead_pct > ceiling {
            eprintln!(
                "telemetry-overhead: {:.2}% exceeds the {ceiling}% ceiling from {path}",
                m.overhead_pct
            );
            return Ok(ExitCode::FAILURE);
        }
        println!("within the {ceiling}% ceiling from {path}");
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("telemetry-overhead: {e}");
            ExitCode::FAILURE
        }
    }
}
