//! Encrypted-container overhead gate: runs the full attack over the
//! plaintext bitstream and over the Fig. 1 secure container in one
//! process, and reports the ciphertext tax.
//!
//! ```text
//! encrypted-throughput [--iterations N]
//! encrypted-throughput --write BENCH_encrypted.json
//! encrypted-throughput --check BENCH_encrypted.json
//! ```
//!
//! The encrypted arm pays AES-256-CBC, HMAC-SHA-256 and the seekable
//! patch oracle on every candidate load; the whole point of the
//! position-seekable design is that this tax stays a small constant
//! factor instead of O(container) per load. `--write` records the
//! measurement and the ratio ceiling into a committed baseline;
//! `--check` re-measures and exits non-zero if the encrypted/plaintext
//! ratio climbs above the baseline's `max_ratio` — the CI regression
//! gate keeping the patch oracle honest about being seekable. The
//! gate statistic is the median *paired* ratio across interleaved
//! iterations (after a warmup run), so transient machine load cancels
//! in the quotient. Both arms must recover the Test Set 1 key and
//! report identical oracle load counts, so the gate doubles as a
//! cheap encrypted/plaintext equivalence smoke test.

use std::process::ExitCode;
use std::time::Instant;

use bitmod::fleet::SessionSpec;
use bitmod::SessionOutcome;
use snow3g::vectors::TEST_SET_1_KEY;

/// The ceiling written into fresh baselines (the acceptance bound):
/// the encrypted run may cost at most this multiple of the plaintext
/// run.
const MAX_RATIO: f64 = 1.5;

/// One full clean-board attack through the session facade; returns
/// wall-clock milliseconds and the number of oracle loads it issued.
fn timed_run(encrypted: bool) -> Result<(f64, usize), String> {
    let spec = SessionSpec::builder().encrypted(encrypted).build().map_err(|e| e.to_string())?;
    let start = Instant::now();
    let report = spec.run_local().map_err(|e| e.to_string())?;
    let elapsed = start.elapsed().as_secs_f64() * 1e3;
    let attack = match report.outcome {
        SessionOutcome::Recovered(_) => {
            report.attack.ok_or("recovered session carries no attack report")?
        }
        other => return Err(format!("attack did not recover the key: {other:?}")),
    };
    if attack.recovered.key != TEST_SET_1_KEY {
        return Err("attack did not recover the Test Set 1 key".into());
    }
    Ok((elapsed, attack.oracle_loads))
}

struct Measurement {
    plain_ms: f64,
    encrypted_ms: f64,
    loads: usize,
    ratio: f64,
}

fn measure(iterations: u32) -> Result<Measurement, String> {
    // One untimed warmup run pays the cold costs that would otherwise
    // bias whichever arm runs first.
    timed_run(false)?;
    let mut plain_ms = f64::INFINITY;
    let mut encrypted_ms = f64::INFINITY;
    let mut loads = None;
    let mut ratios = Vec::with_capacity(iterations as usize);
    // Median paired ratio, as in attack-throughput: a load spike hits
    // both arms of an interleaved iteration about equally and cancels
    // in the quotient.
    for _ in 0..iterations {
        let (plain, plain_loads) = timed_run(false)?;
        let (encrypted, encrypted_loads) = timed_run(true)?;
        if plain_loads != encrypted_loads {
            return Err(format!(
                "load accounting diverged: plaintext {plain_loads}, encrypted {encrypted_loads}"
            ));
        }
        loads = Some(plain_loads);
        plain_ms = plain_ms.min(plain);
        encrypted_ms = encrypted_ms.min(encrypted);
        ratios.push(encrypted / plain);
    }
    ratios.sort_by(|a, b| a.total_cmp(b));
    Ok(Measurement {
        plain_ms,
        encrypted_ms,
        loads: loads.unwrap_or(0),
        ratio: ratios[ratios.len() / 2],
    })
}

fn baseline_json(m: &Measurement, iterations: u32) -> String {
    format!(
        "{{\n  \"bench\": \"encrypted-throughput\",\n  \
         \"workload\": \"clean-board full attack, plaintext vs Fig. 1 encrypted container\",\n  \
         \"iterations\": {iterations},\n  \
         \"max_ratio\": {MAX_RATIO},\n  \
         \"oracle_loads\": {},\n  \
         \"recorded_plain_ms\": {:.2},\n  \
         \"recorded_encrypted_ms\": {:.2},\n  \
         \"recorded_ratio\": {:.2}\n}}\n",
        m.loads, m.plain_ms, m.encrypted_ms, m.ratio
    )
}

/// Pulls `"max_ratio": <float>` out of the baseline file without a
/// JSON dependency.
fn parse_ceiling(text: &str) -> Option<f64> {
    let rest = text.split("\"max_ratio\"").nth(1)?;
    let rest = rest.trim_start().strip_prefix(':')?;
    let end = rest.find([',', '\n', '}'])?;
    rest[..end].trim().parse().ok()
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iterations = 5u32;
    let mut write: Option<String> = None;
    let mut check: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--iterations" => {
                iterations = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--iterations needs an integer")?;
            }
            "--write" => write = Some(it.next().ok_or("--write needs a path")?.clone()),
            "--check" => check = Some(it.next().ok_or("--check needs a path")?.clone()),
            other => {
                return Err(format!(
                    "unknown option '{other}'; usage: encrypted-throughput \
                     [--iterations N] [--write PATH | --check PATH]"
                ));
            }
        }
    }

    let m = measure(iterations)?;
    println!(
        "encrypted throughput: plaintext {:.2} ms, encrypted {:.2} ms, ratio {:.2}x \
         ({} oracle loads in both arms)",
        m.plain_ms, m.encrypted_ms, m.ratio, m.loads
    );

    if let Some(path) = write {
        std::fs::write(&path, baseline_json(&m, iterations))
            .map_err(|e| format!("cannot write baseline {path}: {e}"))?;
        println!("baseline written to {path} (ceiling {MAX_RATIO}x)");
    }
    if let Some(path) = check {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read baseline {path}: {e}"))?;
        let ceiling = parse_ceiling(&text).ok_or(format!("no max_ratio in baseline {path}"))?;
        if m.ratio > ceiling {
            eprintln!(
                "encrypted-throughput: {:.2}x is above the {ceiling}x ceiling from {path}",
                m.ratio
            );
            return Ok(ExitCode::FAILURE);
        }
        println!("below the {ceiling}x ceiling from {path}");
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("encrypted-throughput: {e}");
            ExitCode::FAILURE
        }
    }
}
