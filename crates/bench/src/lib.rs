//! Shared workloads for the benchmark harness and the `paper-tables`
//! regeneration binary.

use bitstream::Bitstream;
use fpga_sim::{ImplementOptions, Snow3gBoard};
use netlist::snow3g_circuit::Snow3gCircuitConfig;
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use snow3g::vectors::{TEST_SET_1_IV, TEST_SET_1_KEY};

/// Builds the standard victim board (ETSI Test Set 1 secrets — the
/// exact configuration the paper's experiment used).
///
/// # Panics
///
/// Panics if the implementation flow fails (it cannot for the
/// built-in design).
#[must_use]
pub fn test_board(protected: bool) -> Snow3gBoard {
    let config = if protected {
        Snow3gCircuitConfig::protected(TEST_SET_1_KEY, TEST_SET_1_IV)
    } else {
        Snow3gCircuitConfig::unprotected(TEST_SET_1_KEY, TEST_SET_1_IV)
    };
    Snow3gBoard::build(config, &ImplementOptions::default()).expect("board builds")
}

/// The FDRI payload of a board's golden bitstream.
///
/// # Panics
///
/// Panics if the bitstream has no FDRI payload (it always does).
#[must_use]
pub fn payload_of(bitstream: &Bitstream) -> Vec<u8> {
    let range = bitstream.fdri_data_range().expect("FDRI payload");
    bitstream.as_bytes()[range].to_vec()
}

/// A synthetic payload of `len` pseudorandom bytes, used to reproduce
/// the Section VI-B timing claim ("for bitstreams of size less than
/// 10 MB and k = 6, our tool takes less than 4 sec").
#[must_use]
pub fn synthetic_payload(len: usize, seed: u64) -> Vec<u8> {
    let mut data = vec![0u8; len];
    SmallRng::seed_from_u64(seed).fill_bytes(&mut data);
    data
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_build() {
        let board = test_board(false);
        let payload = payload_of(&board.extract_bitstream());
        assert!(!payload.is_empty());
        assert_eq!(synthetic_payload(1024, 7).len(), 1024);
        // Deterministic.
        assert_eq!(synthetic_payload(64, 9), synthetic_payload(64, 9));
        assert_ne!(synthetic_payload(64, 9), synthetic_payload(64, 10));
    }
}
