//! Resilience-layer costs: what the flaky-board survival machinery
//! charges on a *clean* board (the overhead an operator pays for
//! turning it on defensively), and the per-call cost of the bitwise
//! majority vote itself.

use bench::test_board;
use bitmod::resilient::{majority, ResilienceConfig, ResilientOracle};
use bitmod::KeystreamOracle;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fpga_sim::{FaultProfile, UnreliableBoard};

fn bench_clean_path_overhead(c: &mut Criterion) {
    let board = test_board(false);
    let golden = board.extract_bitstream();
    let mut g = c.benchmark_group("resilience/clean-path");
    g.sample_size(20);
    // Baseline: the raw oracle, no wrapper.
    g.bench_function("raw-oracle", |b| {
        b.iter(|| board.keystream(&golden, 16).expect("runs"));
    });
    // The wrapper in pass-through mode: measures pure layer overhead
    // (should be indistinguishable from the baseline).
    g.bench_function("wrapped-off", |b| {
        let mut oracle = ResilientOracle::new(&board, ResilienceConfig::off());
        b.iter(|| oracle.query(&golden, 16).expect("runs"));
    });
    // Majority voting on a clean board: 3 and 5 full reads per
    // logical query — the defensive-mode cost multiplier.
    for votes in [3u32, 5] {
        g.bench_function(format!("wrapped-{votes}-votes"), |b| {
            let config = ResilienceConfig::noisy(1).with_votes(votes);
            let mut oracle = ResilientOracle::new(&board, config);
            b.iter(|| oracle.query(&golden, 16).expect("runs"));
        });
    }
    g.finish();
}

fn bench_noisy_path(c: &mut Criterion) {
    let board = UnreliableBoard::new(test_board(false), FaultProfile::flaky(7));
    let golden = board.extract_bitstream();
    let mut g = c.benchmark_group("resilience/noisy-path");
    g.sample_size(20);
    // The full treatment against the flaky preset: retries and
    // votes included (virtual backoff costs no wall-clock).
    g.bench_function("flaky-board-5-votes", |b| {
        let mut oracle = ResilientOracle::new(&board, ResilienceConfig::noisy(7));
        b.iter(|| oracle.query(&golden, 16).expect("recovers"));
    });
    g.finish();
}

fn bench_majority_vote(c: &mut Criterion) {
    let mut g = c.benchmark_group("resilience/majority");
    for (votes, words) in [(5usize, 16usize), (5, 512), (9, 16)] {
        let ballots: Vec<Vec<u32>> = (0..votes)
            .map(|v| (0..words).map(|w| (w as u32).wrapping_mul(0x9E37_79B9) ^ v as u32).collect())
            .collect();
        g.throughput(Throughput::Elements((votes * words) as u64));
        g.bench_function(format!("{votes}-ballots-{words}-words"), |b| {
            b.iter(|| majority(&ballots));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_clean_path_overhead, bench_noisy_path, bench_majority_vote);
criterion_main!(benches);
