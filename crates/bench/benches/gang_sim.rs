//! Gang-simulator costs: 64 scalar board loads versus one 64-lane
//! bit-parallel batch over the same bitstreams — the core ratio the
//! batched oracle pipeline's speedup comes from.

use bench::test_board;
use criterion::{criterion_group, criterion_main, Criterion};
use fpga_sim::GANG_LANES;

const WORDS: usize = 16;

fn bench_keystream(c: &mut Criterion) {
    let board = test_board(false);
    let golden = board.extract_bitstream();
    let batch: Vec<_> = (0..GANG_LANES).map(|_| golden.clone()).collect();
    let mut g = c.benchmark_group("gang/keystream-16-words");
    g.sample_size(10);
    g.bench_function("scalar-x64", |b| {
        b.iter(|| {
            for bs in &batch {
                board.generate_keystream(bs, WORDS).expect("runs");
            }
        });
    });
    g.bench_function("gang-1x64", |b| {
        b.iter(|| {
            for lane in board.keystream_batch(&batch, WORDS) {
                lane.expect("runs");
            }
        });
    });
    g.finish();
}

criterion_group!(benches, bench_keystream);
criterion_main!(benches);
