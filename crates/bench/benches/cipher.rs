//! SNOW 3G software-model performance: keystream generation, the
//! faulted models used by the attack, LFSR reversal and key recovery.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use snow3g::vectors::{PAPER_TABLE_IV, TEST_SET_1_IV, TEST_SET_1_KEY};
use snow3g::{recover_key, FaultSpec, FaultySnow3g, Lfsr, Snow3g};

fn bench_keystream(c: &mut Criterion) {
    let mut g = c.benchmark_group("cipher/keystream");
    g.throughput(Throughput::Bytes(4 * 1024));
    g.bench_function("1k-words", |b| {
        let mut cipher = Snow3g::new(TEST_SET_1_KEY, TEST_SET_1_IV);
        b.iter(|| cipher.keystream(1024));
    });
    g.finish();
}

fn bench_initialization(c: &mut Criterion) {
    c.bench_function("cipher/initialize", |b| {
        b.iter(|| Snow3g::new(TEST_SET_1_KEY, TEST_SET_1_IV));
    });
}

fn bench_faulty_models(c: &mut Criterion) {
    let mut g = c.benchmark_group("cipher/faulty");
    g.bench_function("alpha-16-words", |b| {
        b.iter(|| {
            FaultySnow3g::new(TEST_SET_1_KEY, TEST_SET_1_IV, FaultSpec::alpha()).keystream(16)
        });
    });
    g.bench_function("key-independent-16-words", |b| {
        b.iter(|| {
            FaultySnow3g::new(TEST_SET_1_KEY, TEST_SET_1_IV, FaultSpec::key_independent())
                .keystream(16)
        });
    });
    g.finish();
}

fn bench_reversal_and_recovery(c: &mut Criterion) {
    let mut g = c.benchmark_group("cipher/recover");
    g.bench_function("lfsr-reverse-33", |b| {
        b.iter(|| {
            let mut l = Lfsr::from_state(PAPER_TABLE_IV);
            l.unclock_by(33);
            l.state()
        });
    });
    g.bench_function("recover-key-from-table4", |b| {
        b.iter(|| recover_key(&PAPER_TABLE_IV).expect("recovers"));
    });
    g.finish();
}

fn bench_encrypt(c: &mut Criterion) {
    let mut g = c.benchmark_group("cipher/apply-keystream");
    let mut data = vec![0u8; 64 * 1024];
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("64kB", |b| {
        b.iter(|| {
            Snow3g::new(TEST_SET_1_KEY, TEST_SET_1_IV).apply_keystream(&mut data);
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_keystream,
    bench_initialization,
    bench_faulty_models,
    bench_reversal_and_recovery,
    bench_encrypt
);
criterion_main!(benches);
