//! Technology mapping performance and the countermeasure's area/delay
//! cost (Section VII-A), plus the priority-cuts ablation called out
//! in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netlist::snow3g_circuit::{Snow3gCircuit, Snow3gCircuitConfig};
use snow3g::vectors::{TEST_SET_1_IV, TEST_SET_1_KEY};
use techmap::{map, DelayModel, MapConfig, TimingReport};

fn circuit(protected: bool) -> Snow3gCircuit {
    let config = if protected {
        Snow3gCircuitConfig::protected(TEST_SET_1_KEY, TEST_SET_1_IV)
    } else {
        Snow3gCircuitConfig::unprotected(TEST_SET_1_KEY, TEST_SET_1_IV)
    };
    Snow3gCircuit::generate(config)
}

fn bench_generate(c: &mut Criterion) {
    c.bench_function("mapping/generate-circuit", |b| b.iter(|| circuit(false)));
}

fn bench_map(c: &mut Criterion) {
    let unprot = circuit(false);
    let prot = circuit(true);
    let mut g = c.benchmark_group("mapping/map");
    g.sample_size(10);
    g.bench_function("unprotected", |b| {
        b.iter(|| map(&unprot.network, &MapConfig::default()).expect("maps"));
    });
    g.bench_function("protected", |b| {
        b.iter(|| map(&prot.network, &MapConfig::default()).expect("maps"));
    });
    g.finish();
}

fn bench_max_cuts_ablation(c: &mut Criterion) {
    // DESIGN.md design choice: how many priority cuts per node are
    // kept during enumeration. More cuts → better covers, slower
    // mapping. (LUT counts per setting are printed by paper-tables.)
    let net = circuit(false);
    let mut g = c.benchmark_group("mapping/max-cuts-ablation");
    g.sample_size(10);
    for max_cuts in [4usize, 8, 16, 32] {
        g.bench_with_input(BenchmarkId::from_parameter(max_cuts), &max_cuts, |b, &mc| {
            let config = MapConfig { max_cuts: mc, ..MapConfig::default() };
            b.iter(|| map(&net.network, &config).expect("maps"));
        });
    }
    g.finish();
}

fn bench_timing_analysis(c: &mut Criterion) {
    let net = circuit(false);
    let design = map(&net.network, &MapConfig::default()).expect("maps");
    c.bench_function("mapping/timing-analysis", |b| {
        b.iter(|| TimingReport::analyze(&design, &DelayModel::default()));
    });
}

fn bench_mapped_simulation(c: &mut Criterion) {
    let net = circuit(false);
    let design = map(&net.network, &MapConfig::default()).expect("maps");
    let probes = net.z_out.clone();
    c.bench_function("mapping/simulate-50-cycles", |b| {
        b.iter(|| design.simulate(&[(net.run, true)], 50, &probes));
    });
}

criterion_group!(
    benches,
    bench_generate,
    bench_map,
    bench_max_cuts_ablation,
    bench_timing_analysis,
    bench_mapped_simulation
);
criterion_main!(benches);
