//! End-to-end pipeline costs: board construction (the implementation
//! flow), device configuration, keystream generation, and the
//! complete key-recovery attack.

use bench::test_board;
use bitmod::Attack;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_board_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline/board-build");
    g.sample_size(10);
    g.bench_function("unprotected", |b| b.iter(|| test_board(false)));
    g.finish();
}

fn bench_configure_and_run(c: &mut Criterion) {
    let board = test_board(false);
    let golden = board.extract_bitstream();
    let mut g = c.benchmark_group("pipeline/device");
    g.bench_function("parse-bitstream", |b| b.iter(|| golden.parse().expect("parses")));
    g.bench_function("program", |b| b.iter(|| board.fpga().program(&golden).expect("programs")));
    g.bench_function("keystream-16-words", |b| {
        b.iter(|| board.generate_keystream(&golden, 16).expect("runs"));
    });
    g.finish();
}

fn bench_full_attack(c: &mut Criterion) {
    let board = test_board(false);
    let mut g = c.benchmark_group("pipeline/attack");
    g.sample_size(10);
    g.bench_function("full-key-recovery", |b| {
        b.iter(|| {
            Attack::new(&board, board.extract_bitstream())
                .expect("prepares")
                .run()
                .expect("recovers")
        });
    });
    g.finish();
}

fn bench_crc_operations(c: &mut Criterion) {
    let board = test_board(false);
    let golden = board.extract_bitstream();
    let mut g = c.benchmark_group("pipeline/crc");
    g.bench_function("recompute", |b| {
        b.iter_batched(
            || golden.clone(),
            |mut bs| {
                bs.as_mut_bytes()[2048] ^= 1;
                bs.recompute_crc()
            },
            criterion::BatchSize::LargeInput,
        );
    });
    g.bench_function("disable", |b| {
        b.iter_batched(
            || golden.clone(),
            |mut bs| bs.disable_crc(),
            criterion::BatchSize::LargeInput,
        );
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_board_build,
    bench_configure_and_run,
    bench_full_attack,
    bench_crc_operations
);
criterion_main!(benches);
