//! Checkpoint-journal costs: what crash-safety charges per completed
//! work item. The attack saves after every item, so the codec and the
//! atomic write (temp file + `sync_all` + rename) sit on the campaign
//! hot path — the EXPERIMENTS.md claim is that journalling stays
//! under 1% of campaign wall time.

// These exercise (or ride on) the pre-0.7 free-form `Attack`
// constructors, kept working behind deprecation warnings; the
// replacement surface is `bitmod::fleet::SessionSpec`.
#![allow(deprecated)]

use bench::test_board;
use bitmod::journal::{decode_frame, encode_frame, AttackJournal};
use bitmod::resilient::ResilienceConfig;
use bitmod::{Attack, JournalDoc};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fpga_sim::{FaultProfile, UnreliableBoard};

/// A realistic mid-campaign document: the seed-7 noisy attack cut at
/// 600 physical attempts has all 32 keystream-path LUTs, the full
/// feedback set and the site lattice on board — the heaviest
/// checkpoint the attack ever writes.
fn mid_campaign_doc(path: &std::path::Path) -> JournalDoc {
    let board = UnreliableBoard::new(test_board(false), FaultProfile::flaky(7));
    let golden = board.extract_bitstream();
    let config = ResilienceConfig::noisy(7 ^ 0x5EED).with_budget(600);
    let outcome = Attack::with_resilience(&board, golden, bitstream::FRAME_BYTES, config)
        .expect("prepares")
        .with_journal(AttackJournal::new(path))
        .expect("journal attaches")
        .run();
    assert!(outcome.is_err(), "the 600-attempt budget must cut the run");
    AttackJournal::new(path).load().expect("journal loads")
}

fn bench_journal(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("bitmod-bench-journal-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("attack.journal");
    let doc = mid_campaign_doc(&path);
    let frame = encode_frame(&doc);

    let mut g = c.benchmark_group("journal");
    g.throughput(Throughput::Bytes(frame.len() as u64));
    // Pure codec: serialize the checkpoint to its CRC-framed bytes.
    g.bench_function("encode", |b| {
        b.iter(|| encode_frame(&doc));
    });
    // Pure codec: verify the frame and rebuild the document.
    g.bench_function("decode", |b| {
        b.iter(|| decode_frame(&frame).expect("clean frame"));
    });
    // The per-item durability cost: encode + temp file + sync_all +
    // rename. This is what every completed work item actually pays.
    g.sample_size(20);
    g.bench_function("save-atomic", |b| {
        let journal = AttackJournal::new(&path);
        b.iter(|| journal.save(&doc).expect("saves"));
    });
    // Resume-time cost: read + verify + rebuild.
    g.bench_function("reload", |b| {
        let journal = AttackJournal::new(&path);
        b.iter(|| journal.load().expect("loads"));
    });
    g.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_journal);
criterion_main!(benches);
