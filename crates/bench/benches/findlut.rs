//! FINDLUT performance (Section VI-B: "For bitstreams of size less
//! than 10MB and k = 6, our tool takes less than 4 sec to execute for
//! a given f"), the multi-candidate one-pass `Scanner` vs the legacy
//! per-candidate loop, the naive-vs-optimized ablation, and the
//! Section VII-B half scan.

use bench::{payload_of, synthetic_payload, test_board};
use bitmod::countermeasure::xor_half_scan;
use bitmod::{find_lut_reference, Catalogue, FindLutParams, Scanner};
use bitstream::FRAME_BYTES;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

/// One single-candidate scanner per shape — the pre-`Scanner` usage
/// pattern (a `find_lut` call per catalogue row).
fn per_candidate_sweep(payload: &[u8], cat: &Catalogue) -> usize {
    cat.shapes
        .iter()
        .map(|shape| {
            Scanner::builder()
                .k(6)
                .stride(FRAME_BYTES)
                .threads(1)
                .candidate(shape.truth)
                .build()
                .unwrap()
                .scan(payload)
                .len()
        })
        .sum()
}

fn bench_findlut_real_bitstream(c: &mut Criterion) {
    let board = test_board(false);
    let payload = payload_of(&board.extract_bitstream());
    let cat = Catalogue::full();
    let f2 = Scanner::builder().stride(FRAME_BYTES).candidate(cat.shape("f2").unwrap().truth);
    let f2 = f2.build().unwrap();
    let m0 = Scanner::builder().stride(FRAME_BYTES).candidate(cat.shape("m0").unwrap().truth);
    let m0 = m0.build().unwrap();

    let mut g = c.benchmark_group("findlut/real-bitstream");
    g.throughput(Throughput::Bytes(payload.len() as u64));
    g.bench_function("f2", |b| b.iter(|| f2.scan(&payload)));
    g.bench_function("m0", |b| b.iter(|| m0.scan(&payload)));
    g.finish();
}

fn bench_findlut_scaling(c: &mut Criterion) {
    // The paper's headline timing claim is for a 10 MB bitstream.
    let cat = Catalogue::full();
    let f2 = cat.shape("f2").unwrap().truth;
    let seq = Scanner::builder().stride(FRAME_BYTES).threads(1).candidate(f2).build().unwrap();
    let par = Scanner::builder().stride(FRAME_BYTES).candidate(f2).build().unwrap();

    let mut g = c.benchmark_group("findlut/scaling");
    g.sample_size(10);
    for mb in [1usize, 4, 10] {
        let data = synthetic_payload(mb * 1_000_000, 0xF1A5);
        g.throughput(Throughput::Bytes(data.len() as u64));
        g.bench_with_input(BenchmarkId::new("f2-1thread", format!("{mb}MB")), &data, |b, d| {
            b.iter(|| seq.scan(d));
        });
        g.bench_with_input(BenchmarkId::new("f2-parallel", format!("{mb}MB")), &data, |b, d| {
            b.iter(|| par.scan(d));
        });
    }
    g.finish();
}

fn bench_multi_candidate_scan(c: &mut Criterion) {
    // The tentpole claim: scanning the whole Table II catalogue in
    // one pass vs the legacy per-candidate loop (single-threaded on
    // both sides for an apples-to-apples index comparison, then the
    // parallel engine on top).
    let cat = Catalogue::full();
    let data = synthetic_payload(4_000_000, 0xF1A5);
    let one_pass_seq =
        Scanner::builder().stride(FRAME_BYTES).threads(1).catalogue(&cat).build().unwrap();
    let one_pass_par = Scanner::builder().stride(FRAME_BYTES).catalogue(&cat).build().unwrap();

    let mut g = c.benchmark_group("findlut/catalogue-4MB");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("per-candidate-loop", |b| b.iter(|| per_candidate_sweep(&data, &cat)));
    g.bench_function("one-pass-1thread", |b| b.iter(|| one_pass_seq.scan(&data)));
    g.bench_function("one-pass-parallel", |b| b.iter(|| one_pass_par.scan(&data)));
    g.finish();
}

fn bench_naive_vs_optimized(c: &mut Criterion) {
    // Ablation: the literal Algorithm 1 transcription vs the
    // hash-decoded single pass (same results, see property tests).
    let cat = Catalogue::full();
    let f2 = cat.shape("f2").unwrap().truth;
    let params = FindLutParams::k6(FRAME_BYTES);
    let data = synthetic_payload(100_000, 0xBEEF);
    let scanner = Scanner::builder().stride(FRAME_BYTES).threads(1).candidate(f2).build().unwrap();

    let mut g = c.benchmark_group("findlut/ablation-100kB");
    g.sample_size(10);
    g.bench_function("optimized", |b| b.iter(|| scanner.scan(&data)));
    g.bench_function("reference-algorithm1", |b| b.iter(|| find_lut_reference(&data, f2, &params)));
    g.finish();
}

fn bench_xor_half_scan(c: &mut Criterion) {
    let board = test_board(true);
    let payload = payload_of(&board.extract_bitstream());
    let scanner = Scanner::builder().stride(FRAME_BYTES).build().unwrap();
    let mut g = c.benchmark_group("findlut/xor-half-scan");
    g.throughput(Throughput::Bytes(payload.len() as u64));
    g.bench_function("sequential", |b| {
        b.iter(|| xor_half_scan(&payload, FRAME_BYTES, 0..payload.len()));
    });
    g.bench_function("parallel", |b| {
        b.iter(|| {
            scanner.scan_halves(&payload, 0..payload.len(), |o5, o6| {
                o5.as_xor_pair().is_some() || o6.as_xor_pair().is_some()
            })
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_findlut_real_bitstream,
    bench_findlut_scaling,
    bench_multi_candidate_scan,
    bench_naive_vs_optimized,
    bench_xor_half_scan
);
criterion_main!(benches);
