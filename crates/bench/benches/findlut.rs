//! FINDLUT performance (Section VI-B: "For bitstreams of size less
//! than 10MB and k = 6, our tool takes less than 4 sec to execute for
//! a given f"), plus the naive-vs-optimized ablation and the
//! Section VII-B half scan.

use bench::{payload_of, synthetic_payload, test_board};
use bitmod::countermeasure::xor_half_scan;
use bitmod::{find_lut, find_lut_reference, Catalogue, FindLutParams};
use bitstream::FRAME_BYTES;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_findlut_real_bitstream(c: &mut Criterion) {
    let board = test_board(false);
    let payload = payload_of(&board.extract_bitstream());
    let cat = Catalogue::full();
    let f2 = cat.shape("f2").unwrap().truth;
    let params = FindLutParams::k6(FRAME_BYTES);

    let mut g = c.benchmark_group("findlut/real-bitstream");
    g.throughput(Throughput::Bytes(payload.len() as u64));
    g.bench_function("f2", |b| b.iter(|| find_lut(&payload, f2, &params)));
    let m0 = cat.shape("m0").unwrap().truth;
    g.bench_function("m0", |b| b.iter(|| find_lut(&payload, m0, &params)));
    g.finish();
}

fn bench_findlut_scaling(c: &mut Criterion) {
    // The paper's headline timing claim is for a 10 MB bitstream.
    let cat = Catalogue::full();
    let f2 = cat.shape("f2").unwrap().truth;
    let params = FindLutParams::k6(FRAME_BYTES);

    let mut g = c.benchmark_group("findlut/scaling");
    g.sample_size(10);
    for mb in [1usize, 4, 10] {
        let data = synthetic_payload(mb * 1_000_000, 0xF1A5);
        g.throughput(Throughput::Bytes(data.len() as u64));
        g.bench_with_input(BenchmarkId::new("f2", format!("{mb}MB")), &data, |b, d| {
            b.iter(|| find_lut(d, f2, &params));
        });
    }
    g.finish();
}

fn bench_naive_vs_optimized(c: &mut Criterion) {
    // Ablation: the literal Algorithm 1 transcription vs the
    // hash-decoded single pass (same results, see property tests).
    let cat = Catalogue::full();
    let f2 = cat.shape("f2").unwrap().truth;
    let params = FindLutParams::k6(FRAME_BYTES);
    let data = synthetic_payload(100_000, 0xBEEF);

    let mut g = c.benchmark_group("findlut/ablation-100kB");
    g.sample_size(10);
    g.bench_function("optimized", |b| b.iter(|| find_lut(&data, f2, &params)));
    g.bench_function("reference-algorithm1", |b| b.iter(|| find_lut_reference(&data, f2, &params)));
    g.finish();
}

fn bench_xor_half_scan(c: &mut Criterion) {
    let board = test_board(true);
    let payload = payload_of(&board.extract_bitstream());
    let mut g = c.benchmark_group("findlut/xor-half-scan");
    g.throughput(Throughput::Bytes(payload.len() as u64));
    g.bench_function("protected-bitstream", |b| {
        b.iter(|| xor_half_scan(&payload, FRAME_BYTES, 0..payload.len()));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_findlut_real_bitstream,
    bench_findlut_scaling,
    bench_naive_vs_optimized,
    bench_xor_half_scan
);
criterion_main!(benches);
