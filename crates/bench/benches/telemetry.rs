//! Telemetry recorder costs: what one recording call charges at the
//! oracle chokepoint, off vs. on vs. streaming to a sink — the
//! microscopic view behind the end-to-end overhead gate
//! (`telemetry-overhead`, pinned by `BENCH_telemetry.json`).

use bench::test_board;
use bitmod::resilient::{ResilienceConfig, ResilientOracle};
use bitmod::Telemetry;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::io::{self, Write};

/// A sink that swallows bytes, isolating serialization cost from I/O.
struct NullSink;

impl Write for NullSink {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

fn bench_recording_call(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry/record-query");
    // The disabled handle: one Option check — this is what every
    // untraced attack pays per query.
    g.bench_function("off", |b| {
        let t = Telemetry::off();
        b.iter(|| t.record_query(black_box(5), 5, 2, 40, "ok"));
    });
    // Metrics only (no sink): counter bumps plus two histogram
    // observations behind a mutex.
    g.bench_function("metrics-only", |b| {
        let t = Telemetry::new();
        b.iter(|| t.record_query(black_box(5), 5, 2, 40, "ok"));
    });
    // Full treatment: metrics plus one NDJSON event serialized into a
    // buffered null sink.
    g.bench_function("ndjson-sink", |b| {
        let t = Telemetry::with_sink(Box::new(NullSink));
        b.iter(|| t.record_query(black_box(5), 5, 2, 40, "ok"));
    });
    g.finish();
}

fn bench_span_guard(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry/span");
    g.bench_function("off", |b| {
        let t = Telemetry::off();
        b.iter(|| drop(t.span(black_box("phase:bench"))));
    });
    g.bench_function("ndjson-sink", |b| {
        let t = Telemetry::with_sink(Box::new(NullSink));
        b.iter(|| drop(t.span(black_box("phase:bench"))));
    });
    g.finish();
}

fn bench_instrumented_query(c: &mut Criterion) {
    // The realistic ratio: a full resilient oracle query (one device
    // configuration + 16-word read) with the recorder off vs. on.
    // This is the per-query view of the <5% end-to-end gate.
    let board = test_board(false);
    let golden = board.extract_bitstream();
    let mut g = c.benchmark_group("telemetry/oracle-query");
    g.sample_size(20);
    g.bench_function("untraced", |b| {
        let mut oracle = ResilientOracle::new(&board, ResilienceConfig::off());
        b.iter(|| oracle.query(&golden, 16).expect("runs"));
    });
    g.bench_function("traced", |b| {
        let mut oracle = ResilientOracle::new(&board, ResilienceConfig::off());
        oracle.set_telemetry(Telemetry::with_sink(Box::new(NullSink)));
        b.iter(|| oracle.query(&golden, 16).expect("runs"));
    });
    g.finish();
}

criterion_group!(benches, bench_recording_call, bench_span_guard, bench_instrumented_query);
criterion_main!(benches);
