//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access and no vendored
//! registry, so the real `rand` cannot be fetched. This crate
//! re-implements exactly the subset of the 0.8 API the workspace
//! uses: [`rngs::SmallRng`] (a PCG-64-MCG generator, the same
//! algorithm the real `SmallRng` uses on 64-bit targets), the
//! [`RngCore`] / [`SeedableRng`] traits, and [`Rng::gen_range`] over
//! integer ranges.
//!
//! Determinism is the only property downstream code relies on
//! (seeded placement scrambles and filler bytes); statistical quality
//! far exceeds what those uses need.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The core trait: a source of random bits.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with SplitMix64 (the same
    /// expansion `rand_core` 0.6 uses, 4 bytes per round).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Integer ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws a uniform element.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX as u64 {
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// Uniform draw from `0..span` by rejection sampling (`span > 0`).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// SplitMix64 finalizer: a strong 64-bit mixing function (the same
/// constants [`SeedableRng::seed_from_u64`] uses per round).
#[must_use]
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A counter-based RNG stream (shim extension): a generator that is a
/// *pure function* of `(seed, stream, counter)`.
///
/// Unlike a shared sequential generator, draws keyed this way are
/// order-free — consumers can evaluate stream `(s, c)` before or after
/// `(s, c′)` and obtain identical values, which is what makes batched
/// (speculatively reordered) noisy simulations bit-identical to their
/// serial counterparts by construction, and what lets crash-safe
/// journals resume a fault trace from counters alone, with no RNG
/// state to persist.
#[must_use]
pub fn counter_rng(seed: u64, stream: u64, counter: u64) -> rngs::SmallRng {
    let h = splitmix(splitmix(splitmix(seed) ^ stream) ^ counter);
    rngs::SmallRng::seed_from_u64(h)
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform draw from an integer range, e.g. `rng.gen_range(0..=i)`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast generator: PCG-64-MCG with XSL-RR output (the
    /// algorithm the real `rand 0.8` `SmallRng` uses on 64-bit
    /// targets).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u128,
    }

    const MULTIPLIER: u128 = 0x2360_ED05_1FC6_5DA4_4385_DF64_9FCC_F645;

    impl SmallRng {
        /// Exports the full generator state (shim extension, used by
        /// crash-safe journals to persist and restore an in-flight
        /// RNG exactly; the real `rand` would use serde for this).
        #[must_use]
        pub fn state_bytes(&self) -> [u8; 16] {
            self.state.to_le_bytes()
        }

        /// Rebuilds a generator from [`SmallRng::state_bytes`] output.
        /// Unlike [`SeedableRng::from_seed`] this restores the state
        /// verbatim (an MCG state is always odd, so restored bytes
        /// from a live generator are valid as-is).
        #[must_use]
        pub fn from_state_bytes(bytes: [u8; 16]) -> Self {
            Self { state: u128::from_le_bytes(bytes) | 1 }
        }

        fn step(&mut self) -> u64 {
            self.state = self.state.wrapping_mul(MULTIPLIER);
            let rot = (self.state >> 122) as u32;
            let xsl = ((self.state >> 64) as u64) ^ (self.state as u64);
            xsl.rotate_right(rot)
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            self.step() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.step()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            let mut chunks = dest.chunks_exact_mut(8);
            for chunk in &mut chunks {
                chunk.copy_from_slice(&self.step().to_le_bytes());
            }
            let rest = chunks.into_remainder();
            if !rest.is_empty() {
                let bytes = self.step().to_le_bytes();
                rest.copy_from_slice(&bytes[..rest.len()]);
            }
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 16];

        fn from_seed(seed: Self::Seed) -> Self {
            // An MCG must have odd state.
            Self { state: u128::from_le_bytes(seed) | 1 }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn state_roundtrip_resumes_the_exact_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        for _ in 0..5 {
            a.next_u64();
        }
        let mut b = SmallRng::from_state_bytes(a.state_bytes());
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys, "restored state continues the identical stream");
    }

    #[test]
    fn counter_streams_are_pure_and_decorrelated() {
        use super::counter_rng;
        // Purity: the same key reproduces the same draws regardless of
        // evaluation order or interleaving.
        let a: Vec<u64> = (0..4).map(|c| counter_rng(7, 1, c).next_u64()).collect();
        let b: Vec<u64> = (0..4).rev().map(|c| counter_rng(7, 1, c).next_u64()).collect();
        assert_eq!(a, b.into_iter().rev().collect::<Vec<_>>());
        // Sensitivity: every key component perturbs the stream.
        assert_ne!(counter_rng(7, 1, 0).next_u64(), counter_rng(8, 1, 0).next_u64());
        assert_ne!(counter_rng(7, 1, 0).next_u64(), counter_rng(7, 2, 0).next_u64());
        assert_ne!(counter_rng(7, 1, 0).next_u64(), counter_rng(7, 1, 1).next_u64());
    }

    #[test]
    fn fill_bytes_covers_partial_tail() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for i in 0..200usize {
            let v = rng.gen_range(0..=i);
            assert!(v <= i);
        }
        for _ in 0..200 {
            let v = rng.gen_range(10u8..20);
            assert!((10..20).contains(&v));
        }
        // All residues of a small non-power-of-two range appear.
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[rng.gen_range(0usize..3)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
