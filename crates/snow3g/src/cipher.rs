//! The SNOW 3G cipher: `γ(K, IV)` loading, initialization, and
//! keystream generation.

use core::fmt;

use crate::fsm::Fsm;
use crate::lfsr::{Lfsr, LfsrState};
use crate::INIT_ROUNDS;

/// A 128-bit SNOW 3G key as four 32-bit words `(k0, k1, k2, k3)`.
///
/// The standard hex notation `2BD6459F82C5B300952C49104881FF48` reads
/// left to right as `k0, k1, k2, k3` (the paper recovers the key from
/// LFSR stages `s4..s7 = k0..k3`).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Key(pub [u32; 4]);

/// A 128-bit SNOW 3G initialization vector as four 32-bit words
/// `(iv0, iv1, iv2, iv3)`, read left to right from the hex notation.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Iv(pub [u32; 4]);

impl Key {
    /// Parses a key from its 16-byte big-endian representation.
    #[must_use]
    pub fn from_bytes(b: &[u8; 16]) -> Self {
        Self(words_from_bytes(b))
    }

    /// The 16-byte big-endian representation.
    #[must_use]
    pub fn to_bytes(self) -> [u8; 16] {
        words_to_bytes(self.0)
    }
}

impl Iv {
    /// Parses an IV from its 16-byte big-endian representation.
    #[must_use]
    pub fn from_bytes(b: &[u8; 16]) -> Self {
        Self(words_from_bytes(b))
    }

    /// The 16-byte big-endian representation.
    #[must_use]
    pub fn to_bytes(self) -> [u8; 16] {
        words_to_bytes(self.0)
    }
}

fn words_from_bytes(b: &[u8; 16]) -> [u32; 4] {
    let mut w = [0u32; 4];
    for (i, chunk) in b.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes(chunk.try_into().expect("chunk of 4"));
    }
    w
}

fn words_to_bytes(w: [u32; 4]) -> [u8; 16] {
    let mut b = [0u8; 16];
    for (i, word) in w.iter().enumerate() {
        b[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    b
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Key({:08X} {:08X} {:08X} {:08X})", self.0[0], self.0[1], self.0[2], self.0[3])
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:08X}{:08X}{:08X}{:08X}", self.0[0], self.0[1], self.0[2], self.0[3])
    }
}

impl fmt::Debug for Iv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Iv({:08X} {:08X} {:08X} {:08X})", self.0[0], self.0[1], self.0[2], self.0[3])
    }
}

impl fmt::Display for Iv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:08X}{:08X}{:08X}{:08X}", self.0[0], self.0[1], self.0[2], self.0[3])
    }
}

/// Computes the loaded LFSR state `γ(K, IV)` (spec §4.1, Section III of
/// the paper), with `1` denoting the all-1s word.
#[must_use]
pub fn gamma(key: Key, iv: Iv) -> LfsrState {
    let [k0, k1, k2, k3] = key.0;
    let [iv0, iv1, iv2, iv3] = iv.0;
    let ones = u32::MAX;
    [
        k0 ^ ones,       // s0
        k1 ^ ones,       // s1
        k2 ^ ones,       // s2
        k3 ^ ones,       // s3
        k0,              // s4
        k1,              // s5
        k2,              // s6
        k3,              // s7
        k0 ^ ones,       // s8
        k1 ^ ones ^ iv3, // s9
        k2 ^ ones ^ iv2, // s10
        k3 ^ ones,       // s11
        k0 ^ iv1,        // s12
        k1,              // s13
        k2,              // s14
        k3 ^ iv0,        // s15
    ]
}

/// The SNOW 3G stream cipher.
///
/// `new` performs the full 32-round initialization; each subsequent
/// [`Snow3g::keystream_word`] yields one 32-bit keystream word.
///
/// # Example
///
/// ```
/// use snow3g::{Key, Iv, Snow3g};
///
/// let key = Key([0x2BD6459F, 0x82C5B300, 0x952C4910, 0x4881FF48]);
/// let iv = Iv([0xEA024714, 0xAD5C4D84, 0xDF1F9B25, 0x1C0BF45F]);
/// let z = Snow3g::new(key, iv).keystream(2);
/// assert_eq!(z, vec![0xABEE9704, 0x7AC31373]);
/// ```
#[derive(Debug, Clone)]
pub struct Snow3g {
    lfsr: Lfsr,
    fsm: Fsm,
}

impl Snow3g {
    /// Creates and initializes the cipher: loads `γ(K, IV)`, runs the
    /// 32 initialization rounds, then performs the keystream-mode
    /// transition clocking whose FSM output is discarded (spec §5.4,
    /// "the FSM is clocked once ... and the LFSR is clocked in
    /// keystream mode").
    #[must_use]
    pub fn new(key: Key, iv: Iv) -> Self {
        let mut c = Self { lfsr: Lfsr::from_state(gamma(key, iv)), fsm: Fsm::new() };
        for _ in 0..INIT_ROUNDS {
            let f = c.fsm.clock(c.lfsr.stage(15), c.lfsr.stage(5));
            c.lfsr.clock_init(f);
        }
        // Transition to keystream mode: one clocking with the FSM
        // output discarded.
        let _ = c.fsm.clock(c.lfsr.stage(15), c.lfsr.stage(5));
        c.lfsr.clock_keystream();
        c
    }

    /// Produces the next 32-bit keystream word
    /// `z = F ⊕ s₀` (spec §5.4).
    pub fn keystream_word(&mut self) -> u32 {
        let f = self.fsm.clock(self.lfsr.stage(15), self.lfsr.stage(5));
        let z = f ^ self.lfsr.stage(0);
        self.lfsr.clock_keystream();
        z
    }

    /// Produces `n` keystream words.
    pub fn keystream(&mut self, n: usize) -> Vec<u32> {
        (0..n).map(|_| self.keystream_word()).collect()
    }

    /// The current LFSR state (for analysis and testing).
    #[must_use]
    pub fn lfsr_state(&self) -> LfsrState {
        self.lfsr.state()
    }

    /// The current FSM registers `(R1, R2, R3)`.
    #[must_use]
    pub fn fsm_registers(&self) -> (u32, u32, u32) {
        self.fsm.registers()
    }

    /// Encrypts (or, identically, decrypts) `data` in place by XORing
    /// it with the keystream, consuming one keystream word per 4 bytes
    /// (big-endian), with a final partial word for trailing bytes.
    pub fn apply_keystream(&mut self, data: &mut [u8]) {
        let mut chunks = data.chunks_exact_mut(4);
        for chunk in &mut chunks {
            let z = self.keystream_word().to_be_bytes();
            for (b, k) in chunk.iter_mut().zip(z) {
                *b ^= k;
            }
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let z = self.keystream_word().to_be_bytes();
            for (b, k) in rem.iter_mut().zip(z) {
                *b ^= k;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_structure_redundancy() {
        let key = Key([1, 2, 3, 4]);
        let iv = Iv([10, 20, 30, 40]);
        let s = gamma(key, iv);
        // The redundancy exploited by key recovery: several stages are
        // forced equal by construction.
        assert_eq!(s[0], s[8]);
        assert_eq!(s[3], s[11]);
        assert_eq!(s[5], s[13]);
        assert_eq!(s[6], s[14]);
        assert_eq!(s[4], s[0] ^ u32::MAX);
        assert_eq!(s[7], s[3] ^ u32::MAX);
    }

    #[test]
    fn key_iv_byte_roundtrip() {
        let key = Key([0x2BD6459F, 0x82C5B300, 0x952C4910, 0x4881FF48]);
        assert_eq!(Key::from_bytes(&key.to_bytes()), key);
        assert_eq!(key.to_bytes()[..4], [0x2B, 0xD6, 0x45, 0x9F], "big-endian word order");
        let iv = Iv([0xEA024714, 0xAD5C4D84, 0xDF1F9B25, 0x1C0BF45F]);
        assert_eq!(Iv::from_bytes(&iv.to_bytes()), iv);
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let key = Key([5, 6, 7, 8]);
        let iv = Iv([9, 10, 11, 12]);
        let mut data = b"attack at dawn - bitstreams beware".to_vec();
        let orig = data.clone();
        Snow3g::new(key, iv).apply_keystream(&mut data);
        assert_ne!(data, orig);
        Snow3g::new(key, iv).apply_keystream(&mut data);
        assert_eq!(data, orig);
    }

    #[test]
    fn keystream_depends_on_key_and_iv() {
        let z1 = Snow3g::new(Key([1, 2, 3, 4]), Iv([0, 0, 0, 0])).keystream(4);
        let z2 = Snow3g::new(Key([1, 2, 3, 5]), Iv([0, 0, 0, 0])).keystream(4);
        let z3 = Snow3g::new(Key([1, 2, 3, 4]), Iv([0, 0, 0, 1])).keystream(4);
        assert_ne!(z1, z2);
        assert_ne!(z1, z3);
    }

    #[test]
    fn display_formats() {
        let key = Key([0x2BD6459F, 0x82C5B300, 0x952C4910, 0x4881FF48]);
        assert_eq!(key.to_string(), "2BD6459F82C5B300952C49104881FF48");
    }
}
