//! Reference test vectors.
//!
//! Two sources of ground truth pin this implementation:
//!
//! 1. **ETSI/SAGE implementors' test data, Test Sets 1 and 4** — the
//!    unfaulted keystream, including the long-run word `z_2500` of
//!    Test Set 4. (Sets 2 and 3 carry implementation-pinned
//!    regression keystreams instead — see their doc comments.)
//! 2. **The paper's Tables III, IV and V** — keystreams of the faulted
//!    device and the recovered initial LFSR state. These are exactly
//!    reproducible in software because they are determined by the
//!    algorithm and the (test-set) key/IV alone. Notably, the key and
//!    IV the paper's experiment used are recoverable from its Table V
//!    and turn out to be ETSI Test Set 1.

use crate::cipher::{Iv, Key};

/// ETSI Test Set 1 key: `2BD6459F82C5B300952C49104881FF48`.
pub const TEST_SET_1_KEY: Key = Key([0x2BD6459F, 0x82C5B300, 0x952C4910, 0x4881FF48]);

/// ETSI Test Set 1 IV: `EA024714AD5C4D84DF1F9B251C0BF45F`.
pub const TEST_SET_1_IV: Iv = Iv([0xEA024714, 0xAD5C4D84, 0xDF1F9B25, 0x1C0BF45F]);

/// First two keystream words of ETSI Test Set 1.
pub const TEST_SET_1_KEYSTREAM: [u32; 2] = [0xABEE9704, 0x7AC31373];

/// Test Set 2 key: `8CE33E2CC3C0B5FC1F3DE8A6DC66B1F3`.
pub const TEST_SET_2_KEY: Key = Key([0x8CE33E2C, 0xC3C0B5FC, 0x1F3DE8A6, 0xDC66B1F3]);

/// Test Set 2 IV: `D3C5D592327FB11C4035C6680AF8C6D1`.
pub const TEST_SET_2_IV: Iv = Iv([0xD3C5D592, 0x327FB11C, 0x4035C668, 0x0AF8C6D1]);

/// First two keystream words for the Test Set 2 key/IV.
///
/// **Regression pin, not an external anchor:** unlike Sets 1 and 4,
/// these words are produced by this implementation (whose conformance
/// the other two sets establish); they freeze cross-set behaviour
/// against drift rather than tie it to the published test data.
pub const TEST_SET_2_KEYSTREAM: [u32; 2] = [0xAFABB6C6, 0x1B2919F6];

/// Test Set 3 key: `4035C6680AF8C6D18CE33E2CC3C0B5FC`.
pub const TEST_SET_3_KEY: Key = Key([0x4035C668, 0x0AF8C6D1, 0x8CE33E2C, 0xC3C0B5FC]);

/// Test Set 3 IV: `62A540981BA6F9B74592B0E78690F71B`.
pub const TEST_SET_3_IV: Iv = Iv([0x62A54098, 0x1BA6F9B7, 0x4592B0E7, 0x8690F71B]);

/// First two keystream words for the Test Set 3 key/IV.
///
/// **Regression pin** — see [`TEST_SET_2_KEYSTREAM`] for the caveat.
pub const TEST_SET_3_KEYSTREAM: [u32; 2] = [0x2EA355DA, 0xCFD2C1DC];

/// ETSI Test Set 4 key: `0DED7263109CF92E3352255A140E0F76`.
pub const TEST_SET_4_KEY: Key = Key([0x0DED7263, 0x109CF92E, 0x3352255A, 0x140E0F76]);

/// ETSI Test Set 4 IV: `6B68079A41A7C4C91BEFD79F7FDCC233`.
pub const TEST_SET_4_IV: Iv = Iv([0x6B68079A, 0x41A7C4C9, 0x1BEFD79F, 0x7FDCC233]);

/// First two keystream words of ETSI Test Set 4 (the long test set).
pub const TEST_SET_4_KEYSTREAM: [u32; 2] = [0xD712C05C, 0xA937C2A6];

/// Keystream word `z_2500` of ETSI Test Set 4 (index 2499), pinning
/// the long-run state evolution, not just the initialization.
pub const TEST_SET_4_Z2500: u32 = 0x9C0DB3AA;

/// Table III of the paper: the key-independent keystream generated
/// when the FSM output is stuck to 0 during initialization and the
/// LFSR is initialized to the all-0 state (faults `α₁ + β`).
pub const PAPER_TABLE_III: [u32; 16] = [
    0xa1fb4788, 0xe4382f8e, 0x3b72471c, 0x33ebb59a, 0x32ac43c7, 0x5eebfd82, 0x3a325fd4, 0x1e1d7001,
    0xb7f15767, 0x3282c5b0, 0x103da78f, 0xe42761e4, 0xc6ded1bb, 0x089fa36c, 0x01c7c690, 0xbf921256,
];

/// Table IV of the paper: the keystream generated when the FSM output
/// is stuck to 0 during both initialization and keystream generation
/// (fault `α`), for the Test Set 1 key/IV. These 16 words equal the
/// LFSR state `S³³`.
pub const PAPER_TABLE_IV: [u32; 16] = [
    0x3ffe4851, 0x35d1c393, 0x5914acef, 0xe98446cc, 0x689782d9, 0x8abdb7fc, 0xa11b0377, 0x5a2dd294,
    0x5deb29fa, 0xc2c6009a, 0xa82ee62f, 0x925268ed, 0xd04e2c33, 0x3890311b, 0xe8d27b84, 0xa70aeeaa,
];

/// Table V of the paper: the recovered initial LFSR state
/// `S⁰ = γ(K, IV)` obtained by reversing the LFSR 33 steps from
/// Table IV.
pub const PAPER_TABLE_V: [u32; 16] = [
    0xd429ba60, 0x7d3a4cff, 0x6ad3b6ef, 0xb77e00b7, 0x2bd6459f, 0x82c5b300, 0x952c4910, 0x4881ff48,
    0xd429ba60, 0x6131b8a0, 0xb5cc2dca, 0xb77e00b7, 0x868a081b, 0x82c5b300, 0x952c4910, 0xa283b85c,
];

/// The key the paper's experiment recovered (its Section VI-D.3),
/// printed there as `0x2BD6459F82C5B300952C49104881FF48`.
pub const PAPER_RECOVERED_KEY: Key = TEST_SET_1_KEY;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cipher::{gamma, Snow3g};
    use crate::fault::{FaultSpec, FaultySnow3g};
    use crate::lfsr::Lfsr;
    use crate::recover::recover_key;

    #[test]
    fn etsi_test_set_1() {
        let z = Snow3g::new(TEST_SET_1_KEY, TEST_SET_1_IV).keystream(2);
        assert_eq!(z, TEST_SET_1_KEYSTREAM);
    }

    #[test]
    fn paper_table_iii_exact() {
        let z = FaultySnow3g::new(TEST_SET_1_KEY, TEST_SET_1_IV, FaultSpec::key_independent())
            .keystream(16);
        assert_eq!(z, PAPER_TABLE_III, "key-independent keystream must match Table III");
    }

    #[test]
    fn paper_table_iii_is_key_independent() {
        let z =
            FaultySnow3g::new(Key([0; 4]), Iv([0; 4]), FaultSpec::key_independent()).keystream(16);
        assert_eq!(z, PAPER_TABLE_III);
    }

    #[test]
    fn paper_table_iv_exact() {
        let z = FaultySnow3g::new(TEST_SET_1_KEY, TEST_SET_1_IV, FaultSpec::alpha()).keystream(16);
        assert_eq!(z, PAPER_TABLE_IV, "α-faulted keystream must match Table IV");
    }

    #[test]
    fn paper_table_v_exact() {
        let mut lfsr = Lfsr::from_state(PAPER_TABLE_IV);
        lfsr.unclock_by(crate::REVERSAL_STEPS);
        assert_eq!(lfsr.state(), PAPER_TABLE_V, "reversed state must match Table V");
        assert_eq!(PAPER_TABLE_V, gamma(TEST_SET_1_KEY, TEST_SET_1_IV));
    }

    #[test]
    fn paper_key_recovery_end_to_end() {
        let secret = recover_key(&PAPER_TABLE_IV).expect("Table IV yields the key");
        assert_eq!(secret.key, PAPER_RECOVERED_KEY);
        assert_eq!(secret.key.to_string(), "2BD6459F82C5B300952C49104881FF48");
        assert_eq!(secret.initial_state, PAPER_TABLE_V);
    }
}
