//! A spec-faithful implementation of the SNOW 3G stream cipher with a
//! faultable model, LFSR reversal and key recovery.
//!
//! SNOW 3G (ETSI/SAGE, 2009) is the core of the UEA2/UIA2 (3G),
//! 128-EEA1/128-EIA1 (LTE) and 128-NEA1/128-NIA1 (5G) algorithms. This
//! crate provides:
//!
//! * [`Snow3g`] — the cipher itself (LFSR over GF(2³²) + FSM),
//!   validated against the ETSI test sets;
//! * [`fault`] — a fault-injection model reproducing the stuck-at-0
//!   faults of the DATE 2020 bitstream-modification attack (FSM output
//!   `v = 0` on the LFSR-feedback and/or keystream paths, and the all-0
//!   LFSR load used for key-independent exploration);
//! * [`recover`] — key extraction from a faulty keystream by reversing
//!   the (linearised) LFSR 33 steps back to the loaded state
//!   `γ(K, IV)`.
//!
//! # Example
//!
//! ```
//! use snow3g::{Key, Iv, Snow3g};
//!
//! let key = Key([0x2BD6459F, 0x82C5B300, 0x952C4910, 0x4881FF48]);
//! let iv = Iv([0xEA024714, 0xAD5C4D84, 0xDF1F9B25, 0x1C0BF45F]);
//! let mut cipher = Snow3g::new(key, iv);
//! let z = cipher.keystream_word();
//! assert_eq!(z, 0xABEE9704);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cipher;
pub mod fault;
pub mod fsm;
pub mod lfsr;
pub mod recover;
pub mod tables;
pub mod vectors;

pub use cipher::{Iv, Key, Snow3g};
pub use fault::{FaultSpec, FaultySnow3g};
pub use lfsr::{Lfsr, LfsrState};
pub use recover::{recover_key, RecoverKeyError, RecoveredSecret};

/// Number of two-step initialization rounds performed by SNOW 3G.
pub const INIT_ROUNDS: usize = 32;

/// Number of LFSR clockings between the loaded state `S^0 = γ(K, IV)`
/// and the state `S^33` exposed by the faulty keystream: 32
/// initialization rounds plus the one keystream-mode clocking whose FSM
/// output is discarded.
pub const REVERSAL_STEPS: usize = 33;
