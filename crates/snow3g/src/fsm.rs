//! The SNOW 3G finite state machine: registers `R1`, `R2`, `R3`, the
//! S-boxes `S1`/`S2`, and the output word `F = (s₁₅ ⊞ R1) ⊕ R2`.

use core::fmt;

use crate::tables::{s1, s2};

/// The SNOW 3G FSM (spec §5).
///
/// # Example
///
/// ```
/// use snow3g::fsm::Fsm;
///
/// let mut fsm = Fsm::new();
/// // From the all-0 state, the first output is 0 ...
/// assert_eq!(fsm.clock(0, 0), 0);
/// // ... but the state diverges from 0 afterwards because the
/// // S-boxes map 0 to a non-zero word.
/// assert_ne!(fsm.clock(0, 0), 0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Fsm {
    r1: u32,
    r2: u32,
    r3: u32,
}

impl Fsm {
    /// Creates an FSM with all registers zero, as at the start of
    /// initialization.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an FSM from explicit register values.
    #[must_use]
    pub fn from_registers(r1: u32, r2: u32, r3: u32) -> Self {
        Self { r1, r2, r3 }
    }

    /// The registers `(R1, R2, R3)`.
    #[must_use]
    pub fn registers(&self) -> (u32, u32, u32) {
        (self.r1, self.r2, self.r3)
    }

    /// Clocks the FSM (spec §5.1): computes the output
    /// `F = (s₁₅ ⊞ R1) ⊕ R2` from the *current* registers, then updates
    /// `R1 ← R2 ⊞ (R3 ⊕ s₅)`, `R3 ← S2(R2)`, `R2 ← S1(R1)`.
    ///
    /// `s15` and `s5` are the corresponding LFSR stages sampled before
    /// the LFSR itself is clocked.
    pub fn clock(&mut self, s15: u32, s5: u32) -> u32 {
        let f = s15.wrapping_add(self.r1) ^ self.r2;
        let r = self.r2.wrapping_add(self.r3 ^ s5);
        self.r3 = s2(self.r2);
        self.r2 = s1(self.r1);
        self.r1 = r;
        f
    }

    /// Computes the output word without updating the registers.
    #[must_use]
    pub fn peek_output(&self, s15: u32) -> u32 {
        s15.wrapping_add(self.r1) ^ self.r2
    }
}

impl fmt::Debug for Fsm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fsm {{ r1: {:08x}, r2: {:08x}, r3: {:08x} }}", self.r1, self.r2, self.r3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::{s1, s2};

    #[test]
    fn first_clock_from_zero() {
        let mut fsm = Fsm::new();
        let f = fsm.clock(0, 0);
        assert_eq!(f, 0);
        let (r1, r2, r3) = fsm.registers();
        assert_eq!(r1, 0);
        assert_eq!(r2, s1(0));
        assert_eq!(r3, s2(0));
    }

    #[test]
    fn output_uses_pre_update_registers() {
        let mut fsm = Fsm::from_registers(0x11111111, 0x22222222, 0x33333333);
        let s15: u32 = 0xAAAAAAAA;
        let expect = s15.wrapping_add(0x11111111) ^ 0x22222222;
        assert_eq!(fsm.peek_output(s15), expect);
        assert_eq!(fsm.clock(s15, 0), expect);
    }

    #[test]
    fn update_order_matches_spec() {
        // R3 must be computed from the OLD R2 and R2 from the OLD R1.
        let mut fsm = Fsm::from_registers(0xCAFEBABE, 0x8BADF00D, 0x0D15EA5E);
        let s5 = 0x01020304;
        fsm.clock(0, s5);
        let (r1, r2, r3) = fsm.registers();
        assert_eq!(r1, 0x8BADF00Du32.wrapping_add(0x0D15EA5E ^ s5));
        assert_eq!(r2, s1(0xCAFEBABE));
        assert_eq!(r3, s2(0x8BADF00D));
    }
}
