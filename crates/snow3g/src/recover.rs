//! Key extraction from the faulty keystream (Section VI-A of the
//! paper).
//!
//! Under the fault `α` (`v = 0` in both paths), the initialization is
//! linear and the 16 keystream words equal the LFSR state `S³³`.
//! Reversing the LFSR 33 steps yields `S⁰ = γ(K, IV)`, from which the
//! key is read out of stages `s₄..s₇` and the IV out of `s₉`, `s₁₀`,
//! `s₁₂`, `s₁₅`.

use core::fmt;

use crate::cipher::{gamma, Iv, Key};
use crate::fault::{FaultSpec, FaultySnow3g};
use crate::lfsr::{Lfsr, LfsrState};
use crate::REVERSAL_STEPS;

/// The secrets recovered from a faulty keystream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveredSecret {
    /// The recovered 128-bit key.
    pub key: Key,
    /// The recovered 128-bit IV.
    pub iv: Iv,
    /// The reconstructed loaded state `S⁰ = γ(K, IV)` (the paper's
    /// Table V).
    pub initial_state: LfsrState,
    /// The LFSR state `S³³` read directly from the keystream (the
    /// paper's Table IV, reinterpreted).
    pub exposed_state: LfsrState,
}

/// An error from [`recover_key`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoverKeyError {
    /// Fewer than 16 keystream words were provided.
    TooFewWords {
        /// Number of words provided.
        got: usize,
    },
    /// The reversed state does not have the `γ(K, IV)` structure; the
    /// keystream was probably not produced by the fault `α`.
    NotAGammaState {
        /// First stage index at which the structural redundancy check
        /// failed.
        stage: usize,
    },
}

impl fmt::Display for RecoverKeyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoverKeyError::TooFewWords { got } => {
                write!(f, "need 16 faulty keystream words, got {got}")
            }
            RecoverKeyError::NotAGammaState { stage } => {
                write!(
                    f,
                    "reversed state is not gamma(K, IV): redundancy check failed at stage s{stage}"
                )
            }
        }
    }
}

impl std::error::Error for RecoverKeyError {}

/// Checks the structural redundancy that `γ(K, IV)` imposes on an LFSR
/// state: `s₀ = s₈`, `s₃ = s₁₁`, `s₅ = s₁₃`, `s₆ = s₁₄`,
/// `s₄ = ¬s₀`, `s₇ = ¬s₃`, `s₁ = ¬s₅`, `s₂ = ¬s₆`.
///
/// Returns the index of the first stage whose constraint fails, or
/// `None` if the state is structurally a valid `γ(K, IV)`.
#[must_use]
pub fn gamma_structure_violation(s: &LfsrState) -> Option<usize> {
    let ones = u32::MAX;
    if s[8] != s[0] {
        return Some(8);
    }
    if s[11] != s[3] {
        return Some(11);
    }
    if s[13] != s[5] {
        return Some(13);
    }
    if s[14] != s[6] {
        return Some(14);
    }
    if s[4] != s[0] ^ ones {
        return Some(4);
    }
    if s[7] != s[3] ^ ones {
        return Some(7);
    }
    if s[1] != s[5] ^ ones {
        return Some(1);
    }
    if s[2] != s[6] ^ ones {
        return Some(2);
    }
    None
}

/// Recovers the key (and IV) from 16 words of keystream generated
/// under the fault `α`.
///
/// The keystream words are interpreted as the LFSR state `S³³`
/// (`z₁ = s₀`, ..., `z₁₆ = s₁₅`), the LFSR is reversed
/// [`REVERSAL_STEPS`] times, the result is validated against the
/// `γ(K, IV)` structure, and the key is read from `s₄..s₇`.
///
/// The recovered secret is verified by re-simulating the faulty device
/// with the software model and comparing keystreams, exactly as the
/// paper's step 6 ("Simulate the keystream Z* using a software model").
///
/// # Errors
///
/// * [`RecoverKeyError::TooFewWords`] if fewer than 16 words are given.
/// * [`RecoverKeyError::NotAGammaState`] if the reversed state fails
///   the structural check (wrong fault, wrong device, or corrupted
///   keystream).
///
/// # Example
///
/// ```
/// use snow3g::{recover_key, FaultSpec, FaultySnow3g, Key, Iv};
///
/// # fn main() -> Result<(), snow3g::RecoverKeyError> {
/// let key = Key([0x2BD6459F, 0x82C5B300, 0x952C4910, 0x4881FF48]);
/// let iv = Iv([0xEA024714, 0xAD5C4D84, 0xDF1F9B25, 0x1C0BF45F]);
/// let z = FaultySnow3g::new(key, iv, FaultSpec::alpha()).keystream(16);
/// let secret = recover_key(&z)?;
/// assert_eq!(secret.key, key);
/// assert_eq!(secret.iv, iv);
/// # Ok(())
/// # }
/// ```
pub fn recover_key(faulty_keystream: &[u32]) -> Result<RecoveredSecret, RecoverKeyError> {
    if faulty_keystream.len() < 16 {
        return Err(RecoverKeyError::TooFewWords { got: faulty_keystream.len() });
    }
    let mut exposed = [0u32; 16];
    exposed.copy_from_slice(&faulty_keystream[..16]);

    let mut lfsr = Lfsr::from_state(exposed);
    lfsr.unclock_by(REVERSAL_STEPS);
    let s0 = lfsr.state();

    if let Some(stage) = gamma_structure_violation(&s0) {
        return Err(RecoverKeyError::NotAGammaState { stage });
    }

    let key = Key([s0[4], s0[5], s0[6], s0[7]]);
    let ones = u32::MAX;
    let iv = Iv([
        s0[15] ^ key.0[3],
        s0[12] ^ key.0[0],
        s0[10] ^ key.0[2] ^ ones,
        s0[9] ^ key.0[1] ^ ones,
    ]);

    // Paranoia: γ(recovered) must reproduce the reversed state exactly
    // (covers the stages not pinned by the redundancy check).
    debug_assert_eq!(gamma(key, iv), s0);

    // Step 6 of the paper's verification: re-simulate the fault with
    // the software model and compare the keystreams.
    let resim = FaultySnow3g::new(key, iv, FaultSpec::alpha()).keystream(16);
    if resim != faulty_keystream[..16] {
        // The structure happened to match but the dynamics do not;
        // treat as a failed recovery rather than returning a bad key.
        return Err(RecoverKeyError::NotAGammaState { stage: 0 });
    }

    Ok(RecoveredSecret { key, iv, initial_state: s0, exposed_state: exposed })
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: Key = Key([0x2BD6459F, 0x82C5B300, 0x952C4910, 0x4881FF48]);
    const IV: Iv = Iv([0xEA024714, 0xAD5C4D84, 0xDF1F9B25, 0x1C0BF45F]);

    #[test]
    fn recovers_test_set_1() {
        let z = FaultySnow3g::new(KEY, IV, FaultSpec::alpha()).keystream(16);
        let secret = recover_key(&z).expect("recovery succeeds");
        assert_eq!(secret.key, KEY);
        assert_eq!(secret.iv, IV);
        assert_eq!(secret.initial_state, gamma(KEY, IV));
    }

    #[test]
    fn recovers_random_keys() {
        let mut x: u32 = 0xC0FFEE;
        let mut next = move || {
            x = x.wrapping_mul(0x9E3779B9).wrapping_add(7);
            x
        };
        for _ in 0..32 {
            let key = Key([next(), next(), next(), next()]);
            let iv = Iv([next(), next(), next(), next()]);
            let z = FaultySnow3g::new(key, iv, FaultSpec::alpha()).keystream(16);
            let secret = recover_key(&z).expect("recovery succeeds");
            assert_eq!(secret.key, key);
            assert_eq!(secret.iv, iv);
        }
    }

    #[test]
    fn rejects_short_keystream() {
        let err = recover_key(&[0u32; 5]).unwrap_err();
        assert_eq!(err, RecoverKeyError::TooFewWords { got: 5 });
    }

    #[test]
    fn rejects_healthy_keystream() {
        // An unfaulted keystream will (overwhelmingly) fail the
        // structure check.
        let z = crate::cipher::Snow3g::new(KEY, IV).keystream(16);
        assert!(matches!(recover_key(&z), Err(RecoverKeyError::NotAGammaState { .. })));
    }

    #[test]
    fn rejects_wrong_fault() {
        // A keystream from the key-independent configuration is not
        // S^33 of a gamma-loaded LFSR.
        let z = FaultySnow3g::new(KEY, IV, FaultSpec::key_independent()).keystream(16);
        assert!(recover_key(&z).is_err());
    }

    #[test]
    fn extra_words_ignored() {
        let z = FaultySnow3g::new(KEY, IV, FaultSpec::alpha()).keystream(32);
        let secret = recover_key(&z).expect("recovery succeeds");
        assert_eq!(secret.key, KEY);
    }
}
