//! Fault-injection model for SNOW 3G.
//!
//! The DATE 2020 attack injects stuck-at-0 faults into the node `v`
//! that distributes the FSM output word `W`, by rewriting the LUTs
//! that absorb `v`:
//!
//! * on the LFSR-feedback path (the paper's `LUT₂`/`LUT₃`, fault `α₁`):
//!   the initialization update becomes purely linear;
//! * on the keystream path (`LUT₁`, fault `α₂` applied to all 32
//!   bits): the keystream becomes `z_t = s₀`;
//! * fault `α` is both at once — the configuration used for key
//!   extraction;
//! * fault `β` makes the LFSR load the all-0 vector instead of
//!   `γ(K, IV)` — the key-independent exploration device of
//!   Section VI-D.
//!
//! [`FaultySnow3g`] is the *software model* of a faulted device; the
//! `fpga-sim` crate produces the same behaviour from an actually
//! modified bitstream, and the integration tests assert both agree.

use core::fmt;

use crate::cipher::{gamma, Iv, Key};
use crate::fsm::Fsm;
use crate::lfsr::{Lfsr, LfsrState};
use crate::INIT_ROUNDS;

/// Which stuck-at-0 faults are injected into the device.
///
/// # Example
///
/// ```
/// use snow3g::FaultSpec;
///
/// let alpha = FaultSpec::alpha();
/// assert!(alpha.fsm_to_lfsr_zero && alpha.fsm_to_output_zero && !alpha.load_zero);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FaultSpec {
    /// `v = 0` on the feedback path: the LFSR consumes 0 instead of
    /// the FSM output during initialization (`LUT₂`/`LUT₃` rewritten).
    pub fsm_to_lfsr_zero: bool,
    /// `v = 0` on the keystream path: `z_t = s₀` (`LUT₁` rewritten for
    /// all 32 bits).
    pub fsm_to_output_zero: bool,
    /// The LFSR loads the all-0 vector instead of `γ(K, IV)`
    /// (load-MUX LUTs rewritten; the paper's fault `β`).
    pub load_zero: bool,
}

impl FaultSpec {
    /// No faults: the device behaves as specified.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// The paper's fault `α`: `v = 0` in both paths. Used for key
    /// extraction (Section VI-A): initialization becomes linear and
    /// the keystream exposes the LFSR state `S³³`.
    #[must_use]
    pub fn alpha() -> Self {
        Self { fsm_to_lfsr_zero: true, fsm_to_output_zero: true, load_zero: false }
    }

    /// The paper's fault `α₁` alone: `v = 0` only on the feedback
    /// path.
    #[must_use]
    pub fn alpha1() -> Self {
        Self { fsm_to_lfsr_zero: true, fsm_to_output_zero: false, load_zero: false }
    }

    /// The key-independent configuration of Section VI-D: `α₁ + β`.
    /// The LFSR stays all-0 forever, so the keystream equals the FSM
    /// output sequence — independent of `K` and `IV` (Table III).
    #[must_use]
    pub fn key_independent() -> Self {
        Self { fsm_to_lfsr_zero: true, fsm_to_output_zero: false, load_zero: true }
    }

    /// Whether any fault is active.
    #[must_use]
    pub fn is_any(self) -> bool {
        self.fsm_to_lfsr_zero || self.fsm_to_output_zero || self.load_zero
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if self.fsm_to_lfsr_zero {
            parts.push("v=0@feedback");
        }
        if self.fsm_to_output_zero {
            parts.push("v=0@output");
        }
        if self.load_zero {
            parts.push("load=0");
        }
        if parts.is_empty() {
            write!(f, "no-fault")
        } else {
            write!(f, "{}", parts.join("+"))
        }
    }
}

/// A SNOW 3G device with stuck-at-0 faults injected, mirroring what a
/// modified bitstream produces in hardware.
///
/// # Example
///
/// ```
/// use snow3g::{FaultSpec, FaultySnow3g, Key, Iv};
///
/// // The key-independent keystream does not depend on K or IV.
/// let z1 = FaultySnow3g::new(Key([1, 2, 3, 4]), Iv([5, 6, 7, 8]), FaultSpec::key_independent())
///     .keystream(4);
/// let z2 = FaultySnow3g::new(Key([9, 9, 9, 9]), Iv([0, 0, 0, 0]), FaultSpec::key_independent())
///     .keystream(4);
/// assert_eq!(z1, z2);
/// ```
#[derive(Debug, Clone)]
pub struct FaultySnow3g {
    lfsr: Lfsr,
    fsm: Fsm,
    faults: FaultSpec,
}

impl FaultySnow3g {
    /// Creates and initializes a faulted device.
    #[must_use]
    pub fn new(key: Key, iv: Iv, faults: FaultSpec) -> Self {
        let loaded = if faults.load_zero { [0u32; 16] } else { gamma(key, iv) };
        let mut c = Self { lfsr: Lfsr::from_state(loaded), fsm: Fsm::new(), faults };
        for _ in 0..INIT_ROUNDS {
            let f = c.fsm.clock(c.lfsr.stage(15), c.lfsr.stage(5));
            let consumed = if faults.fsm_to_lfsr_zero { 0 } else { f };
            c.lfsr.clock_init(consumed);
        }
        let _ = c.fsm.clock(c.lfsr.stage(15), c.lfsr.stage(5));
        c.lfsr.clock_keystream();
        c
    }

    /// Produces the next keystream word under the configured faults.
    pub fn keystream_word(&mut self) -> u32 {
        let f = self.fsm.clock(self.lfsr.stage(15), self.lfsr.stage(5));
        let w = if self.faults.fsm_to_output_zero { 0 } else { f };
        let z = w ^ self.lfsr.stage(0);
        self.lfsr.clock_keystream();
        z
    }

    /// Produces `n` keystream words.
    pub fn keystream(&mut self, n: usize) -> Vec<u32> {
        (0..n).map(|_| self.keystream_word()).collect()
    }

    /// The active fault specification.
    #[must_use]
    pub fn faults(&self) -> FaultSpec {
        self.faults
    }

    /// The current LFSR state (for analysis and testing).
    #[must_use]
    pub fn lfsr_state(&self) -> LfsrState {
        self.lfsr.state()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cipher::Snow3g;

    const KEY: Key = Key([0x2BD6459F, 0x82C5B300, 0x952C4910, 0x4881FF48]);
    const IV: Iv = Iv([0xEA024714, 0xAD5C4D84, 0xDF1F9B25, 0x1C0BF45F]);

    #[test]
    fn no_fault_matches_reference() {
        let a = FaultySnow3g::new(KEY, IV, FaultSpec::none()).keystream(8);
        let b = Snow3g::new(KEY, IV).keystream(8);
        assert_eq!(a, b);
    }

    #[test]
    fn alpha_exposes_lfsr_state() {
        // Under fault α, the 16 keystream words are exactly the LFSR
        // state S^33 (Section VI-A of the paper): z_{t+1} = s_t(S^33).
        let mut dev = FaultySnow3g::new(KEY, IV, FaultSpec::alpha());
        let state_after_init = dev.lfsr_state();
        let z = dev.keystream(16);
        assert_eq!(&z[..], &state_after_init[..]);
    }

    #[test]
    fn alpha_init_is_linear() {
        // With the feedback fault, S^33 = L^33(γ(K, IV)): reversing 33
        // linear steps recovers the loaded state.
        let dev = FaultySnow3g::new(KEY, IV, FaultSpec::alpha());
        let mut lfsr = Lfsr::from_state(dev.lfsr_state());
        lfsr.unclock_by(crate::REVERSAL_STEPS);
        assert_eq!(lfsr.state(), gamma(KEY, IV));
    }

    #[test]
    fn key_independent_keystream_ignores_key() {
        let z1 = FaultySnow3g::new(KEY, IV, FaultSpec::key_independent()).keystream(16);
        let z2 =
            FaultySnow3g::new(Key([0, 0, 0, 0]), Iv([0, 0, 0, 0]), FaultSpec::key_independent())
                .keystream(16);
        assert_eq!(z1, z2);
        // And it is NOT the all-zero stream: the FSM self-evolves.
        assert!(z1.iter().any(|&w| w != 0));
    }

    #[test]
    fn output_fault_alone_still_key_dependent() {
        let z1 =
            FaultySnow3g::new(KEY, IV, FaultSpec { fsm_to_output_zero: true, ..FaultSpec::none() })
                .keystream(4);
        let z2 = FaultySnow3g::new(
            Key([1, 1, 1, 1]),
            IV,
            FaultSpec { fsm_to_output_zero: true, ..FaultSpec::none() },
        )
        .keystream(4);
        assert_ne!(z1, z2);
    }

    #[test]
    fn display_names_faults() {
        assert_eq!(FaultSpec::none().to_string(), "no-fault");
        assert_eq!(FaultSpec::alpha().to_string(), "v=0@feedback+v=0@output");
        assert_eq!(FaultSpec::key_independent().to_string(), "v=0@feedback+load=0");
    }
}
