//! The SNOW 3G LFSR: sixteen 32-bit stages over GF(2³²), forward
//! clocking in initialization and keystream modes, and backward
//! stepping for key recovery.

use core::fmt;

use crate::tables::{div_alpha_word, mul_alpha_word};

/// A snapshot of the sixteen LFSR stages `(s0, s1, ..., s15)`.
pub type LfsrState = [u32; 16];

/// The SNOW 3G linear feedback shift register.
///
/// The feedback polynomial over GF(2³²) is
/// `α x¹⁶ + x¹⁴ + α⁻¹ x⁵ + 1`, giving the update
/// `s₁₆ = α·s₀ ⊕ s₂ ⊕ α⁻¹·s₁₁` (spec §3.4).
///
/// # Example
///
/// ```
/// use snow3g::Lfsr;
///
/// let mut l = Lfsr::from_state([1u32; 16]);
/// let before = l.state();
/// l.clock_keystream();
/// l.unclock();
/// assert_eq!(l.state(), before);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lfsr {
    s: LfsrState,
}

impl Lfsr {
    /// Creates an LFSR from a full state snapshot.
    #[must_use]
    pub fn from_state(s: LfsrState) -> Self {
        Self { s }
    }

    /// The current state `(s0, ..., s15)`.
    #[must_use]
    pub fn state(&self) -> LfsrState {
        self.s
    }

    /// The stage `s_i`.
    ///
    /// # Panics
    ///
    /// Panics if `i > 15`.
    #[inline]
    #[must_use]
    pub fn stage(&self, i: usize) -> u32 {
        self.s[i]
    }

    /// The linear part of the feedback: `α·s₀ ⊕ s₂ ⊕ α⁻¹·s₁₁`.
    #[inline]
    #[must_use]
    pub fn feedback(&self) -> u32 {
        mul_alpha_word(self.s[0]) ^ self.s[2] ^ div_alpha_word(self.s[11])
    }

    /// Clocks the LFSR in initialization mode, consuming the FSM output
    /// word `f` (spec §4.1): `s₁₅ ← feedback ⊕ f`.
    pub fn clock_init(&mut self, f: u32) {
        let v = self.feedback() ^ f;
        self.shift(v);
    }

    /// Clocks the LFSR in keystream mode (spec §4.2):
    /// `s₁₅ ← feedback`.
    pub fn clock_keystream(&mut self) {
        let v = self.feedback();
        self.shift(v);
    }

    /// Reverses one keystream-mode clocking. This inverts
    /// [`Lfsr::clock_keystream`]; to invert an initialization-mode
    /// clocking the consumed FSM word must be XORed into `s₁₅` first
    /// (for the stuck-at-0 fault of the attack that word is 0, so the
    /// whole initialization becomes uniformly reversible).
    ///
    /// Derivation: after a forward step, `s₁₅' = α·s₀ ⊕ s₂ ⊕ α⁻¹·s₁₁`
    /// and `sᵢ' = sᵢ₊₁`. Hence the pre-image has `sᵢ₊₁ = sᵢ'` and
    /// `s₀ = α⁻¹·(s₁₅' ⊕ s₁' ⊕ α⁻¹·s₁₀')`.
    pub fn unclock(&mut self) {
        let s15_new = self.s[15];
        for i in (1..16).rev() {
            self.s[i] = self.s[i - 1];
        }
        // At this point s[1..16] hold the previous s[0..15]; reconstruct s0.
        let prev_s2 = self.s[2];
        let prev_s11 = self.s[11];
        self.s[0] = div_alpha_word(s15_new ^ prev_s2 ^ div_alpha_word(prev_s11));
    }

    /// Steps the LFSR backwards `steps` times (see [`Lfsr::unclock`]).
    pub fn unclock_by(&mut self, steps: usize) {
        for _ in 0..steps {
            self.unclock();
        }
    }
}

impl fmt::Debug for Lfsr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Lfsr[")?;
        for (i, w) in self.s.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{w:08x}")?;
        }
        write!(f, "]")
    }
}

impl Lfsr {
    #[inline]
    fn shift(&mut self, s15_new: u32) {
        for i in 0..15 {
            self.s[i] = self.s[i + 1];
        }
        self.s[15] = s15_new;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_state(seed: u32) -> LfsrState {
        let mut s = [0u32; 16];
        let mut x = seed;
        for w in &mut s {
            x = x.wrapping_mul(0x9E3779B9).wrapping_add(12345);
            *w = x;
        }
        s
    }

    #[test]
    fn unclock_inverts_clock() {
        let mut l = Lfsr::from_state(pseudo_state(7));
        let start = l.state();
        for _ in 0..100 {
            l.clock_keystream();
        }
        l.unclock_by(100);
        assert_eq!(l.state(), start);
    }

    #[test]
    fn clock_then_unclock_single() {
        for seed in 0..50 {
            let mut l = Lfsr::from_state(pseudo_state(seed));
            let start = l.state();
            l.clock_keystream();
            l.unclock();
            assert_eq!(l.state(), start, "seed {seed}");
        }
    }

    #[test]
    fn zero_state_is_fixed_point() {
        // The key-independent exploration of the paper relies on the
        // all-0 state staying all-0 under the linear update.
        let mut l = Lfsr::from_state([0u32; 16]);
        for _ in 0..64 {
            l.clock_keystream();
            assert_eq!(l.state(), [0u32; 16]);
        }
    }

    #[test]
    fn init_clock_consumes_fsm_word() {
        let mut a = Lfsr::from_state(pseudo_state(3));
        let mut b = a;
        a.clock_init(0);
        b.clock_keystream();
        assert_eq!(a.state(), b.state(), "init with f = 0 equals keystream clocking");

        let mut c = Lfsr::from_state(pseudo_state(3));
        c.clock_init(0xDEADBEEF);
        assert_eq!(c.stage(15), b.stage(15) ^ 0xDEADBEEF);
    }

    #[test]
    fn shift_moves_stages() {
        let mut l = Lfsr::from_state(pseudo_state(11));
        let before = l.state();
        l.clock_keystream();
        let after = l.state();
        assert_eq!(&after[..15], &before[1..]);
    }
}
