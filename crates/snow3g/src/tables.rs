//! SNOW 3G arithmetic primitives: `MULx`, `MULxPOW`, the `MULα`/`DIVα`
//! byte-to-word maps, and the two S-boxes `S1` (Rijndael-based) and
//! `S2` (Dickson-polynomial-based, via the `SQ` table).
//!
//! Definitions follow the ETSI/SAGE specification "Document 2: SNOW 3G
//! Specification". The Rijndael S-box is generated algorithmically
//! (inverse in GF(2⁸) modulo `x⁸+x⁴+x³+x+1`, then the affine map) to
//! rule out transcription errors; `SQ` is tabulated as in the spec.

use std::sync::OnceLock;

/// `MULx(V, c)`: multiply `V` by `x` in GF(2⁸) with reduction constant
/// `c` (spec §3.1.1).
#[inline]
#[must_use]
pub fn mulx(v: u8, c: u8) -> u8 {
    if v & 0x80 != 0 {
        (v << 1) ^ c
    } else {
        v << 1
    }
}

/// `MULxPOW(V, i, c)`: apply [`mulx`] `i` times (spec §3.1.2).
#[must_use]
pub fn mulx_pow(v: u8, i: u32, c: u8) -> u8 {
    let mut r = v;
    for _ in 0..i {
        r = mulx(r, c);
    }
    r
}

/// The reduction constant used by `MULα`/`DIVα`.
pub const ALPHA_C: u8 = 0xA9;

/// The reduction constant used inside `S1` (Rijndael MixColumn).
pub const S1_C: u8 = 0x1B;

/// The reduction constant used inside `S2`.
pub const S2_C: u8 = 0x69;

/// `MULα(c)`: the 8-bit to 32-bit map of the LFSR feedback
/// (spec §3.4.2).
#[must_use]
pub fn mul_alpha(c: u8) -> u32 {
    (u32::from(mulx_pow(c, 23, ALPHA_C)) << 24)
        | (u32::from(mulx_pow(c, 245, ALPHA_C)) << 16)
        | (u32::from(mulx_pow(c, 48, ALPHA_C)) << 8)
        | u32::from(mulx_pow(c, 239, ALPHA_C))
}

/// `DIVα(c)`: the 8-bit to 32-bit map of the inverse LFSR feedback
/// (spec §3.4.3).
#[must_use]
pub fn div_alpha(c: u8) -> u32 {
    (u32::from(mulx_pow(c, 16, ALPHA_C)) << 24)
        | (u32::from(mulx_pow(c, 39, ALPHA_C)) << 16)
        | (u32::from(mulx_pow(c, 6, ALPHA_C)) << 8)
        | u32::from(mulx_pow(c, 64, ALPHA_C))
}

fn table_256(f: fn(u8) -> u32) -> [u32; 256] {
    let mut t = [0u32; 256];
    for (i, e) in t.iter_mut().enumerate() {
        *e = f(i as u8);
    }
    t
}

/// Precomputed [`mul_alpha`] table (what an FPGA implementation stores
/// in block RAM or LUTs).
#[must_use]
pub fn mul_alpha_table() -> &'static [u32; 256] {
    static T: OnceLock<[u32; 256]> = OnceLock::new();
    T.get_or_init(|| table_256(mul_alpha))
}

/// Precomputed [`div_alpha`] table.
#[must_use]
pub fn div_alpha_table() -> &'static [u32; 256] {
    static T: OnceLock<[u32; 256]> = OnceLock::new();
    T.get_or_init(|| table_256(div_alpha))
}

/// Multiplication of a 32-bit LFSR word by `α`:
/// `(v << 8) ⊕ MULα(v >> 24)` (the "α ⊙" gate of Fig. 2).
#[inline]
#[must_use]
pub fn mul_alpha_word(v: u32) -> u32 {
    (v << 8) ^ mul_alpha_table()[(v >> 24) as usize]
}

/// Multiplication of a 32-bit LFSR word by `α⁻¹`:
/// `(v >> 8) ⊕ DIVα(v & 0xff)` (the "α⁻¹ ⊙" gate of Fig. 2).
#[inline]
#[must_use]
pub fn div_alpha_word(v: u32) -> u32 {
    (v >> 8) ^ div_alpha_table()[(v & 0xff) as usize]
}

/// The Rijndael S-box `S_R`, generated algorithmically.
#[must_use]
pub fn rijndael_sbox() -> &'static [u8; 256] {
    static T: OnceLock<[u8; 256]> = OnceLock::new();
    T.get_or_init(|| {
        // Multiplicative inverse in GF(2^8) mod x^8+x^4+x^3+x+1,
        // via exhaustive products (256 values; speed is irrelevant).
        fn gf_mul(mut a: u8, mut b: u8) -> u8 {
            let mut p = 0u8;
            while b != 0 {
                if b & 1 != 0 {
                    p ^= a;
                }
                a = mulx(a, 0x1B);
                b >>= 1;
            }
            p
        }
        let mut inv = [0u8; 256];
        for a in 1..=255u8 {
            for b in 1..=255u8 {
                if gf_mul(a, b) == 1 {
                    inv[a as usize] = b;
                    break;
                }
            }
        }
        let mut s = [0u8; 256];
        for (i, e) in s.iter_mut().enumerate() {
            let x = inv[i];
            // Affine transform: s = x ^ rotl(x,1) ^ rotl(x,2) ^ rotl(x,3) ^ rotl(x,4) ^ 0x63.
            *e = x
                ^ x.rotate_left(1)
                ^ x.rotate_left(2)
                ^ x.rotate_left(3)
                ^ x.rotate_left(4)
                ^ 0x63;
        }
        s
    })
}

/// The `SQ` S-box of SNOW 3G (spec §3.3.2), derived from the Dickson
/// polynomial `g₄₉`; tabulated as in the specification.
pub const SQ: [u8; 256] = [
    0x25, 0x24, 0x73, 0x67, 0xD7, 0xAE, 0x5C, 0x30, 0xA4, 0xEE, 0x6E, 0xCB, 0x7D, 0xB5, 0x82, 0xDB,
    0xE4, 0x8E, 0x48, 0x49, 0x4F, 0x5D, 0x6A, 0x78, 0x70, 0x88, 0xE8, 0x5F, 0x5E, 0x84, 0x65, 0xE2,
    0xD8, 0xE9, 0xCC, 0xED, 0x40, 0x2F, 0x11, 0x28, 0x57, 0xD2, 0xAC, 0xE3, 0x4A, 0x15, 0x1B, 0xB9,
    0xB2, 0x80, 0x85, 0xA6, 0x2E, 0x02, 0x47, 0x29, 0x07, 0x4B, 0x0E, 0xC1, 0x51, 0xAA, 0x89, 0xD4,
    0xCA, 0x01, 0x46, 0xB3, 0xEF, 0xDD, 0x44, 0x7B, 0xC2, 0x7F, 0xBE, 0xC3, 0x9F, 0x20, 0x4C, 0x64,
    0x83, 0xA2, 0x68, 0x42, 0x13, 0xB4, 0x41, 0xCD, 0xBA, 0xC6, 0xBB, 0x6D, 0x4D, 0x71, 0x21, 0xF4,
    0x8D, 0xB0, 0xE5, 0x93, 0xFE, 0x8F, 0xE6, 0xCF, 0x43, 0x45, 0x31, 0x22, 0x37, 0x36, 0x96, 0xFA,
    0xBC, 0x0F, 0x08, 0x52, 0x1D, 0x55, 0x1A, 0xC5, 0x4E, 0x23, 0x69, 0x7A, 0x92, 0xFF, 0x5B, 0x5A,
    0xEB, 0x9A, 0x1C, 0xA9, 0xD1, 0x7E, 0x0D, 0xFC, 0x50, 0x8A, 0xB6, 0x62, 0xF5, 0x0A, 0xF8, 0xDC,
    0x03, 0x3C, 0x0C, 0x39, 0xF1, 0xB8, 0xF3, 0x3D, 0xF2, 0xD5, 0x97, 0x66, 0x81, 0x32, 0xA0, 0x00,
    0x06, 0xCE, 0xF6, 0xEA, 0xB7, 0x17, 0xF7, 0x8C, 0x79, 0xD6, 0xA7, 0xBF, 0x8B, 0x3F, 0x1F, 0x53,
    0x63, 0x75, 0x35, 0x2C, 0x60, 0xFD, 0x27, 0xD3, 0x94, 0xA5, 0x7C, 0xA1, 0x05, 0x58, 0x2D, 0xBD,
    0xD9, 0xC7, 0xAF, 0x6B, 0x54, 0x0B, 0xE0, 0x38, 0x04, 0xC8, 0x9D, 0xE7, 0x14, 0xB1, 0x87, 0x9C,
    0xDF, 0x6F, 0xF9, 0xDA, 0x2A, 0xC4, 0x59, 0x16, 0x74, 0x91, 0xAB, 0x26, 0x61, 0x76, 0x34, 0x2B,
    0xAD, 0x99, 0xFB, 0x72, 0xEC, 0x33, 0x12, 0xDE, 0x98, 0x3B, 0xC0, 0x9B, 0x3E, 0x18, 0x10, 0x3A,
    0x56, 0xE1, 0x77, 0xC9, 0x1E, 0x9E, 0x95, 0xA3, 0x90, 0x19, 0xA8, 0x6C, 0x09, 0xD0, 0xF0, 0x86,
];

fn mix(t0: u8, t1: u8, t2: u8, t3: u8, c: u8) -> u32 {
    // The MixColumn-style diffusion shared by S1 and S2 (spec §3.3):
    // matrix [[x, 1, 1, x+1], [x+1, x, 1, 1], [1, x+1, x, 1], [1, 1, x+1, x]].
    let r0 = mulx(t0, c) ^ t1 ^ t2 ^ mulx(t3, c) ^ t3;
    let r1 = mulx(t0, c) ^ t0 ^ mulx(t1, c) ^ t2 ^ t3;
    let r2 = t0 ^ mulx(t1, c) ^ t1 ^ mulx(t2, c) ^ t3;
    let r3 = t0 ^ t1 ^ mulx(t2, c) ^ t2 ^ mulx(t3, c);
    (u32::from(r0) << 24) | (u32::from(r1) << 16) | (u32::from(r2) << 8) | u32::from(r3)
}

/// The 32-bit S-box `S1` (spec §3.3.1): Rijndael byte substitution
/// followed by the MixColumn-style diffusion with constant `0x1B`.
#[must_use]
pub fn s1(w: u32) -> u32 {
    let sr = rijndael_sbox();
    mix(
        sr[(w >> 24) as usize],
        sr[((w >> 16) & 0xff) as usize],
        sr[((w >> 8) & 0xff) as usize],
        sr[(w & 0xff) as usize],
        S1_C,
    )
}

/// The 32-bit S-box `S2` (spec §3.3.2): `SQ` byte substitution followed
/// by the diffusion with constant `0x69`.
#[must_use]
pub fn s2(w: u32) -> u32 {
    mix(
        SQ[(w >> 24) as usize],
        SQ[((w >> 16) & 0xff) as usize],
        SQ[((w >> 8) & 0xff) as usize],
        SQ[(w & 0xff) as usize],
        S2_C,
    )
}

/// The four byte-indexed T-tables whose XOR computes `S1`, i.e.
/// `S1(w) = T0[w₀] ⊕ T1[w₁] ⊕ T2[w₂] ⊕ T3[w₃]` with `w₀` the most
/// significant byte.
///
/// This is the form in which an FPGA implementation evaluates the
/// S-box from block RAM (Section VII-A of the paper notes that "S-box
/// is evaluated by a Block RAM lookup"); the [`crate::vectors`] tests
/// pin the decomposition to the direct definition.
#[must_use]
pub fn s1_t_tables() -> &'static [[u32; 256]; 4] {
    static T: OnceLock<[[u32; 256]; 4]> = OnceLock::new();
    T.get_or_init(|| t_tables(rijndael_sbox(), S1_C))
}

/// The four byte-indexed T-tables whose XOR computes `S2`; see
/// [`s1_t_tables`].
#[must_use]
pub fn s2_t_tables() -> &'static [[u32; 256]; 4] {
    static T: OnceLock<[[u32; 256]; 4]> = OnceLock::new();
    T.get_or_init(|| t_tables(&SQ, S2_C))
}

fn t_tables(sbox: &[u8; 256], c: u8) -> [[u32; 256]; 4] {
    let mut t = [[0u32; 256]; 4];
    for b in 0..256usize {
        let s = sbox[b];
        let m = mulx(s, c);
        let s32 = u32::from(s);
        let m32 = u32::from(m);
        // Column contributions of byte position 0..3 to (r0, r1, r2, r3).
        t[0][b] = (m32 << 24) | ((m32 ^ s32) << 16) | (s32 << 8) | s32;
        t[1][b] = (s32 << 24) | (m32 << 16) | ((m32 ^ s32) << 8) | s32;
        t[2][b] = (s32 << 24) | (s32 << 16) | (m32 << 8) | (m32 ^ s32);
        t[3][b] = ((m32 ^ s32) << 24) | (s32 << 16) | (s32 << 8) | m32;
    }
    t
}

/// Evaluates `S1` via the T-table decomposition (block-RAM form).
#[must_use]
pub fn s1_via_t_tables(w: u32) -> u32 {
    let t = s1_t_tables();
    t[0][(w >> 24) as usize]
        ^ t[1][((w >> 16) & 0xff) as usize]
        ^ t[2][((w >> 8) & 0xff) as usize]
        ^ t[3][(w & 0xff) as usize]
}

/// Evaluates `S2` via the T-table decomposition (block-RAM form).
#[must_use]
pub fn s2_via_t_tables(w: u32) -> u32 {
    let t = s2_t_tables();
    t[0][(w >> 24) as usize]
        ^ t[1][((w >> 16) & 0xff) as usize]
        ^ t[2][((w >> 8) & 0xff) as usize]
        ^ t[3][(w & 0xff) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mulx_matches_definition() {
        assert_eq!(mulx(0x01, 0x1B), 0x02);
        assert_eq!(mulx(0x80, 0x1B), 0x1B);
        assert_eq!(mulx(0xFF, 0x1B), 0xE5);
    }

    #[test]
    fn rijndael_known_values() {
        let s = rijndael_sbox();
        assert_eq!(s[0x00], 0x63);
        assert_eq!(s[0x01], 0x7C);
        assert_eq!(s[0x10], 0xCA);
        assert_eq!(s[0x53], 0xED);
        assert_eq!(s[0xFF], 0x16);
    }

    #[test]
    fn rijndael_is_a_permutation() {
        let mut seen = [false; 256];
        for &v in rijndael_sbox().iter() {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
    }

    #[test]
    fn sq_is_a_permutation() {
        let mut seen = [false; 256];
        for &v in SQ.iter() {
            assert!(!seen[v as usize], "duplicate SQ value {v:#x}");
            seen[v as usize] = true;
        }
    }

    #[test]
    fn alpha_inverse_cancels() {
        // α · α⁻¹ = 1 in GF(2³²): the word operations must cancel.
        let mut x: u32 = 0x12345678;
        for _ in 0..10_000 {
            assert_eq!(div_alpha_word(mul_alpha_word(x)), x);
            assert_eq!(mul_alpha_word(div_alpha_word(x)), x);
            x = x.wrapping_mul(0x9E3779B9).wrapping_add(1);
        }
    }

    #[test]
    fn t_tables_match_direct_sboxes() {
        let mut w: u32 = 1;
        for _ in 0..10_000 {
            assert_eq!(s1_via_t_tables(w), s1(w));
            assert_eq!(s2_via_t_tables(w), s2(w));
            w = w.wrapping_mul(0x9E3779B9).wrapping_add(0x1234);
        }
    }

    #[test]
    fn tables_agree_with_functions() {
        for c in 0..=255u8 {
            assert_eq!(mul_alpha_table()[c as usize], mul_alpha(c));
            assert_eq!(div_alpha_table()[c as usize], div_alpha(c));
        }
    }

    #[test]
    fn s_boxes_are_nonlinear() {
        // Spot-check that S1/S2 are not affine: f(a)^f(b)^f(a^b) != f(0).
        let (a, b) = (0xDEADBEEFu32, 0x01234567u32);
        assert_ne!(s1(a) ^ s1(b) ^ s1(a ^ b), s1(0));
        assert_ne!(s2(a) ^ s2(b) ^ s2(a ^ b), s2(0));
    }
}
