//! Property tests on the cipher and the key-recovery machinery.

use proptest::prelude::*;
use snow3g::cipher::gamma;
use snow3g::recover::gamma_structure_violation;
use snow3g::tables::{div_alpha_word, mul_alpha_word};
use snow3g::{recover_key, FaultSpec, FaultySnow3g, Iv, Key, Lfsr, Snow3g};

fn arb_key() -> impl Strategy<Value = Key> {
    any::<[u32; 4]>().prop_map(Key)
}

fn arb_iv() -> impl Strategy<Value = Iv> {
    any::<[u32; 4]>().prop_map(Iv)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn alpha_field_inverses(v in any::<u32>()) {
        prop_assert_eq!(div_alpha_word(mul_alpha_word(v)), v);
        prop_assert_eq!(mul_alpha_word(div_alpha_word(v)), v);
    }

    #[test]
    fn lfsr_unclock_inverts_clock(state in any::<[u32; 16]>(), steps in 1usize..64) {
        let mut l = Lfsr::from_state(state);
        for _ in 0..steps {
            l.clock_keystream();
        }
        l.unclock_by(steps);
        prop_assert_eq!(l.state(), state);
    }

    #[test]
    fn lfsr_clock_inverts_unclock(state in any::<[u32; 16]>(), steps in 1usize..64) {
        let mut l = Lfsr::from_state(state);
        l.unclock_by(steps);
        for _ in 0..steps {
            l.clock_keystream();
        }
        prop_assert_eq!(l.state(), state);
    }

    #[test]
    fn key_recovery_roundtrip(key in arb_key(), iv in arb_iv()) {
        let z = FaultySnow3g::new(key, iv, FaultSpec::alpha()).keystream(16);
        let secret = recover_key(&z).expect("recovery succeeds for any secrets");
        prop_assert_eq!(secret.key, key);
        prop_assert_eq!(secret.iv, iv);
    }

    #[test]
    fn gamma_always_passes_structure_check(key in arb_key(), iv in arb_iv()) {
        prop_assert_eq!(gamma_structure_violation(&gamma(key, iv)), None);
    }

    #[test]
    fn healthy_keystream_rejected_by_recovery(key in arb_key(), iv in arb_iv()) {
        let z = Snow3g::new(key, iv).keystream(16);
        // A healthy keystream passes the structure check only with
        // probability ~2^-256; assert rejection.
        prop_assert!(recover_key(&z).is_err());
    }

    #[test]
    fn apply_keystream_is_an_involution(
        key in arb_key(),
        iv in arb_iv(),
        data in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        let mut buf = data.clone();
        Snow3g::new(key, iv).apply_keystream(&mut buf);
        Snow3g::new(key, iv).apply_keystream(&mut buf);
        prop_assert_eq!(buf, data);
    }

    #[test]
    fn keystream_prefix_stability(key in arb_key(), iv in arb_iv()) {
        // Generating n words then m more equals generating n+m at once.
        let mut a = Snow3g::new(key, iv);
        let mut words = a.keystream(5);
        words.extend(a.keystream(7));
        let b = Snow3g::new(key, iv).keystream(12);
        prop_assert_eq!(words, b);
    }

    #[test]
    fn fault_free_spec_equals_reference(key in arb_key(), iv in arb_iv()) {
        let a = FaultySnow3g::new(key, iv, FaultSpec::none()).keystream(8);
        let b = Snow3g::new(key, iv).keystream(8);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn alpha_keystream_is_linear_in_loaded_state(key in arb_key(), iv in arb_iv()) {
        // Under fault α the device's keystream is L^33 of γ(K, IV):
        // XOR-homomorphic in the loaded state. Check additivity via
        // the LFSR directly.
        let s1 = gamma(key, iv);
        let s2 = gamma(Key([!key.0[0], key.0[1], key.0[2], key.0[3]]), iv);
        let advance = |s: [u32; 16]| {
            let mut l = Lfsr::from_state(s);
            for _ in 0..33 {
                l.clock_keystream();
            }
            l.state()
        };
        let xor_state = |a: [u32; 16], b: [u32; 16]| {
            let mut out = [0u32; 16];
            for i in 0..16 {
                out[i] = a[i] ^ b[i];
            }
            out
        };
        prop_assert_eq!(
            advance(xor_state(s1, s2)),
            xor_state(advance(s1), advance(s2)),
            "the faulted initialization must be GF(2)-linear"
        );
    }

    #[test]
    fn key_independent_ignores_secrets(key in arb_key(), iv in arb_iv()) {
        let a = FaultySnow3g::new(key, iv, FaultSpec::key_independent()).keystream(8);
        let b = FaultySnow3g::new(Key([0; 4]), Iv([0; 4]), FaultSpec::key_independent())
            .keystream(8);
        prop_assert_eq!(a, b);
    }
}
