//! Property tests: technology mapping preserves function on random
//! networks, with and without keep constraints, across LUT sizes and
//! pin-scramble seeds.

use netlist::{Network, NodeId, Simulator};
use proptest::prelude::*;
use techmap::{map, MapConfig};

/// A recipe for building a random combinational network.
#[derive(Debug, Clone)]
struct Recipe {
    n_inputs: usize,
    ops: Vec<(u8, usize, usize, usize, bool)>, // (kind, a, b, c, keep)
}

fn arb_recipe() -> impl Strategy<Value = Recipe> {
    (
        2usize..6,
        prop::collection::vec(
            (0u8..6, any::<usize>(), any::<usize>(), any::<usize>(), any::<bool>()),
            1..40,
        ),
    )
        .prop_map(|(n_inputs, ops)| Recipe { n_inputs, ops })
}

/// Builds the network; returns (network, inputs, outputs).
fn build(recipe: &Recipe) -> (Network, Vec<NodeId>, Vec<NodeId>) {
    let mut n = Network::new();
    let inputs: Vec<NodeId> = (0..recipe.n_inputs).map(|i| n.input(format!("i{i}"))).collect();
    let mut pool: Vec<NodeId> = inputs.clone();
    for (kind, a, b, c, keep) in &recipe.ops {
        let pick = |x: usize| pool[x % pool.len()];
        let (pa, pb, pc) = (pick(*a), pick(*b), pick(*c));
        let id = match kind % 6 {
            0 => n.and(pa, pb),
            1 => n.or(pa, pb),
            2 => n.xor(pa, pb),
            3 => n.not(pa),
            4 => n.mux(pa, pb, pc),
            _ => n.constant(*a % 2 == 0),
        };
        // Keep constraints only make sense on 2-input XORs in our
        // flow, but the mapper must honour them on any gate.
        if *keep && kind % 6 != 5 {
            n.set_keep(id);
        }
        pool.push(id);
    }
    // Outputs: the last few pool entries.
    let outs: Vec<NodeId> = pool.iter().rev().take(4).copied().collect();
    for (i, &o) in outs.iter().enumerate() {
        n.set_output(format!("o{i}"), o);
    }
    (n, inputs, outs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn mapping_preserves_function(recipe in arb_recipe(), seed in any::<u64>()) {
        let (network, inputs, outs) = build(&recipe);
        prop_assume!(network.validate().is_ok());
        let config = MapConfig { scramble_seed: seed, ..MapConfig::default() };
        let design = map(&network, &config).expect("mapping succeeds");

        // Exhaust all input assignments (≤ 2^5) and compare the
        // mapped design against the reference simulator.
        for assignment in 0u32..(1 << inputs.len()) {
            let drive: Vec<(NodeId, bool)> = inputs
                .iter()
                .enumerate()
                .map(|(i, &id)| (id, (assignment >> i) & 1 == 1))
                .collect();
            let mut reference = Simulator::new(&network).expect("valid");
            reference.step(&drive);
            let want: Vec<bool> = outs.iter().map(|&o| reference.value(o)).collect();
            let got = design.simulate(&drive, 1, &outs);
            prop_assert_eq!(&got[0], &want, "assignment {:b}", assignment);
        }
    }

    #[test]
    fn keep_nodes_always_trivially_covered(recipe in arb_recipe()) {
        let (network, _, _) = build(&recipe);
        prop_assume!(network.validate().is_ok());
        let design = map(&network, &MapConfig::default()).expect("maps");
        let index = design.cover_index();
        for (id, node) in network.iter() {
            if node.keep {
                // Keep nodes that are live must be roots of their own
                // trivial cover; dead keep nodes may be uncovered.
                if let Some(&ci) = index.get(&id) {
                    let cover = &design.covers[ci];
                    prop_assert!(
                        cover.leaves.len() <= node.fanin.len(),
                        "keep node {} covered with {} pins",
                        id,
                        cover.leaves.len()
                    );
                }
                // And no other cover may contain it strictly inside.
                for cover in &design.covers {
                    if cover.root == id || cover.leaves.contains(&id) {
                        continue;
                    }
                    let mut stack = vec![cover.root];
                    let mut seen = std::collections::HashSet::new();
                    while let Some(x) = stack.pop() {
                        if cover.leaves.contains(&x) || !seen.insert(x) {
                            continue;
                        }
                        prop_assert!(x != id, "keep node {} absorbed into cover of {}", id, cover.root);
                        let xn = network.node(x);
                        if xn.kind.is_gate() {
                            stack.extend(xn.fanin.iter().copied());
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn smaller_k_never_fails(recipe in arb_recipe(), k in 3usize..=6) {
        let (network, inputs, outs) = build(&recipe);
        prop_assume!(network.validate().is_ok());
        let config = MapConfig { k, ..MapConfig::default() };
        let design = map(&network, &config).expect("mapping succeeds for any k in 2..=6");
        for cover in &design.covers {
            prop_assert!(cover.leaves.len() <= k, "cover exceeds k = {}", k);
        }
        // Spot-check one assignment for functional equivalence.
        let drive: Vec<(NodeId, bool)> =
            inputs.iter().enumerate().map(|(i, &id)| (id, i % 2 == 0)).collect();
        let mut reference = Simulator::new(&network).expect("valid");
        reference.step(&drive);
        let want: Vec<bool> = outs.iter().map(|&o| reference.value(o)).collect();
        let got = design.simulate(&drive, 1, &outs);
        prop_assert_eq!(&got[0], &want);
    }
}
