//! Mapping the full SNOW 3G circuit: functional equivalence and the
//! LUT-cover shapes the attack relies on.
//!
//! The paper reports that the target node `v` is absorbed into three
//! kinds of LUTs: `LUT₁` (f2, keystream path, 32×) and `LUT₂`/`LUT₃`
//! (f8/f19, feedback path, 24+8×) — the feedback split caused by the
//! `α`/`α⁻¹` byte shifts. Our mapper reproduces the same phenomenon
//! with its own split: the middle 16 bits fold `v` into the `s₁₅`
//! load multiplexer together with the key constant (shapes `m0`/`m0b`,
//! the analog of the paper's f19 with its gated linear term `a3·a6`),
//! and the outer bytes absorb `v` into gated-XOR covers (`g4` plus
//! two carry-edge variants, one of which is exactly the paper's f7).

use boolfn::expr::var;
use boolfn::pclass;
use boolfn::TruthTable;
use netlist::snow3g_circuit::{Snow3gCircuit, Snow3gCircuitConfig, WARMUP_CYCLES};
use snow3g::vectors::{TEST_SET_1_IV, TEST_SET_1_KEY};
use snow3g::Snow3g;
use std::collections::{HashMap, HashSet};
use techmap::{map, DelayModel, MapConfig, TimingReport};

fn circuit(protected: bool) -> Snow3gCircuit {
    Snow3gCircuit::generate(Snow3gCircuitConfig {
        key: TEST_SET_1_KEY,
        iv: TEST_SET_1_IV,
        protected,
    })
}

fn mapped_keystream(design: &techmap::MappedDesign, c: &Snow3gCircuit, words: usize) -> Vec<u32> {
    let probes = c.z_out.clone();
    let rows = design.simulate(&[(c.run, true)], WARMUP_CYCLES + words, &probes);
    rows[WARMUP_CYCLES..]
        .iter()
        .map(|bits| bits.iter().enumerate().fold(0u32, |acc, (i, &b)| acc | (u32::from(b) << i)))
        .collect()
}

/// The implementation-family cover shapes (see module docs).
fn family() -> Vec<(&'static str, TruthTable)> {
    let v = || var(1) ^ var(2);
    let x3 = || var(1) ^ var(2) ^ var(3);
    vec![
        ("f2", (x3() & var(4) & var(5) & !var(6)).truth_table(6)),
        ("m0", (!var(3) & ((v() & var(4) & var(5)) ^ var(6))).truth_table(6)),
        ("m0b", (var(3) | ((v() & var(4) & var(5)) ^ var(6))).truth_table(6)),
        ("g4", ((var(1) ^ var(2) ^ var(3) ^ var(4)) & var(5) & var(6)).truth_table(6)),
        ("f7", (x3() & var(4) & var(5)).truth_table(6)),
        ("g3c", ((var(1) ^ (var(2) & var(3)) ^ var(4)) & var(5) & var(6)).truth_table(6)),
    ]
}

/// Classifies every cover whose cone strictly contains a `v` node.
fn v_cover_classes(
    c: &Snow3gCircuit,
    design: &techmap::MappedDesign,
) -> HashMap<&'static str, usize> {
    let vset: HashSet<_> = c.v_nodes.iter().copied().collect();
    let fam = family();
    let mut counts: HashMap<&'static str, usize> = HashMap::new();
    for cov in &design.covers {
        let leaves: HashSet<_> = cov.leaves.iter().copied().collect();
        let mut stack = vec![cov.root];
        let mut seen = HashSet::new();
        let mut vhit = false;
        let mut gates = 0;
        while let Some(id) = stack.pop() {
            if leaves.contains(&id) || !seen.insert(id) {
                continue;
            }
            if vset.contains(&id) {
                vhit = true;
            }
            let node = c.network.node(id);
            if node.kind.is_gate() {
                gates += 1;
                stack.extend(node.fanin.iter().copied());
            }
        }
        // A trivial LUT implementing v alone does not *hide* v; only
        // composite covers count.
        if vhit && gates > 1 {
            let t6 = cov.truth.extend(6);
            let name =
                fam.iter().find(|(_, ft)| pclass::equivalent(*ft, t6)).map_or("other", |(n, _)| n);
            *counts.entry(name).or_insert(0) += 1;
        }
    }
    counts
}

#[test]
fn mapped_unprotected_matches_software_model() {
    let c = circuit(false);
    let design = map(&c.network, &MapConfig::default()).expect("mapping succeeds");
    let hw = mapped_keystream(&design, &c, 4);
    let sw = Snow3g::new(TEST_SET_1_KEY, TEST_SET_1_IV).keystream(4);
    assert_eq!(hw, sw);
}

#[test]
fn mapped_protected_matches_software_model() {
    let c = circuit(true);
    let design = map(&c.network, &MapConfig::default()).expect("mapping succeeds");
    let hw = mapped_keystream(&design, &c, 4);
    let sw = Snow3g::new(TEST_SET_1_KEY, TEST_SET_1_IV).keystream(4);
    assert_eq!(hw, sw);
}

#[test]
fn unprotected_v_cover_distribution() {
    // The frozen ground truth of the reproduction: 32 f2 covers on
    // the keystream path; on the feedback path 16 mux-folded covers
    // (m0 + m0b, split by the γ(K, IV) constant of stage s15) and 16
    // gated-XOR covers (14 g4 + the two carry-edge variants f7/g3c).
    let c = circuit(false);
    let design = map(&c.network, &MapConfig::default()).expect("mapping succeeds");
    let counts = v_cover_classes(&c, &design);
    assert_eq!(counts.get("f2"), Some(&32), "z-path covers: {counts:?}");
    let m0 = counts.get("m0").copied().unwrap_or(0);
    let m0b = counts.get("m0b").copied().unwrap_or(0);
    assert_eq!(m0 + m0b, 16, "mux-folded feedback covers: {counts:?}");
    // The m0/m0b split equals the weight of the middle 16 bits of
    // γ15 = k3 ⊕ iv0.
    let gamma15_mid = (c.gamma[15] >> 8) & 0xffff;
    assert_eq!(m0b as u32, gamma15_mid.count_ones(), "{counts:?}");
    assert_eq!(counts.get("g4"), Some(&14), "outer-byte feedback covers: {counts:?}");
    assert_eq!(counts.get("f7"), Some(&1), "bit-0 cover (no carry): {counts:?}");
    assert_eq!(counts.get("g3c"), Some(&1), "bit-1 cover (first carry): {counts:?}");
    assert_eq!(counts.get("other"), None, "no unexplained shapes: {counts:?}");
}

#[test]
fn every_v_bit_absorbed_on_both_paths() {
    let c = circuit(false);
    let design = map(&c.network, &MapConfig::default()).expect("mapping succeeds");
    // No v node may be realised as its own LUT or used as a pin: the
    // attack relies on v living strictly inside LUTs.
    let idx = design.cover_index();
    for &v in &c.v_nodes {
        assert!(!idx.contains_key(&v), "v node {v} must not be a cover root");
    }
    for cov in &design.covers {
        for l in &cov.leaves {
            assert!(!c.v_nodes.contains(l), "v node {l} must not be a LUT pin");
        }
    }
    // Each v bit appears inside exactly two covers (z path and
    // feedback path).
    let vset: HashSet<_> = c.v_nodes.iter().copied().collect();
    let mut per_v: HashMap<netlist::NodeId, usize> = HashMap::new();
    for cov in &design.covers {
        let leaves: HashSet<_> = cov.leaves.iter().copied().collect();
        let mut stack = vec![cov.root];
        let mut seen = HashSet::new();
        while let Some(id) = stack.pop() {
            if leaves.contains(&id) || !seen.insert(id) {
                continue;
            }
            if vset.contains(&id) {
                *per_v.entry(id).or_insert(0) += 1;
            }
            let node = c.network.node(id);
            if node.kind.is_gate() {
                stack.extend(node.fanin.iter().copied());
            }
        }
    }
    assert_eq!(per_v.len(), 32);
    assert!(per_v.values().all(|&n| n == 2), "each v bit in exactly 2 covers: {per_v:?}");
}

#[test]
fn protected_kills_composite_covers() {
    let c = circuit(true);
    let design = map(&c.network, &MapConfig::default()).expect("mapping succeeds");
    let counts = v_cover_classes(&c, &design);
    assert!(counts.is_empty(), "no LUT may absorb v in the protected design: {counts:?}");
}

#[test]
fn protected_produces_trivial_xor_population() {
    let c = circuit(true);
    let design = map(&c.network, &MapConfig::default()).expect("mapping succeeds");
    let idx = design.cover_index();
    let mut xors = 0;
    let mut buffers = 0;
    for (id, node) in c.network.iter() {
        if node.keep {
            let cov = &design.covers[idx[&id]];
            match cov.leaves.len() {
                2 => {
                    assert_eq!(cov.truth.as_xor_pair(), Some((1, 2)), "keep node {id}");
                    xors += 1;
                }
                // XOR gates with one constant-folded input (the byte
                // shift edges of α·s0) become buffers.
                1 => buffers += 1,
                n => panic!("keep node {id} mapped with {n} pins"),
            }
        }
    }
    assert_eq!(xors + buffers, 192, "six 32-bit XOR vectors kept");
    assert_eq!(buffers, 8, "the 8 const-shifted bits of α·s0");
}

#[test]
fn protected_design_is_slower() {
    let model = DelayModel::default();
    let unprot = circuit(false);
    let prot = circuit(true);
    let t_unprot =
        TimingReport::analyze(&map(&unprot.network, &MapConfig::default()).unwrap(), &model);
    let t_prot = TimingReport::analyze(&map(&prot.network, &MapConfig::default()).unwrap(), &model);
    assert!(
        t_prot.critical_ns > t_unprot.critical_ns,
        "countermeasure must cost delay: {:.3} vs {:.3}",
        t_prot.critical_ns,
        t_unprot.critical_ns
    );
    assert!(t_prot.depth >= t_unprot.depth);
}

#[test]
fn depth_objective_maps_snow3g_correctly() {
    // The attack's frozen cover shapes assume the Area objective, but
    // the Depth objective must still produce a functionally correct,
    // no-deeper mapping of the full cipher.
    use techmap::MapObjective;
    let c = circuit(false);
    let area = map(&c.network, &MapConfig::default()).expect("area maps");
    let depth =
        map(&c.network, &MapConfig { objective: MapObjective::Depth, ..MapConfig::default() })
            .expect("depth maps");
    assert!(depth.logic_depth() <= area.logic_depth());
    let hw = mapped_keystream(&depth, &c, 2);
    assert_eq!(hw, vec![0xABEE9704, 0x7AC31373]);
}

#[test]
fn lut_counts_are_plausible() {
    let c = circuit(false);
    let design = map(&c.network, &MapConfig::default()).expect("mapping succeeds");
    let n = design.lut_count();
    assert!(n > 300 && n < 5000, "LUT count {n} out of expected range");
    assert!(design.fractured_count() > 0, "some LUTs should pack in pairs");
    assert_eq!(design.brams.len(), 10, "8 T-table + MULα + DIVα block RAMs");
    // The protected design needs more LUTs.
    let p = circuit(true);
    let pdesign = map(&p.network, &MapConfig::default()).expect("mapping succeeds");
    assert!(pdesign.covers.len() > design.covers.len(), "countermeasure costs area");
}

#[test]
fn automated_protect_pass_defeats_composite_covers() {
    // The generic netlist::protect pass (the paper's "can be
    // automated and incorporated into industrial design tools")
    // applied to an *unprotected* circuit with the Lemma VII-A decoy
    // budget must remove every composite cover of v, just like the
    // hand-annotated protected circuit.
    let mut c = circuit(false);
    let budget = netlist::protect::decoys_for_security(32, 128.0);
    let report = netlist::protect::protect(&mut c.network, &c.v_nodes.clone(), budget as usize)
        .expect("protect pass runs");
    assert_eq!(report.targets, 32);
    assert!(report.decoys as u64 >= budget.min(report.population as u64));
    let design = map(&c.network, &MapConfig::default()).expect("maps");
    let counts = v_cover_classes(&c, &design);
    assert!(counts.is_empty(), "composite covers must disappear: {counts:?}");
    // Functionality preserved end to end.
    let hw = mapped_keystream(&design, &c, 2);
    assert_eq!(hw, vec![0xABEE9704, 0x7AC31373]);
}
