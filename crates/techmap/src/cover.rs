//! Cover selection: turning cut sets into a LUT network.

use core::fmt;
use std::collections::{HashMap, HashSet};

use boolfn::TruthTable;
use netlist::{Network, NetworkError, NodeId, NodeKind};

use crate::cut::{Cut, CutParams, CutSets};
use crate::design::{BramCell, Cover, DffCell, MappedDesign};
use crate::pack;

/// The optimization objective of cover selection (Section II-B of the
/// paper surveys mappers for "minimal area \[32\] or depth \[33\], or
/// both \[34\]").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MapObjective {
    /// Maximise the logic absorbed per LUT (fewest LUTs).
    #[default]
    Area,
    /// Minimise LUT levels via DAG-Map-style depth labels computed
    /// over the enumerated priority cuts, breaking ties by area.
    Depth,
}

/// Mapping options.
#[derive(Debug, Clone, Copy)]
pub struct MapConfig {
    /// LUT input count of the target architecture (at most 6).
    pub k: usize,
    /// Cuts retained per node during enumeration.
    pub max_cuts: usize,
    /// Seed for the deterministic pin-order scrambling.
    pub scramble_seed: u64,
    /// Cover-selection objective.
    pub objective: MapObjective,
}

impl Default for MapConfig {
    fn default() -> Self {
        Self {
            k: 6,
            max_cuts: 16,
            scramble_seed: 0x00B1_7D0D_5EED_u64,
            objective: MapObjective::Area,
        }
    }
}

/// An error from [`map`].
#[derive(Debug)]
pub enum MapError {
    /// The input network failed validation.
    Network(NetworkError),
    /// `k` is out of the supported range `3..=6` (the structural
    /// mapper does not decompose gates, so `k` must cover the widest
    /// primitive — the 3-input multiplexer).
    BadK {
        /// The offending value.
        k: usize,
    },
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::Network(e) => write!(f, "invalid network: {e}"),
            MapError::BadK { k } => write!(f, "unsupported LUT size k = {k} (need 3..=6)"),
        }
    }
}

impl std::error::Error for MapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MapError::Network(e) => Some(e),
            MapError::BadK { .. } => None,
        }
    }
}

impl From<NetworkError> for MapError {
    fn from(e: NetworkError) -> Self {
        MapError::Network(e)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Technology-maps `network` into a k-LUT design.
///
/// The algorithm is the classical area-greedy cover with node reuse
/// (Section II-B of the paper): starting from the sinks (primary
/// outputs, flip-flop data inputs, BRAM address bits), each required
/// gate is realised by its maximum-volume k-feasible cut; the cut's
/// gate leaves become required in turn. Nodes marked `keep` are
/// covered by their trivial cut and are never absorbed into another
/// LUT (the Section VII-A countermeasure).
///
/// # Errors
///
/// Returns [`MapError::Network`] if the network is invalid, or
/// [`MapError::BadK`] for an unsupported LUT size.
pub fn map(network: &Network, config: &MapConfig) -> Result<MappedDesign, MapError> {
    if !(3..=6).contains(&config.k) {
        return Err(MapError::BadK { k: config.k });
    }
    network.validate()?;

    let cut_sets =
        CutSets::enumerate(network, CutParams { k: config.k, max_cuts: config.max_cuts });

    // Depth labels (DAG-Map [33] over the priority cuts): label(v) is
    // the minimum LUT level at which v can be realised.
    let labels = match config.objective {
        MapObjective::Area => None,
        MapObjective::Depth => Some(depth_labels(network, &cut_sets, config.k)),
    };

    // Sinks: nets that must exist physically.
    let mut required: Vec<NodeId> = Vec::new();
    let mut seen: HashSet<NodeId> = HashSet::new();
    let require = |id: NodeId, required: &mut Vec<NodeId>, seen: &mut HashSet<NodeId>| {
        if network.node(id).kind.is_gate() && seen.insert(id) {
            required.push(id);
        }
    };
    for (_, id) in network.outputs() {
        require(*id, &mut required, &mut seen);
    }
    for (id, node) in network.iter() {
        match node.kind {
            NodeKind::Dff { .. } => {
                require(node.fanin[0], &mut required, &mut seen);
            }
            NodeKind::RomOut { .. } => {
                let _ = id;
                for &a in &node.fanin {
                    require(a, &mut required, &mut seen);
                }
            }
            _ => {}
        }
    }

    // Greedy covering.
    let mut covers: Vec<Cover> = Vec::new();
    let mut head = 0;
    while head < required.len() {
        let root = required[head];
        head += 1;
        let cut = choose_cut(network, &cut_sets, root, config.k, labels.as_deref());
        let mut leaves: Vec<NodeId> = cut.leaves().to_vec();
        // Deterministic pin scrambling (placement-like pin rotation).
        leaves.sort_by_key(|l| {
            splitmix64(config.scramble_seed ^ (u64::from(root.0) << 32) ^ u64::from(l.0))
        });
        let truth = cone_truth(network, root, &leaves);
        for &l in &leaves {
            require(l, &mut required, &mut seen);
        }
        covers.push(Cover { root, leaves, truth });
    }
    // Deterministic output order regardless of traversal.
    covers.sort_by_key(|c| c.root);

    // Sequential cells pass through.
    let mut dffs = Vec::new();
    let mut brams: Vec<BramCell> = Vec::new();
    let mut bram_index: HashMap<(u32, Vec<NodeId>), usize> = HashMap::new();
    for (id, node) in network.iter() {
        match &node.kind {
            NodeKind::Dff { init } => {
                dffs.push(DffCell { q: id, d: node.fanin[0], init: *init });
            }
            NodeKind::RomOut { rom, bit } => {
                let key = (rom.0, node.fanin.clone());
                let idx = *bram_index.entry(key).or_insert_with(|| {
                    brams.push(BramCell {
                        rom: *rom,
                        addr: node.fanin.clone(),
                        data: vec![NodeId(u32::MAX); 32],
                    });
                    brams.len() - 1
                });
                brams[idx].data[*bit as usize] = id;
            }
            _ => {}
        }
    }
    // Any ROM data bit that has no node (cannot happen with
    // Network::rom_outputs, which always creates 32) would be a hole;
    // assert in debug builds.
    debug_assert!(brams.iter().all(|b| b.data.iter().all(|d| d.0 != u32::MAX)));

    let luts = pack::pack(&covers, config.scramble_seed);

    Ok(MappedDesign { network: network.clone(), covers, luts, dffs, brams })
}

/// Computes DAG-Map depth labels over the enumerated cut sets:
/// sources are 0; a gate's label is `1 + min over cuts of the max
/// leaf label`; a ROM output costs one level above its address.
fn depth_labels(network: &Network, cut_sets: &CutSets, k: usize) -> Vec<usize> {
    let order = network.topo_order().expect("validated network");
    let mut label = vec![0usize; network.len()];
    for id in order {
        let node = network.node(id);
        if let NodeKind::RomOut { .. } = node.kind {
            label[id.index()] = node.fanin.iter().map(|f| label[f.index()]).max().unwrap_or(0) + 1;
            continue;
        }
        if !node.kind.is_gate() {
            continue;
        }
        let mut best = usize::MAX;
        for ranked in cut_sets.cuts(id) {
            let cut = &ranked.cut;
            if cut.len() > k || cut.leaves().contains(&id) {
                continue;
            }
            let depth = cut.leaves().iter().map(|l| label[l.index()]).max().unwrap_or(0) + 1;
            best = best.min(depth);
        }
        label[id.index()] = if best == usize::MAX {
            // Only the immediate-fanin cut remains (keep nodes).
            node.fanin.iter().map(|f| label[f.index()]).max().unwrap_or(0) + 1
        } else {
            best
        };
    }
    label
}

/// Chooses the cover cut for `root`: trivial for `keep` nodes,
/// otherwise by the configured objective (maximum volume, or minimum
/// depth label with volume as the tie-break).
fn choose_cut(
    network: &Network,
    cut_sets: &CutSets,
    root: NodeId,
    k: usize,
    labels: Option<&[usize]>,
) -> Cut {
    let node = network.node(root);
    if node.keep {
        // Trivial cut: the node's own (non-constant) fanins.
        let leaves: Vec<NodeId> = node
            .fanin
            .iter()
            .copied()
            .filter(|f| !matches!(network.node(*f).kind, NodeKind::Const(_)))
            .collect();
        return Cut::from_leaves(leaves);
    }
    // Selection key: under the Area objective — exact volume first,
    // then fewer leaves, then more register/input leaves (prefer
    // absorbing logic back toward sequential boundaries, like slice
    // packers do), then the lexicographically smallest leaf set for
    // determinism. Under the Depth objective a "smaller arrival
    // label" criterion is prepended.
    let mut best: Option<(usize, usize, usize, usize, Cut)> = None;
    for ranked in cut_sets.cuts(root) {
        let cut = &ranked.cut;
        if cut.leaves().contains(&root) {
            continue; // the leaf form of the node itself
        }
        if cut.len() > k {
            continue;
        }
        let depth = match labels {
            Some(l) => cut.leaves().iter().map(|x| l[x.index()]).max().unwrap_or(0) + 1,
            None => 0,
        };
        let vol = cone_volume(network, root, cut);
        let srcs = cut.leaves().iter().filter(|l| network.node(**l).kind.is_source()).count();
        let better = match &best {
            None => true,
            Some((bd, bv, bl, bs, bc)) => {
                (
                    std::cmp::Reverse(depth),
                    vol,
                    std::cmp::Reverse(cut.len()),
                    srcs,
                    std::cmp::Reverse(cut.leaves()),
                ) > (
                    std::cmp::Reverse(*bd),
                    *bv,
                    std::cmp::Reverse(*bl),
                    *bs,
                    std::cmp::Reverse(bc.leaves()),
                )
            }
        };
        if better {
            best = Some((depth, vol, cut.len(), srcs, cut.clone()));
        }
    }
    best.map(|(_, _, _, _, c)| c).unwrap_or_else(|| {
        // Fallback (cannot normally happen): immediate fanin cut.
        Cut::from_leaves(
            network
                .node(root)
                .fanin
                .iter()
                .copied()
                .filter(|f| !matches!(network.node(*f).kind, NodeKind::Const(_)))
                .collect(),
        )
    })
}

/// Number of gate nodes inside the cone of `root` bounded by `cut`.
fn cone_volume(network: &Network, root: NodeId, cut: &Cut) -> usize {
    let leaves: HashSet<NodeId> = cut.leaves().iter().copied().collect();
    let mut visited: HashSet<NodeId> = HashSet::new();
    let mut stack = vec![root];
    let mut count = 0;
    while let Some(id) = stack.pop() {
        if leaves.contains(&id) || !visited.insert(id) {
            continue;
        }
        let node = network.node(id);
        match node.kind {
            NodeKind::Const(_) => continue,
            ref k if k.is_gate() => {
                count += 1;
                stack.extend(node.fanin.iter().copied());
            }
            // A source inside the cone that is not a leaf means the
            // cut is not actually a cut; the enumerator never
            // produces this.
            _ => debug_assert!(false, "non-leaf source {id} inside cone of {root}"),
        }
    }
    count
}

/// Computes the truth table of the cone of `root` with respect to the
/// ordered `leaves` (pin `a1` = `leaves\[0\]`).
///
/// # Panics
///
/// Panics if the cone reaches a non-constant source that is not a
/// leaf (invalid cut), or if there are more than 6 leaves.
pub fn cone_truth(network: &Network, root: NodeId, leaves: &[NodeId]) -> TruthTable {
    assert!(leaves.len() <= 6, "at most 6 LUT inputs");
    let k = leaves.len() as u8;
    let mask = TruthTable::mask(k);
    let mut memo: HashMap<NodeId, u64> = HashMap::new();
    for (p, &l) in leaves.iter().enumerate() {
        memo.insert(l, TruthTable::var(6, p as u8 + 1).bits());
    }
    let bits = eval_cone(network, root, &mut memo) & mask;
    TruthTable::new(k, bits)
}

fn eval_cone(network: &Network, id: NodeId, memo: &mut HashMap<NodeId, u64>) -> u64 {
    if let Some(&v) = memo.get(&id) {
        return v;
    }
    let node = network.node(id);
    let v = match node.kind {
        NodeKind::Const(b) => {
            if b {
                u64::MAX
            } else {
                0
            }
        }
        NodeKind::Not => !eval_cone(network, node.fanin[0], memo),
        NodeKind::And => {
            eval_cone(network, node.fanin[0], memo) & eval_cone(network, node.fanin[1], memo)
        }
        NodeKind::Or => {
            eval_cone(network, node.fanin[0], memo) | eval_cone(network, node.fanin[1], memo)
        }
        NodeKind::Xor => {
            eval_cone(network, node.fanin[0], memo) ^ eval_cone(network, node.fanin[1], memo)
        }
        NodeKind::Mux => {
            let s = eval_cone(network, node.fanin[0], memo);
            let a = eval_cone(network, node.fanin[1], memo);
            let b = eval_cone(network, node.fanin[2], memo);
            (s & a) | (!s & b)
        }
        _ => panic!("cone of a cut reached non-leaf source {id}"),
    };
    memo.insert(id, v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::Network;

    /// Tests propagate failures with `?` instead of unwrapping: a
    /// failing assertion should name the failed step, not panic in a
    /// combinator.
    type TestResult = Result<(), Box<dyn std::error::Error>>;

    fn xor_chain(n: usize) -> (Network, Vec<NodeId>, NodeId) {
        let mut net = Network::new();
        let inputs: Vec<NodeId> = (0..n).map(|i| net.input(format!("i{i}"))).collect();
        let mut acc = inputs[0];
        for &i in &inputs[1..] {
            acc = net.xor(acc, i);
        }
        net.set_output("o", acc);
        (net, inputs, acc)
    }

    #[test]
    fn small_network_single_lut() -> TestResult {
        let (net, inputs, root) = xor_chain(5);
        let design = map(&net, &MapConfig::default())?;
        assert_eq!(design.covers.len(), 1, "a 5-input XOR fits one LUT");
        let c = &design.covers[0];
        assert_eq!(c.root, root);
        let mut leaves = c.leaves.clone();
        leaves.sort_unstable();
        assert_eq!(leaves, inputs);
        Ok(())
    }

    #[test]
    fn wide_xor_splits() -> TestResult {
        let (net, _, _) = xor_chain(12);
        let design = map(&net, &MapConfig::default())?;
        assert!(design.covers.len() >= 2 && design.covers.len() <= 3);
        Ok(())
    }

    #[test]
    fn mapping_preserves_function_combinational() -> TestResult {
        // f = ((a ^ b) & c) | (!d & (b ^ c)).
        let mut net = Network::new();
        let a = net.input("a");
        let b = net.input("b");
        let c = net.input("c");
        let d = net.input("d");
        let x1 = net.xor(a, b);
        let g1 = net.and(x1, c);
        let nd = net.not(d);
        let x2 = net.xor(b, c);
        let g2 = net.and(nd, x2);
        let o = net.or(g1, g2);
        net.set_output("o", o);
        let design = map(&net, &MapConfig::default())?;
        for v in 0..16u8 {
            let inputs = [(a, v & 1 != 0), (b, v & 2 != 0), (c, v & 4 != 0), (d, v & 8 != 0)];
            let want = {
                let (va, vb, vc, vd) = (v & 1 != 0, v & 2 != 0, v & 4 != 0, v & 8 != 0);
                ((va ^ vb) && vc) || (!vd && (vb ^ vc))
            };
            let got = design.simulate(&inputs, 1, &[o]);
            assert_eq!(got[0][0], want, "v = {v:04b}");
        }
        Ok(())
    }

    #[test]
    fn keep_node_gets_trivial_cover() -> TestResult {
        let mut net = Network::new();
        let a = net.input("a");
        let b = net.input("b");
        let c = net.input("c");
        let x = net.xor(a, b);
        net.set_keep(x);
        let g = net.and(x, c);
        net.set_output("o", g);
        let design = map(&net, &MapConfig::default())?;
        let idx = design.cover_index();
        let cx = &design.covers[idx[&x]];
        assert_eq!(cx.leaves.len(), 2);
        assert_eq!(cx.truth.as_xor_pair(), Some((1, 2)), "trivial 2-input XOR LUT");
        // And the downstream LUT uses x as a pin rather than absorbing it.
        let cg = &design.covers[idx[&g]];
        assert!(cg.leaves.contains(&x));
        Ok(())
    }

    #[test]
    fn unkept_xor_gets_absorbed() -> TestResult {
        let mut net = Network::new();
        let a = net.input("a");
        let b = net.input("b");
        let c = net.input("c");
        let x = net.xor(a, b);
        let g = net.and(x, c);
        net.set_output("o", g);
        let design = map(&net, &MapConfig::default())?;
        assert_eq!(design.covers.len(), 1, "x folds into g's LUT");
        assert_eq!(design.covers[0].root, g);
        Ok(())
    }

    #[test]
    fn bad_k_rejected() {
        let (net, _, _) = xor_chain(3);
        assert!(matches!(
            map(&net, &MapConfig { k: 9, ..MapConfig::default() }),
            Err(MapError::BadK { k: 9 })
        ));
        assert!(matches!(
            map(&net, &MapConfig { k: 2, ..MapConfig::default() }),
            Err(MapError::BadK { .. })
        ));
    }

    #[test]
    fn scramble_seed_changes_pin_order_not_function() -> TestResult {
        let mut net = Network::new();
        let a = net.input("a");
        let b = net.input("b");
        let c = net.input("c");
        let x = net.xor(a, b);
        let g = net.and(x, c);
        net.set_output("o", g);
        let d1 = map(&net, &MapConfig { scramble_seed: 1, ..MapConfig::default() })?;
        let d2 = map(&net, &MapConfig { scramble_seed: 99, ..MapConfig::default() })?;
        for v in 0..8u8 {
            let inputs = [(a, v & 1 != 0), (b, v & 2 != 0), (c, v & 4 != 0)];
            assert_eq!(
                d1.simulate(&inputs, 1, &[g]),
                d2.simulate(&inputs, 1, &[g]),
                "same function regardless of pin order"
            );
        }
        Ok(())
    }

    #[test]
    fn depth_objective_reduces_levels() -> TestResult {
        // A 24-input XOR chain: area covering follows the chain shape;
        // depth labels rebalance toward ceil(log_6-ish) levels.
        let mut net = Network::new();
        let inputs: Vec<NodeId> = (0..24).map(|i| net.input(format!("i{i}"))).collect();
        let mut acc = inputs[0];
        for &i in &inputs[1..] {
            acc = net.xor(acc, i);
        }
        net.set_output("o", acc);
        let area = map(&net, &MapConfig::default())?;
        let depth =
            map(&net, &MapConfig { objective: MapObjective::Depth, ..MapConfig::default() })?;
        assert!(
            depth.logic_depth() <= area.logic_depth(),
            "depth {} vs area {}",
            depth.logic_depth(),
            area.logic_depth()
        );
        // Both remain functionally identical.
        for assignment in [0u32, 1, 0xFFFFFF, 0xA5A5A5] {
            let drive: Vec<(NodeId, bool)> = inputs
                .iter()
                .enumerate()
                .map(|(i, &id)| (id, (assignment >> i) & 1 == 1))
                .collect();
            assert_eq!(
                area.simulate(&drive, 1, &[acc]),
                depth.simulate(&drive, 1, &[acc]),
                "assignment {assignment:x}"
            );
        }
        Ok(())
    }

    #[test]
    fn depth_objective_respects_keep() -> TestResult {
        let mut net = Network::new();
        let a = net.input("a");
        let b = net.input("b");
        let c = net.input("c");
        let x = net.xor(a, b);
        net.set_keep(x);
        let g = net.and(x, c);
        net.set_output("o", g);
        let design =
            map(&net, &MapConfig { objective: MapObjective::Depth, ..MapConfig::default() })?;
        let idx = design.cover_index();
        assert_eq!(design.covers[idx[&x]].leaves.len(), 2, "trivial cover preserved");
        Ok(())
    }

    #[test]
    fn sequential_design_maps() -> TestResult {
        let mut net = Network::new();
        let a = net.input("a");
        let ff = net.dff(false);
        let x = net.xor(ff, a);
        net.connect_dff(ff, x);
        net.set_output("q", ff);
        let design = map(&net, &MapConfig::default())?;
        assert_eq!(design.dffs.len(), 1);
        // Toggle behaviour: q accumulates XOR of the input.
        let rows = design.simulate(&[(a, true)], 3, &[ff]);
        assert_eq!(rows, vec![vec![true], vec![false], vec![true]]);
        Ok(())
    }
}
