//! Packing covers into physical dual-output LUT6s (Fig. 4 of the
//! paper).
//!
//! A Xilinx 7-series LUT either implements one function of up to 6
//! variables or two functions of up to 5 *shared* variables. Packing
//! greedily pairs covers whose input-set union fits in 5 pins; the
//! pair shares one physical LUT, with the first function on `O5` (low
//! INIT half) and the second on `O6` (high half).

use boolfn::{DualOutputInit, TruthTable};
use netlist::NodeId;

use crate::design::{Cover, PackedLut};

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Re-expresses `truth` (over `old_pins`) as a function of
/// `new_pins`, which must be a superset of `old_pins`.
///
/// # Panics
///
/// Panics if an old pin is missing from `new_pins` or if `new_pins`
/// has more than 6 entries.
#[must_use]
pub fn retarget(truth: TruthTable, old_pins: &[NodeId], new_pins: &[NodeId]) -> TruthTable {
    assert!(new_pins.len() <= 6);
    let positions: Vec<usize> = old_pins
        .iter()
        .map(|p| {
            new_pins
                .iter()
                .position(|q| q == p)
                .expect("every old pin must appear among the new pins")
        })
        .collect();
    TruthTable::from_fn(new_pins.len() as u8, |i| {
        let mut old_idx = 0u8;
        for (o, &np) in positions.iter().enumerate() {
            if (i >> np) & 1 == 1 {
                old_idx |= 1 << o;
            }
        }
        truth.eval(old_idx)
    })
}

/// Packs covers into physical LUTs; covers with more than 5 inputs
/// occupy a full LUT, smaller covers are paired when their combined
/// input set fits 5 shared pins.
#[must_use]
pub fn pack(covers: &[Cover], seed: u64) -> Vec<PackedLut> {
    let mut singles: Vec<usize> = Vec::new();
    let mut out: Vec<PackedLut> = Vec::new();
    for (i, c) in covers.iter().enumerate() {
        if c.leaves.len() > 5 {
            out.push(single_lut(c));
        } else {
            singles.push(i);
        }
    }
    // Greedy best-fit pairing over the not-yet-packed small covers:
    // prefer the partner with the most shared input pins (smallest
    // union), as real slice packers do to save routing. This also
    // keeps structurally related functions (e.g. two load-mux bits
    // sharing their control net) in the same physical LUT.
    let mut used = vec![false; covers.len()];
    for idx in 0..singles.len() {
        let i = singles[idx];
        if used[i] {
            continue;
        }
        used[i] = true;
        let ci = &covers[i];
        let union_of = |a: &Cover, b: &Cover| -> Vec<NodeId> {
            let mut union: Vec<NodeId> = a.leaves.clone();
            for &l in &b.leaves {
                if !union.contains(&l) {
                    union.push(l);
                }
            }
            union
        };
        let mut partner: Option<usize> = None;
        let mut best_union = usize::MAX;
        for &j in &singles[idx + 1..] {
            if used[j] {
                continue;
            }
            let u = union_of(ci, &covers[j]).len();
            if u <= 5 && u < best_union {
                best_union = u;
                partner = Some(j);
                if u == ci.leaves.len().max(covers[j].leaves.len()) {
                    break; // cannot share more pins than this
                }
            }
        }
        match partner {
            Some(j) => {
                used[j] = true;
                let cj = &covers[j];
                let mut union: Vec<NodeId> = ci.leaves.clone();
                for &l in &cj.leaves {
                    if !union.contains(&l) {
                        union.push(l);
                    }
                }
                // Deterministic shared-pin order.
                union.sort_by_key(|l| {
                    splitmix64(seed ^ (u64::from(ci.root.0) << 20) ^ u64::from(l.0))
                });
                let t5 = retarget(ci.truth, &ci.leaves, &union);
                let t6 = retarget(cj.truth, &cj.leaves, &union);
                out.push(PackedLut {
                    inputs: union,
                    init: DualOutputInit::from_pair(t5, t6),
                    o6: cj.root,
                    o5: Some(ci.root),
                });
            }
            None => out.push(single_lut(ci)),
        }
    }
    out
}

fn single_lut(c: &Cover) -> PackedLut {
    PackedLut {
        inputs: c.leaves.clone(),
        init: DualOutputInit::from_single(c.truth.extend(6)),
        o6: c.root,
        o5: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boolfn::expr::var;

    fn cover(root: u32, leaves: &[u32], truth: TruthTable) -> Cover {
        Cover { root: NodeId(root), leaves: leaves.iter().map(|&l| NodeId(l)).collect(), truth }
    }

    #[test]
    fn retarget_preserves_semantics() {
        // f(a, b) = a ^ b over pins [10, 11], retargeted to
        // [12, 11, 10]: f' must be (pin10 ^ pin11) = a3 ^ a2.
        let f = (var(1) ^ var(2)).truth_table(2);
        let old = [NodeId(10), NodeId(11)];
        let new = [NodeId(12), NodeId(11), NodeId(10)];
        let g = retarget(f, &old, &new);
        assert_eq!(g, (var(3) ^ var(2)).truth_table(3));
    }

    #[test]
    fn big_cover_is_single() {
        let t = (var(1) ^ var(2) ^ var(3) ^ var(4) ^ var(5) ^ var(6)).truth_table(6);
        let c = cover(100, &[1, 2, 3, 4, 5, 6], t);
        let packed = pack(&[c], 0);
        assert_eq!(packed.len(), 1);
        assert!(!packed[0].is_fractured());
        assert_eq!(packed[0].init.o6(), t.permute(&pin_perm(&packed[0], &[1, 2, 3, 4, 5, 6])));
    }

    /// Builds the permutation mapping the original leaf order to the
    /// packed pin order.
    fn pin_perm(lut: &PackedLut, orig: &[u32]) -> boolfn::Permutation {
        let map: Vec<u8> = (0..orig.len())
            .map(|j| {
                orig.iter().position(|&o| NodeId(o) == lut.inputs[j]).expect("pin present") as u8
            })
            .collect();
        boolfn::Permutation::from_slice(&map).expect("valid permutation")
    }

    #[test]
    fn two_shared_xors_fracture() {
        // Two 2-input XORs over pins {1,2} and {2,3}: union {1,2,3}
        // fits, so they share a fractured LUT.
        let f = (var(1) ^ var(2)).truth_table(2);
        let c1 = cover(100, &[1, 2], f);
        let c2 = cover(101, &[2, 3], f);
        let packed = pack(&[c1, c2], 42);
        assert_eq!(packed.len(), 1);
        let lut = &packed[0];
        assert!(lut.is_fractured());
        assert_eq!(lut.o5, Some(NodeId(100)));
        assert_eq!(lut.o6, NodeId(101));
        // Both halves are 2-input XORs of some pin pair.
        assert!(lut.init.o5().as_xor_pair().is_some());
        assert!(lut.init.o6_fractured().as_xor_pair().is_some());
    }

    #[test]
    fn incompatible_covers_stay_separate() {
        // Unions of 6 distinct pins cannot fracture.
        let f = (var(1) ^ var(2) ^ var(3)).truth_table(3);
        let c1 = cover(100, &[1, 2, 3], f);
        let c2 = cover(101, &[4, 5, 6], f);
        let packed = pack(&[c1, c2], 0);
        assert_eq!(packed.len(), 2);
        assert!(packed.iter().all(|l| !l.is_fractured()));
    }

    #[test]
    fn fractured_semantics_correct() {
        let fa = (var(1) & var(2)).truth_table(2); // over pins [7, 8]
        let fb = (var(1) | var(2)).truth_table(2); // over pins [8, 9]
        let c1 = cover(100, &[7, 8], fa);
        let c2 = cover(101, &[8, 9], fb);
        let packed = pack(&[c1, c2], 7);
        let lut = &packed[0];
        // Evaluate both halves for every assignment of the union pins
        // and compare with the original functions.
        for assign in 0..(1u8 << lut.inputs.len()) {
            let pin_val = |pin: NodeId| -> bool {
                let pos = lut.inputs.iter().position(|&p| p == pin).unwrap();
                (assign >> pos) & 1 == 1
            };
            let want_a = pin_val(NodeId(7)) && pin_val(NodeId(8));
            let want_b = pin_val(NodeId(8)) || pin_val(NodeId(9));
            assert_eq!(lut.init.o5().eval(assign), want_a);
            assert_eq!(lut.init.o6_fractured().eval(assign), want_b);
        }
    }
}
