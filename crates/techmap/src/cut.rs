//! k-feasible cut enumeration.
//!
//! A set of nodes `C` is a *cut* of node `v` if every path from a
//! primary input to `v` passes through a node in `C`; it is
//! `k`-feasible if `|C| ≤ k` (Section II-B). Cuts are enumerated
//! bottom-up: the cut set of a gate is the cross-merge of its fanins'
//! cut sets (each fanin contributing either one of its own cuts or
//! itself as a leaf), pruned to a bounded number of candidates.

use netlist::{Network, NodeId, NodeKind};

/// A cut: a sorted, deduplicated set of leaf nodes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cut {
    leaves: Vec<NodeId>,
}

impl Cut {
    /// The empty cut (a cone of constants).
    #[must_use]
    pub fn empty() -> Self {
        Self { leaves: Vec::new() }
    }

    /// The singleton cut `{n}`.
    #[must_use]
    pub fn singleton(n: NodeId) -> Self {
        Self { leaves: vec![n] }
    }

    /// Builds a cut from arbitrary leaves (sorted and deduplicated).
    #[must_use]
    pub fn from_leaves(mut leaves: Vec<NodeId>) -> Self {
        leaves.sort_unstable();
        leaves.dedup();
        Self { leaves }
    }

    /// The leaves, sorted ascending.
    #[must_use]
    pub fn leaves(&self) -> &[NodeId] {
        &self.leaves
    }

    /// Number of leaves.
    #[must_use]
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// Whether the cut has no leaves.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// Merges two cuts; returns `None` if the union exceeds `k`
    /// leaves.
    #[must_use]
    pub fn merge(&self, other: &Self, k: usize) -> Option<Self> {
        let mut leaves = Vec::with_capacity(self.leaves.len() + other.leaves.len());
        let (mut i, mut j) = (0, 0);
        while i < self.leaves.len() || j < other.leaves.len() {
            let take_left = match (self.leaves.get(i), other.leaves.get(j)) {
                (Some(a), Some(b)) => {
                    if a == b {
                        j += 1;
                        true
                    } else {
                        a < b
                    }
                }
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => unreachable!("loop condition"),
            };
            if take_left {
                leaves.push(self.leaves[i]);
                i += 1;
            } else {
                leaves.push(other.leaves[j]);
                j += 1;
            }
            if leaves.len() > k {
                return None;
            }
        }
        Some(Self { leaves })
    }

    /// Whether `other`'s leaves are a subset of this cut's leaves
    /// (i.e. `other` dominates `self`).
    #[must_use]
    pub fn dominated_by(&self, other: &Self) -> bool {
        if other.leaves.len() > self.leaves.len() {
            return false;
        }
        let mut i = 0;
        for &l in &other.leaves {
            loop {
                match self.leaves.get(i) {
                    Some(&s) if s < l => i += 1,
                    Some(&s) if s == l => {
                        i += 1;
                        break;
                    }
                    _ => return false,
                }
            }
        }
        true
    }
}

/// Enumeration limits.
#[derive(Debug, Clone, Copy)]
pub struct CutParams {
    /// Maximum leaves per cut (`k` of the target LUT architecture).
    pub k: usize,
    /// Maximum cuts retained per node (priority cuts).
    pub max_cuts: usize,
}

impl Default for CutParams {
    fn default() -> Self {
        Self { k: 6, max_cuts: 16 }
    }
}

/// A cut together with its estimated covered volume (number of gates
/// the corresponding LUT would absorb; an upper estimate under
/// reconvergence, used only as a pruning priority).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankedCut {
    /// The cut.
    pub cut: Cut,
    /// Estimated covered gate count.
    pub vol: u32,
}

/// All k-feasible cuts for every node, indexed by node id.
///
/// For mapping-boundary nodes (inputs, flip-flops, ROM outputs) the
/// set is just the singleton cut. For `keep`-marked nodes the set
/// *visible to fanouts* is also just the singleton — that is how the
/// countermeasure prevents the node from being absorbed into a larger
/// LUT.
#[derive(Debug)]
pub struct CutSets {
    sets: Vec<Vec<RankedCut>>,
}

impl CutSets {
    /// Enumerates cut sets for the whole network.
    ///
    /// # Panics
    ///
    /// Panics if the network contains a combinational cycle (callers
    /// validate first).
    #[must_use]
    pub fn enumerate(network: &Network, params: CutParams) -> Self {
        let order = network.topo_order().expect("validated network");
        let mut sets: Vec<Vec<RankedCut>> = vec![Vec::new(); network.len()];
        for id in order {
            let node = network.node(id);
            let set: Vec<RankedCut> = match &node.kind {
                NodeKind::Input { .. } | NodeKind::Dff { .. } | NodeKind::RomOut { .. } => {
                    vec![RankedCut { cut: Cut::singleton(id), vol: 0 }]
                }
                NodeKind::Const(_) => vec![RankedCut { cut: Cut::empty(), vol: 0 }],
                _ if node.keep => {
                    // Covered by its trivial cut only; fanouts may use
                    // it only as a leaf (the countermeasure).
                    vec![RankedCut { cut: Cut::singleton(id), vol: 0 }]
                }
                _gate => {
                    let fanin_sets: Vec<&[RankedCut]> =
                        node.fanin.iter().map(|f| sets[f.index()].as_slice()).collect();
                    let mut merged: Vec<RankedCut> = vec![RankedCut { cut: Cut::empty(), vol: 1 }];
                    for fs in fanin_sets {
                        let mut next = Vec::new();
                        for base in &merged {
                            for c in fs {
                                if let Some(m) = base.cut.merge(&c.cut, params.k) {
                                    next.push(RankedCut { cut: m, vol: base.vol + c.vol });
                                }
                            }
                        }
                        merged = next;
                        if merged.is_empty() {
                            break;
                        }
                    }
                    // Keep the highest-volume cuts plus a few of the
                    // smallest ones (so modular "immediate fanin"
                    // chains survive for higher merges); fanouts can
                    // still choose the node itself as a leaf.
                    prune(&mut merged, params.max_cuts);
                    // The immediate-fanin cut is always available.
                    let trivial = Cut::from_leaves(
                        node.fanin
                            .iter()
                            .copied()
                            .filter(|f| !matches!(network.node(*f).kind, NodeKind::Const(_)))
                            .collect(),
                    );
                    if !merged.iter().any(|r| r.cut == trivial) {
                        merged.push(RankedCut { cut: trivial, vol: 1 });
                    }
                    merged.push(RankedCut { cut: Cut::singleton(id), vol: 0 });
                    merged
                }
            };
            sets[id.index()] = set;
        }
        Self { sets }
    }

    /// The ranked cut set of `id` (includes the singleton leaf cut for
    /// gates, with volume 0).
    #[must_use]
    pub fn cuts(&self, id: NodeId) -> &[RankedCut] {
        &self.sets[id.index()]
    }
}

fn prune(cuts: &mut Vec<RankedCut>, max: usize) {
    // Deduplicate by leaf set, keeping the best volume estimate.
    cuts.sort_by(|a, b| a.cut.leaves().cmp(b.cut.leaves()).then(b.vol.cmp(&a.vol)));
    cuts.dedup_by(|b, a| {
        if a.cut == b.cut {
            a.vol = a.vol.max(b.vol);
            true
        } else {
            false
        }
    });
    // Priority: largest estimated volume first, then fewer leaves,
    // then lexicographically smallest leaf set for determinism.
    cuts.sort_by(|a, b| {
        b.vol
            .cmp(&a.vol)
            .then(a.cut.len().cmp(&b.cut.len()))
            .then_with(|| a.cut.leaves().cmp(b.cut.leaves()))
    });
    if cuts.len() > max {
        // Reserve the tail slots for the smallest cuts so that
        // shallow, modular cuts survive for further merging.
        let reserve = (max / 4).max(1);
        let mut head: Vec<RankedCut> = cuts.drain(..max - reserve).collect();
        cuts.sort_by(|a, b| {
            a.cut
                .len()
                .cmp(&b.cut.len())
                .then(b.vol.cmp(&a.vol))
                .then_with(|| a.cut.leaves().cmp(b.cut.leaves()))
        });
        head.extend(cuts.drain(..reserve.min(cuts.len())));
        head.sort_by(|a, b| a.cut.leaves().cmp(b.cut.leaves()));
        head.dedup_by(|b, a| a.cut == b.cut);
        *cuts = head;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::Network;

    #[test]
    fn merge_respects_k() {
        let a = Cut::from_leaves(vec![NodeId(1), NodeId(2), NodeId(3)]);
        let b = Cut::from_leaves(vec![NodeId(3), NodeId(4), NodeId(5)]);
        let m = a.merge(&b, 6).unwrap();
        assert_eq!(m.len(), 5);
        assert!(a.merge(&b, 4).is_none());
    }

    #[test]
    fn domination() {
        let big = Cut::from_leaves(vec![NodeId(1), NodeId(2), NodeId(3)]);
        let small = Cut::from_leaves(vec![NodeId(1), NodeId(3)]);
        assert!(big.dominated_by(&small));
        assert!(!small.dominated_by(&big));
        assert!(big.dominated_by(&big));
    }

    #[test]
    fn enumerate_xor_tree() {
        // x = (a ^ b) ^ (c ^ d): the root must have a cut {a,b,c,d}.
        let mut n = Network::new();
        let a = n.input("a");
        let b = n.input("b");
        let c = n.input("c");
        let d = n.input("d");
        let x1 = n.xor(a, b);
        let x2 = n.xor(c, d);
        let root = n.xor(x1, x2);
        let sets = CutSets::enumerate(&n, CutParams::default());
        let has = |c: &Cut| sets.cuts(root).iter().any(|r| &r.cut == c);
        let want = Cut::from_leaves(vec![a, b, c, d]);
        assert!(has(&want), "missing the full 4-leaf cut");
        // And the two-leaf cut {x1, x2}.
        let two = Cut::from_leaves(vec![x1, x2]);
        assert!(has(&two));
        // The 4-leaf cut must be ranked with the larger volume.
        let v4 = sets.cuts(root).iter().find(|r| r.cut == want).unwrap().vol;
        let v2 = sets.cuts(root).iter().find(|r| r.cut == two).unwrap().vol;
        assert!(v4 > v2);
    }

    #[test]
    fn keep_nodes_are_barriers() {
        let mut n = Network::new();
        let a = n.input("a");
        let b = n.input("b");
        let c = n.input("c");
        let x = n.xor(a, b);
        n.set_keep(x);
        let y = n.and(x, c);
        let sets = CutSets::enumerate(&n, CutParams::default());
        // Every cut of y must use x as a leaf, never {a, b, c}.
        let absorbed = Cut::from_leaves(vec![a, b, c]);
        assert!(!sets.cuts(y).iter().any(|r| r.cut == absorbed));
        let want = Cut::from_leaves(vec![x, c]);
        assert!(sets.cuts(y).iter().any(|r| r.cut == want));
    }

    #[test]
    fn const_fanins_fold_away() {
        let mut n = Network::new();
        let a = n.input("a");
        let z = n.constant(false);
        let x = n.xor(a, z);
        let sets = CutSets::enumerate(&n, CutParams::default());
        let want = Cut::singleton(a);
        assert!(sets.cuts(x).iter().any(|r| r.cut == want), "constant folded out of the cut");
    }

    #[test]
    fn cut_count_is_bounded() {
        // A chain of XORs: cut sets must stay within max_cuts + leaf.
        let mut n = Network::new();
        let mut prev = n.input("i0");
        for i in 1..40 {
            let x = n.input(format!("i{i}"));
            prev = n.xor(prev, x);
        }
        let params = CutParams { k: 6, max_cuts: 8 };
        let sets = CutSets::enumerate(&n, params);
        for (id, node) in n.iter() {
            if node.kind.is_gate() {
                assert!(sets.cuts(id).len() <= params.max_cuts + 1, "node {id}");
            }
        }
    }
}
