//! A simple delay model and critical-path analysis for mapped
//! designs.
//!
//! Used to reproduce the Section VII-A observation that the
//! countermeasure's trivial-cut constraint deepens the logic: in the
//! paper the unprotected critical path was 6.313 ns (through a BRAM
//! S-box lookup) and the protected design's `MULα → s15` feedback
//! became critical at 7.514 ns. Our absolute numbers come from this
//! model, so only the ordering and the identity of the critical path
//! are expected to match.

use std::collections::HashMap;

use netlist::NodeId;

use crate::design::{EvalItem, MappedDesign};

/// Component delays in nanoseconds.
#[derive(Debug, Clone, Copy)]
pub struct DelayModel {
    /// LUT propagation delay.
    pub lut_ns: f64,
    /// Average routing delay per net hop.
    pub wire_ns: f64,
    /// Block-RAM lookup delay.
    pub bram_ns: f64,
}

impl Default for DelayModel {
    fn default() -> Self {
        // Roughly Artix-7-ish ratios: a BRAM access costs several LUT
        // levels.
        Self { lut_ns: 0.45, wire_ns: 0.45, bram_ns: 2.10 }
    }
}

/// The result of timing analysis.
#[derive(Debug, Clone)]
pub struct TimingReport {
    /// Worst combinational delay (register/input to register/output).
    pub critical_ns: f64,
    /// Nets on the critical path, source first.
    pub path: Vec<NodeId>,
    /// LUT-level depth of the design.
    pub depth: usize,
}

impl TimingReport {
    /// Analyzes `design` under `model`.
    #[must_use]
    pub fn analyze(design: &MappedDesign, model: &DelayModel) -> Self {
        let order = design.evaluation_order();
        let mut arrival: HashMap<NodeId, f64> = HashMap::new();
        let mut pred: HashMap<NodeId, NodeId> = HashMap::new();
        for item in order {
            match item {
                EvalItem::Cover(i) => {
                    let c = &design.covers[i];
                    let (t, from) = worst_input(&arrival, &c.leaves);
                    let t = t + model.wire_ns + model.lut_ns;
                    arrival.insert(c.root, t);
                    if let Some(f) = from {
                        pred.insert(c.root, f);
                    }
                }
                EvalItem::Bram(i) => {
                    let b = &design.brams[i];
                    let (t, from) = worst_input(&arrival, &b.addr);
                    let t = t + model.wire_ns + model.bram_ns;
                    for &o in &b.data {
                        arrival.insert(o, t);
                        if let Some(f) = from {
                            pred.insert(o, f);
                        }
                    }
                }
            }
        }
        // Sinks: flip-flop D inputs and primary outputs.
        let mut worst: Option<(f64, NodeId)> = None;
        let mut consider = |net: NodeId, arrival: &HashMap<NodeId, f64>| {
            let t = arrival.get(&net).copied().unwrap_or(0.0) + model.wire_ns;
            if worst.is_none_or(|(w, _)| t > w) {
                worst = Some((t, net));
            }
        };
        for d in &design.dffs {
            consider(d.d, &arrival);
        }
        for (_, id) in design.network.outputs() {
            consider(*id, &arrival);
        }
        let (critical_ns, end) = worst.unwrap_or((0.0, NodeId(0)));
        let mut path = vec![end];
        let mut cur = end;
        while let Some(&p) = pred.get(&cur) {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Self { critical_ns, path, depth: design.logic_depth() }
    }
}

fn worst_input(arrival: &HashMap<NodeId, f64>, nets: &[NodeId]) -> (f64, Option<NodeId>) {
    let mut worst = 0.0;
    let mut from = None;
    for &n in nets {
        let t = arrival.get(&n).copied().unwrap_or(0.0);
        if from.is_none() || t > worst {
            worst = t;
            from = Some(n);
        }
    }
    (worst, from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{map, MapConfig};
    use netlist::Network;

    #[test]
    fn deeper_logic_longer_path() {
        // A 24-input XOR tree needs more LUT levels than a 4-input one.
        fn xor_net(n: usize) -> Network {
            let mut net = Network::new();
            let inputs: Vec<_> = (0..n).map(|i| net.input(format!("i{i}"))).collect();
            let mut acc = inputs[0];
            for &i in &inputs[1..] {
                acc = net.xor(acc, i);
            }
            net.set_output("o", acc);
            net
        }
        let model = DelayModel::default();
        let small =
            TimingReport::analyze(&map(&xor_net(4), &MapConfig::default()).unwrap(), &model);
        let big = TimingReport::analyze(&map(&xor_net(24), &MapConfig::default()).unwrap(), &model);
        assert!(big.critical_ns > small.critical_ns);
        assert!(big.depth > small.depth);
    }

    #[test]
    fn keep_constraint_increases_delay() {
        // g = ((a ^ b) & c) — absorbed: 1 LUT; with keep on the XOR: 2
        // LUT levels.
        fn make(keep: bool) -> Network {
            let mut net = Network::new();
            let a = net.input("a");
            let b = net.input("b");
            let c = net.input("c");
            let x = net.xor(a, b);
            if keep {
                net.set_keep(x);
            }
            let g = net.and(x, c);
            net.set_output("o", g);
            net
        }
        let model = DelayModel::default();
        let plain =
            TimingReport::analyze(&map(&make(false), &MapConfig::default()).unwrap(), &model);
        let kept = TimingReport::analyze(&map(&make(true), &MapConfig::default()).unwrap(), &model);
        assert!(kept.critical_ns > plain.critical_ns);
        assert_eq!(kept.depth, plain.depth + 1);
    }

    #[test]
    fn path_endpoints_consistent() {
        let mut net = Network::new();
        let a = net.input("a");
        let b = net.input("b");
        let x = net.xor(a, b);
        let ff = net.dff(false);
        net.connect_dff(ff, x);
        net.set_output("q", ff);
        let design = map(&net, &MapConfig::default()).unwrap();
        let report = TimingReport::analyze(&design, &DelayModel::default());
        assert!(report.critical_ns > 0.0);
        assert_eq!(*report.path.last().unwrap(), x, "path ends at the FF's D net");
    }
}
