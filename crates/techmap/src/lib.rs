//! FPGA technology mapping for k-LUT architectures.
//!
//! Implements the textbook flow sketched in Section II-B of the paper:
//! enumerate *k-feasible cuts* for every gate, then cover the network
//! backward from its outputs, reusing already-mapped nodes. The cover
//! of a node `v` with cut `C` becomes a LUT whose inputs are the
//! leaves in `C` and whose function is the cone between `C` and `v`.
//!
//! Two features matter for the attack reproduction:
//!
//! * **Pin scrambling** — LUT input pins are assigned in a
//!   deterministic but key-stream-like order (as real placers do),
//!   which is why the bitstream search must try all input
//!   permutations (`P_k` in Algorithm 1).
//! * **Countermeasure constraints** (Section VII-A) — nodes carrying
//!   the `keep` attribute are covered by *trivial cuts* (a LUT
//!   computing exactly that 2-input XOR) and are never absorbed into
//!   other LUTs. [`pack`] then fractures pairs of small functions
//!   into dual-output LUT6s, producing the "2-input XOR in one half"
//!   population the paper's protected design exhibits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cut;
pub mod design;
pub mod pack;
pub mod timing;

mod cover;

pub use cover::{map, MapConfig, MapError, MapObjective};
pub use cut::Cut;
pub use design::{BramCell, Cover, DffCell, MappedDesign, PackedLut};
pub use timing::{DelayModel, TimingReport};
