//! Mapped-design data structures and a functional simulator used to
//! verify that mapping preserved the circuit's behaviour.

use std::collections::HashMap;

use boolfn::{DualOutputInit, TruthTable};
use netlist::{Network, NodeId, NodeKind, RomId};

/// A selected cover: node `root` is realised by a LUT whose inputs
/// are `leaves` (pin order `a1..ak`) computing `truth`.
#[derive(Debug, Clone)]
pub struct Cover {
    /// The covered node (the LUT output net).
    pub root: NodeId,
    /// LUT input nets in pin order.
    pub leaves: Vec<NodeId>,
    /// The LUT function over those pins.
    pub truth: TruthTable,
}

/// A flip-flop cell.
#[derive(Debug, Clone, Copy)]
pub struct DffCell {
    /// Output net (the original flip-flop node).
    pub q: NodeId,
    /// Input net.
    pub d: NodeId,
    /// Power-up value.
    pub init: bool,
}

/// A block-RAM cell configured as a 256×32 ROM.
#[derive(Debug, Clone)]
pub struct BramCell {
    /// Which ROM table of the source network.
    pub rom: RomId,
    /// The eight address nets, LSB first.
    pub addr: Vec<NodeId>,
    /// The 32 data nets (original `RomOut` node ids), LSB first.
    pub data: Vec<NodeId>,
}

/// A physical dual-output LUT after packing.
#[derive(Debug, Clone)]
pub struct PackedLut {
    /// Input nets in pin order `a1..` (at most 6; at most 5 when
    /// fractured).
    pub inputs: Vec<NodeId>,
    /// The 64-bit configuration.
    pub init: DualOutputInit,
    /// Net driven by `O6`.
    pub o6: NodeId,
    /// Net driven by `O5` when the LUT is fractured.
    pub o5: Option<NodeId>,
}

impl PackedLut {
    /// Whether the LUT hosts two functions.
    #[must_use]
    pub fn is_fractured(&self) -> bool {
        self.o5.is_some()
    }
}

/// The result of technology mapping: LUT covers, packed physical LUTs,
/// and pass-through sequential cells.
#[derive(Debug, Clone)]
pub struct MappedDesign {
    /// The source network (kept for reference and simulation).
    pub network: Network,
    /// One cover per realised combinational node.
    pub covers: Vec<Cover>,
    /// Packed physical LUTs (what placement will put on sites).
    pub luts: Vec<PackedLut>,
    /// Flip-flop cells.
    pub dffs: Vec<DffCell>,
    /// Block-RAM cells.
    pub brams: Vec<BramCell>,
}

impl MappedDesign {
    /// Index of the cover rooted at each node.
    #[must_use]
    pub fn cover_index(&self) -> HashMap<NodeId, usize> {
        self.covers.iter().enumerate().map(|(i, c)| (c.root, i)).collect()
    }

    /// Number of physical LUTs.
    #[must_use]
    pub fn lut_count(&self) -> usize {
        self.luts.len()
    }

    /// Number of fractured (dual-output) LUTs.
    #[must_use]
    pub fn fractured_count(&self) -> usize {
        self.luts.iter().filter(|l| l.is_fractured()).count()
    }

    /// LUT-level depth of the mapping: the maximum number of LUTs on
    /// any source-to-sink combinational path (BRAM lookups count as
    /// one level).
    #[must_use]
    pub fn logic_depth(&self) -> usize {
        let index = self.cover_index();
        let mut depth: HashMap<NodeId, usize> = HashMap::new();
        // Iterate in an order where dependencies resolve: Kahn over
        // cover/bram dependency edges.
        let order = self.evaluation_order();
        for item in order {
            match item {
                EvalItem::Cover(i) => {
                    let c = &self.covers[i];
                    let d = c
                        .leaves
                        .iter()
                        .map(|l| depth.get(l).copied().unwrap_or(0))
                        .max()
                        .unwrap_or(0)
                        + 1;
                    depth.insert(c.root, d);
                }
                EvalItem::Bram(i) => {
                    let b = &self.brams[i];
                    let d = b
                        .addr
                        .iter()
                        .map(|l| depth.get(l).copied().unwrap_or(0))
                        .max()
                        .unwrap_or(0)
                        + 1;
                    for &o in &b.data {
                        depth.insert(o, d);
                    }
                }
            }
        }
        let _ = index;
        depth.values().copied().max().unwrap_or(0)
    }

    /// A dependency-respecting evaluation order over covers and BRAM
    /// cells.
    ///
    /// # Panics
    ///
    /// Panics if the mapped design contains a combinational cycle
    /// (cannot happen for designs produced by [`crate::map`]).
    #[must_use]
    pub fn evaluation_order(&self) -> Vec<EvalItem> {
        // Net -> producing item.
        let mut producer: HashMap<NodeId, EvalItem> = HashMap::new();
        for (i, c) in self.covers.iter().enumerate() {
            producer.insert(c.root, EvalItem::Cover(i));
        }
        for (i, b) in self.brams.iter().enumerate() {
            for &o in &b.data {
                producer.insert(o, EvalItem::Bram(i));
            }
        }
        let deps = |item: EvalItem| -> Vec<EvalItem> {
            let nets: Vec<NodeId> = match item {
                EvalItem::Cover(i) => self.covers[i].leaves.clone(),
                EvalItem::Bram(i) => self.brams[i].addr.clone(),
            };
            nets.iter().filter_map(|n| producer.get(n).copied()).collect()
        };
        let items: Vec<EvalItem> = (0..self.covers.len())
            .map(EvalItem::Cover)
            .chain((0..self.brams.len()).map(EvalItem::Bram))
            .collect();
        // Kahn.
        let key = |it: EvalItem| match it {
            EvalItem::Cover(i) => i,
            EvalItem::Bram(i) => self.covers.len() + i,
        };
        let mut indeg = vec![0usize; self.covers.len() + self.brams.len()];
        let mut fanout: Vec<Vec<EvalItem>> = vec![Vec::new(); indeg.len()];
        for &it in &items {
            for dep in deps(it) {
                indeg[key(it)] += 1;
                fanout[key(dep)].push(it);
            }
        }
        let mut queue: Vec<EvalItem> =
            items.iter().copied().filter(|&i| indeg[key(i)] == 0).collect();
        let mut order = Vec::with_capacity(items.len());
        let mut head = 0;
        while head < queue.len() {
            let it = queue[head];
            head += 1;
            order.push(it);
            for &succ in &fanout[key(it)].clone() {
                indeg[key(succ)] -= 1;
                if indeg[key(succ)] == 0 {
                    queue.push(succ);
                }
            }
        }
        assert_eq!(order.len(), items.len(), "combinational cycle in mapped design");
        order
    }

    /// Simulates the mapped design for `cycles` clock cycles with the
    /// given constant input assignment, returning the final values of
    /// the requested nets after each cycle.
    ///
    /// This is the mapping-correctness oracle used by tests: it must
    /// agree with [`netlist::Simulator`] on the source network.
    #[must_use]
    pub fn simulate(
        &self,
        inputs: &[(NodeId, bool)],
        cycles: usize,
        probes: &[NodeId],
    ) -> Vec<Vec<bool>> {
        let order = self.evaluation_order();
        let mut values: HashMap<NodeId, bool> = HashMap::new();
        for (id, node) in self.network.iter() {
            if let NodeKind::Const(b) = node.kind {
                values.insert(id, b);
            }
        }
        for d in &self.dffs {
            values.insert(d.q, d.init);
        }
        for &(i, v) in inputs {
            values.insert(i, v);
        }
        let mut out = Vec::with_capacity(cycles);
        for _ in 0..cycles {
            // Combinational phase.
            for &item in &order {
                match item {
                    EvalItem::Cover(i) => {
                        let c = &self.covers[i];
                        let mut idx = 0u8;
                        for (p, l) in c.leaves.iter().enumerate() {
                            if values.get(l).copied().unwrap_or(false) {
                                idx |= 1 << p;
                            }
                        }
                        values.insert(c.root, c.truth.eval(idx));
                    }
                    EvalItem::Bram(i) => {
                        let b = &self.brams[i];
                        let mut addr = 0usize;
                        for (p, a) in b.addr.iter().enumerate() {
                            if values.get(a).copied().unwrap_or(false) {
                                addr |= 1 << p;
                            }
                        }
                        let word = self.network.rom_table(b.rom)[addr];
                        for (bit, &o) in b.data.iter().enumerate() {
                            values.insert(o, (word >> bit) & 1 == 1);
                        }
                    }
                }
            }
            // Latch phase.
            let next: Vec<(NodeId, bool)> = self
                .dffs
                .iter()
                .map(|d| (d.q, values.get(&d.d).copied().unwrap_or(false)))
                .collect();
            for (q, v) in next {
                values.insert(q, v);
            }
            out.push(probes.iter().map(|p| values.get(p).copied().unwrap_or(false)).collect());
        }
        out
    }
}

/// An item in the mapped design's evaluation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalItem {
    /// Index into [`MappedDesign::covers`].
    Cover(usize),
    /// Index into [`MappedDesign::brams`].
    Bram(usize),
}
