//! Compact truth tables for Boolean functions of up to 6 variables.

use core::fmt;

use crate::perm::Permutation;
use crate::MAX_VARS;

/// The truth table of a Boolean function of up to 6 variables.
///
/// The function value for the input assignment `i` (where variable `a1`
/// is bit 0 of `i`, ..., `a6` is bit 5) is stored in bit `i` of
/// [`TruthTable::bits`]. For a `k`-variable table only the low `2^k`
/// bits are significant; the constructor keeps the rest cleared so that
/// equality and hashing behave as expected.
///
/// # Example
///
/// ```
/// use boolfn::TruthTable;
///
/// let xor2 = TruthTable::from_fn(2, |i| (i & 1) ^ ((i >> 1) & 1) == 1);
/// assert_eq!(xor2.bits(), 0b0110);
/// assert!(xor2.eval(0b01));
/// assert!(!xor2.eval(0b11));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TruthTable {
    bits: u64,
    k: u8,
}

impl TruthTable {
    /// Creates a `k`-variable truth table from raw bits.
    ///
    /// Bits above position `2^k - 1` are masked off.
    ///
    /// # Panics
    ///
    /// Panics if `k > 6`.
    #[must_use]
    pub fn new(k: u8, bits: u64) -> Self {
        assert!(k <= MAX_VARS, "at most {MAX_VARS} variables supported, got {k}");
        Self { bits: bits & Self::mask(k), k }
    }

    /// Creates a `k`-variable truth table by evaluating `f` on every
    /// input assignment `0..2^k`.
    ///
    /// # Panics
    ///
    /// Panics if `k > 6`.
    #[must_use]
    pub fn from_fn<F: FnMut(u8) -> bool>(k: u8, mut f: F) -> Self {
        assert!(k <= MAX_VARS, "at most {MAX_VARS} variables supported, got {k}");
        let mut bits = 0u64;
        for i in 0..(1u64 << k) {
            if f(i as u8) {
                bits |= 1 << i;
            }
        }
        Self { bits, k }
    }

    /// The constant-0 function of `k` variables.
    #[must_use]
    pub fn zero(k: u8) -> Self {
        Self::new(k, 0)
    }

    /// The constant-1 function of `k` variables.
    #[must_use]
    pub fn one(k: u8) -> Self {
        Self::new(k, u64::MAX)
    }

    /// The projection function `a_var` (`var` is 1-based, per the
    /// paper's `a1..a6` naming).
    ///
    /// # Panics
    ///
    /// Panics if `var` is 0 or greater than `k`.
    #[must_use]
    pub fn var(k: u8, var: u8) -> Self {
        assert!(var >= 1 && var <= k, "variable a{var} out of range for k={k}");
        Self::from_fn(k, |i| (i >> (var - 1)) & 1 == 1)
    }

    /// The low-bits mask for a `k`-variable table.
    #[inline]
    #[must_use]
    pub fn mask(k: u8) -> u64 {
        if k >= 6 {
            u64::MAX
        } else {
            (1u64 << (1u32 << k)) - 1
        }
    }

    /// Raw truth-table bits (low `2^k` bits significant).
    #[inline]
    #[must_use]
    pub fn bits(self) -> u64 {
        self.bits
    }

    /// Number of variables `k`.
    #[inline]
    #[must_use]
    pub fn num_vars(self) -> u8 {
        self.k
    }

    /// Evaluates the function on the input assignment `input`
    /// (variable `a_j` is bit `j-1`).
    #[inline]
    #[must_use]
    pub fn eval(self, input: u8) -> bool {
        debug_assert!((input as u64) < (1u64 << self.k));
        (self.bits >> (input & 0x3f)) & 1 == 1
    }

    /// Returns the number of input assignments on which the function
    /// is 1 (the *weight* of the function).
    #[must_use]
    pub fn weight(self) -> u32 {
        self.bits.count_ones()
    }

    /// Whether the function is constant (0 or 1) over all `2^k` inputs.
    #[must_use]
    pub fn is_constant(self) -> bool {
        self.bits == 0 || self.bits == Self::mask(self.k)
    }

    /// Complement of the function.
    #[allow(clippy::should_implement_trait)] // deliberate: value-style API like `and`/`or`/`xor`
    #[must_use]
    pub fn not(self) -> Self {
        Self::new(self.k, !self.bits)
    }

    /// Pointwise AND of two functions with the same variable count.
    ///
    /// # Panics
    ///
    /// Panics if the variable counts differ.
    #[must_use]
    pub fn and(self, other: Self) -> Self {
        assert_eq!(self.k, other.k, "variable count mismatch");
        Self::new(self.k, self.bits & other.bits)
    }

    /// Pointwise OR of two functions with the same variable count.
    ///
    /// # Panics
    ///
    /// Panics if the variable counts differ.
    #[must_use]
    pub fn or(self, other: Self) -> Self {
        assert_eq!(self.k, other.k, "variable count mismatch");
        Self::new(self.k, self.bits | other.bits)
    }

    /// Pointwise XOR of two functions with the same variable count.
    ///
    /// # Panics
    ///
    /// Panics if the variable counts differ.
    #[must_use]
    pub fn xor(self, other: Self) -> Self {
        assert_eq!(self.k, other.k, "variable count mismatch");
        Self::new(self.k, self.bits ^ other.bits)
    }

    /// Whether the function's value depends on variable `a_var`
    /// (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `var` is 0 or greater than `k`.
    #[must_use]
    pub fn depends_on(self, var: u8) -> bool {
        assert!(var >= 1 && var <= self.k, "variable a{var} out of range for k={}", self.k);
        let (lo, hi) = self.cofactors(var);
        lo != hi
    }

    /// The set of variables the function depends on, as a bitmask
    /// (bit `j-1` set means `a_j` is in the support).
    #[must_use]
    pub fn support(self) -> u8 {
        let mut s = 0u8;
        for v in 1..=self.k {
            if self.depends_on(v) {
                s |= 1 << (v - 1);
            }
        }
        s
    }

    /// Negative and positive cofactors with respect to `a_var`
    /// (1-based), each returned as a `k`-variable table that no longer
    /// depends on `a_var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is 0 or greater than `k`.
    #[must_use]
    pub fn cofactors(self, var: u8) -> (Self, Self) {
        assert!(var >= 1 && var <= self.k, "variable a{var} out of range for k={}", self.k);
        let v = var - 1;
        let lo = Self::from_fn(self.k, |i| self.eval(i & !(1 << v)));
        let hi = Self::from_fn(self.k, |i| self.eval(i | (1 << v)));
        (lo, hi)
    }

    /// Applies an input permutation: the result `g` satisfies
    /// `g(a_1, ..., a_k) = f(a_{perm(1)}, ..., a_{perm(k)})`.
    ///
    /// In other words, input position `j` of the new function is wired
    /// to what used to be input `perm(j)` of `f`.
    ///
    /// # Panics
    ///
    /// Panics if the permutation length differs from the variable count.
    #[must_use]
    pub fn permute(self, perm: &Permutation) -> Self {
        assert_eq!(perm.len() as u8, self.k, "permutation length mismatch");
        Self::from_fn(self.k, |i| {
            // Build the input to f: f's argument j receives the value
            // presented at g's position where perm maps it.
            let mut src = 0u8;
            for (j, &p) in perm.as_slice().iter().enumerate() {
                // g's input position j feeds f's input position p.
                if (i >> j) & 1 == 1 {
                    src |= 1 << p;
                }
            }
            self.eval(src)
        })
    }

    /// Extends the function to `k_new >= k` variables; the added
    /// variables are don't-cares (the function ignores them).
    ///
    /// # Panics
    ///
    /// Panics if `k_new < k` or `k_new > 6`.
    #[must_use]
    pub fn extend(self, k_new: u8) -> Self {
        assert!(k_new >= self.k, "cannot shrink a truth table with extend");
        Self::from_fn(k_new, |i| self.eval(i & (((1u16 << self.k) - 1) as u8)))
    }

    /// Restricts variable `a_var` (1-based) to the constant `value`,
    /// producing a function that ignores `a_var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    #[must_use]
    pub fn restrict(self, var: u8, value: bool) -> Self {
        let (lo, hi) = self.cofactors(var);
        if value {
            hi
        } else {
            lo
        }
    }

    /// Tests whether the function is exactly the XOR of the two
    /// (distinct, 1-based) variables `u` and `v`, ignoring all others.
    #[must_use]
    pub fn is_xor_of(self, u: u8, v: u8) -> bool {
        if u == v || u == 0 || v == 0 || u > self.k || v > self.k {
            return false;
        }
        let want = Self::var(self.k, u).xor(Self::var(self.k, v));
        self == want
    }

    /// If the function is a 2-input XOR of some pair of its variables
    /// (all other variables being don't-cares), returns that pair
    /// (1-based, with the smaller variable first).
    ///
    /// This is the predicate used by the countermeasure scan of
    /// Section VII-B of the paper ("2-input XOR in one half of the
    /// truth table").
    #[must_use]
    pub fn as_xor_pair(self) -> Option<(u8, u8)> {
        let support = self.support();
        if support.count_ones() != 2 {
            return None;
        }
        let u = support.trailing_zeros() as u8 + 1;
        let v = 8 - support.leading_zeros() as u8;
        if self.is_xor_of(u, v) {
            Some((u, v))
        } else {
            None
        }
    }
}

impl fmt::Debug for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TruthTable(k={}, 0x{:0w$x})", self.k, self.bits, w = (1usize << self.k) / 4)
    }
}

impl fmt::Display for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:0w$x}", self.bits, w = (1usize << self.k).div_ceil(4))
    }
}

impl fmt::LowerHex for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.bits, f)
    }
}

impl fmt::UpperHex for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.bits, f)
    }
}

impl fmt::Binary for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.bits, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_projection() {
        let a1 = TruthTable::var(3, 1);
        assert_eq!(a1.bits(), 0b10101010);
        let a3 = TruthTable::var(3, 3);
        assert_eq!(a3.bits(), 0b11110000);
    }

    #[test]
    fn masks_out_high_bits() {
        let t = TruthTable::new(2, u64::MAX);
        assert_eq!(t.bits(), 0b1111);
        assert_eq!(t, TruthTable::one(2));
    }

    #[test]
    fn weight_and_constant() {
        assert!(TruthTable::zero(6).is_constant());
        assert!(TruthTable::one(6).is_constant());
        assert_eq!(TruthTable::one(6).weight(), 64);
        assert!(!TruthTable::var(6, 4).is_constant());
        assert_eq!(TruthTable::var(6, 4).weight(), 32);
    }

    #[test]
    fn support_of_gated_xor() {
        // (a1 ^ a2) & a4 should depend on a1, a2, a4 but not a3.
        let f = TruthTable::var(4, 1).xor(TruthTable::var(4, 2)).and(TruthTable::var(4, 4));
        assert_eq!(f.support(), 0b1011);
        assert!(f.depends_on(1));
        assert!(!f.depends_on(3));
    }

    #[test]
    fn cofactor_identities() {
        let f = TruthTable::var(3, 1).xor(TruthTable::var(3, 3));
        let (lo, hi) = f.cofactors(3);
        // f = !a3 & lo | a3 & hi (Shannon expansion).
        let a3 = TruthTable::var(3, 3);
        let recon = a3.not().and(lo).or(a3.and(hi));
        assert_eq!(recon, f);
        assert!(!lo.depends_on(3));
        assert!(!hi.depends_on(3));
    }

    #[test]
    fn restrict_kills_dependency() {
        let f = TruthTable::var(2, 1).and(TruthTable::var(2, 2));
        assert_eq!(f.restrict(2, false), TruthTable::zero(2));
        assert_eq!(f.restrict(2, true), TruthTable::var(2, 1));
    }

    #[test]
    fn permute_swap_two_vars() {
        // f = a1 & !a2; swapping a1 and a2 should give a2 & !a1.
        let f = TruthTable::var(2, 1).and(TruthTable::var(2, 2).not());
        let p = Permutation::from_slice(&[1, 0]).unwrap();
        let g = f.permute(&p);
        let want = TruthTable::var(2, 2).and(TruthTable::var(2, 1).not());
        assert_eq!(g, want);
    }

    #[test]
    fn permute_identity_is_noop() {
        let f = TruthTable::new(6, 0xdead_beef_0bad_f00d);
        let id = Permutation::identity(6);
        assert_eq!(f.permute(&id), f);
    }

    #[test]
    fn extend_ignores_new_vars() {
        let xor2 = TruthTable::var(2, 1).xor(TruthTable::var(2, 2));
        let f = xor2.extend(5);
        assert_eq!(f.support(), 0b00011);
        assert!(f.eval(0b00001));
        assert!(f.eval(0b10001));
        assert!(!f.eval(0b10011));
    }

    #[test]
    fn xor_pair_detection() {
        let f = TruthTable::var(5, 2).xor(TruthTable::var(5, 4));
        assert_eq!(f.as_xor_pair(), Some((2, 4)));
        assert!(f.is_xor_of(2, 4));
        assert!(f.is_xor_of(4, 2));
        // XNOR is not XOR.
        let g = f.not();
        assert_eq!(g.as_xor_pair(), None);
        // An AND of two vars is not an XOR.
        let h = TruthTable::var(5, 2).and(TruthTable::var(5, 4));
        assert_eq!(h.as_xor_pair(), None);
    }

    #[test]
    #[should_panic(expected = "at most 6 variables")]
    fn too_many_vars_panics() {
        let _ = TruthTable::new(7, 0);
    }
}
