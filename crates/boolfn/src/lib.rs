//! Boolean functions of up to 6 variables, as used by LUT-based FPGAs.
//!
//! This crate is the substrate for the bitstream-modification attack
//! tooling: it provides compact truth tables ([`TruthTable`]), input
//! permutations ([`perm`]), P-equivalence classes ([`pclass`]), a small
//! expression builder ([`expr`]) used to write the paper's candidate
//! functions readably, and dual-output (O5/O6) LUT semantics ([`dual`])
//! matching the fracturable 6-input LUTs of Xilinx 7-series devices.
//!
//! # Conventions
//!
//! Variables are named `a1..a6` following the paper. A truth table of a
//! `k`-variable function is stored in the low `2^k` bits of a `u64`; the
//! bit at index `i` is the function value for the assignment in which
//! `a1` is bit 0 of `i`, `a2` is bit 1, ..., `a6` is bit 5. This matches
//! the row order of Table I in the paper (where `a1` toggles fastest).
//!
//! # Example
//!
//! ```
//! use boolfn::expr::var;
//!
//! // f2 from the paper: (a1 ^ a2 ^ a3) & a4 & a5 & !a6
//! let (a1, a2, a3, a4, a5, a6) = (var(1), var(2), var(3), var(4), var(5), var(6));
//! let f2 = (a1 ^ a2 ^ a3) & a4 & a5 & !a6;
//! let tt = f2.truth_table(6);
//! assert_eq!(tt.support().count_ones(), 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dual;
pub mod expr;
pub mod npn;
pub mod pclass;
pub mod perm;
pub mod truth;

pub use dual::DualOutputInit;
pub use expr::Expr;
pub use perm::Permutation;
pub use truth::TruthTable;

/// Maximum number of LUT inputs supported by this crate (Xilinx 7-series
/// LUTs have six inputs).
pub const MAX_VARS: u8 = 6;
