//! NPN equivalence classes (extension).
//!
//! The paper's tool searches a bitstream for a function "and all
//! Boolean functions within the same P equivalence class", because a
//! placer may permute LUT pins. Synthesis can additionally absorb
//! inverters into LUT inputs or outputs; two functions related by
//! input **N**egation, input **P**ermutation and output **N**egation
//! (NPN) then implement the same gate modulo free inverters. This
//! module canonicalises under the full NPN group — useful when hunting
//! a target gate across bitstreams produced by *different* synthesis
//! flows, where the polarity conventions are unknown.

use crate::perm::Permutation;
use crate::TruthTable;

/// An NPN transformation: negate selected inputs, permute inputs,
/// optionally negate the output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NpnTransform {
    /// Input permutation (applied as in [`TruthTable::permute`]).
    pub perm: Permutation,
    /// Bit `j` set: input `a_{j+1}` is complemented *before* the
    /// permutation.
    pub input_neg: u8,
    /// Whether the output is complemented.
    pub output_neg: bool,
}

impl NpnTransform {
    /// The identity transformation on `k` inputs.
    #[must_use]
    pub fn identity(k: u8) -> Self {
        Self { perm: Permutation::identity(k), input_neg: 0, output_neg: false }
    }

    /// Applies the transformation to `f`.
    #[must_use]
    pub fn apply(&self, f: TruthTable) -> TruthTable {
        let k = f.num_vars();
        let mut g = TruthTable::from_fn(k, |i| f.eval(i ^ self.input_neg));
        g = g.permute(&self.perm);
        if self.output_neg {
            g = g.not();
        }
        g
    }
}

/// The canonical NPN representative: the minimum raw truth table over
/// all `k! · 2^k · 2` transformations.
///
/// # Example
///
/// ```
/// use boolfn::{npn, TruthTable};
///
/// // AND and NOR are NPN-equivalent (complement both inputs of AND).
/// let and2 = TruthTable::var(2, 1).and(TruthTable::var(2, 2));
/// let nor2 = TruthTable::var(2, 1).or(TruthTable::var(2, 2)).not();
/// assert!(npn::equivalent(and2, nor2));
/// // AND and XOR are not.
/// let xor2 = TruthTable::var(2, 1).xor(TruthTable::var(2, 2));
/// assert!(!npn::equivalent(and2, xor2));
/// ```
#[must_use]
pub fn canonical(f: TruthTable) -> TruthTable {
    let k = f.num_vars();
    let mut best = f;
    for perm in Permutation::all(k) {
        for input_neg in 0..(1u16 << k) {
            let t = NpnTransform { perm, input_neg: input_neg as u8, output_neg: false };
            let g = t.apply(f);
            if g < best {
                best = g;
            }
            let gn = g.not();
            if gn < best {
                best = gn;
            }
        }
    }
    best
}

/// Whether `f` and `g` are NPN-equivalent.
#[must_use]
pub fn equivalent(f: TruthTable, g: TruthTable) -> bool {
    f.num_vars() == g.num_vars() && canonical(f) == canonical(g)
}

/// Finds a transformation mapping `f` onto `g`, if one exists.
///
/// # Example
///
/// ```
/// use boolfn::{npn, TruthTable};
///
/// let and2 = TruthTable::var(2, 1).and(TruthTable::var(2, 2));
/// let or2 = TruthTable::var(2, 1).or(TruthTable::var(2, 2));
/// let t = npn::witness(and2, or2).expect("NPN-equivalent");
/// assert_eq!(t.apply(and2), or2);
/// ```
#[must_use]
pub fn witness(f: TruthTable, g: TruthTable) -> Option<NpnTransform> {
    if f.num_vars() != g.num_vars() {
        return None;
    }
    let k = f.num_vars();
    for perm in Permutation::all(k) {
        for input_neg in 0..(1u16 << k) {
            for output_neg in [false, true] {
                let t = NpnTransform { perm, input_neg: input_neg as u8, output_neg };
                if t.apply(f) == g {
                    return Some(t);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::var;
    use crate::pclass;

    #[test]
    fn npn_is_coarser_than_p() {
        // P-equivalent implies NPN-equivalent.
        let f = ((var(1) ^ var(2)) & var(3)).truth_table(3);
        let g = ((var(2) ^ var(3)) & var(1)).truth_table(3);
        assert!(pclass::equivalent(f, g));
        assert!(equivalent(f, g));
        // NPN-equivalent but NOT P-equivalent: negate one input.
        let h = ((var(1) ^ var(2)) & !var(3)).truth_table(3);
        assert!(!pclass::equivalent(f, h));
        assert!(equivalent(f, h));
    }

    #[test]
    fn paper_f2_and_f7_are_npn_related() {
        // f2 = (a1⊕a2⊕a3)a4a5ā6 and f1 = (a1⊕a2⊕a3)a4a5a6 differ
        // only in the polarity of a6 — one NPN class, two P classes.
        let f1 = ((var(1) ^ var(2) ^ var(3)) & var(4) & var(5) & var(6)).truth_table(6);
        let f2 = ((var(1) ^ var(2) ^ var(3)) & var(4) & var(5) & !var(6)).truth_table(6);
        assert!(!pclass::equivalent(f1, f2));
        assert!(equivalent(f1, f2));
    }

    #[test]
    fn witness_maps_f_to_g() {
        let f = (var(1) & var(2)).truth_table(2);
        let g = (var(1) | var(2)).truth_table(2); // = !( !a & !b )
        let t = witness(f, g).expect("AND ~ OR under NPN");
        assert_eq!(t.apply(f), g);
    }

    #[test]
    fn canonical_is_class_invariant() {
        let f = ((var(1) ^ var(2)) & !var(3)).truth_table(4);
        let c = canonical(f);
        for perm in Permutation::all(4).take(8) {
            for neg in [0u8, 1, 5, 15] {
                for out in [false, true] {
                    let t = NpnTransform { perm, input_neg: neg, output_neg: out };
                    assert_eq!(canonical(t.apply(f)), c);
                }
            }
        }
    }

    #[test]
    fn constants_form_one_class() {
        assert!(equivalent(TruthTable::zero(3), TruthTable::one(3)));
        assert_eq!(canonical(TruthTable::one(3)), TruthTable::zero(3));
    }
}
