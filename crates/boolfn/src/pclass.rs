//! P-equivalence classes of Boolean functions.
//!
//! Two functions `f` and `g` belong to the same *P class* if `f` can be
//! transformed into `g` by permuting its inputs (footnote 1 of the
//! paper). The attack tool searches the bitstream for a function *and
//! all functions in its P class*, because synthesis may wire a gate's
//! nets to the LUT pins in any order.

use std::collections::BTreeSet;

use crate::perm::Permutation;
use crate::TruthTable;

/// Returns all distinct truth tables P-equivalent to `f` (including
/// `f` itself), in ascending order of their raw bits.
///
/// The result has at most `k!` entries; symmetric functions produce
/// fewer.
///
/// # Example
///
/// ```
/// use boolfn::{pclass, TruthTable};
///
/// // A fully symmetric function has a singleton class.
/// let xor3 = TruthTable::var(3, 1)
///     .xor(TruthTable::var(3, 2))
///     .xor(TruthTable::var(3, 3));
/// assert_eq!(pclass::members(xor3).len(), 1);
///
/// // a1 & !a2 has 2 members for k = 2.
/// let f = TruthTable::var(2, 1).and(TruthTable::var(2, 2).not());
/// assert_eq!(pclass::members(f).len(), 2);
/// ```
#[must_use]
pub fn members(f: TruthTable) -> Vec<TruthTable> {
    let k = f.num_vars();
    let set: BTreeSet<TruthTable> = Permutation::all(k).map(|p| f.permute(&p)).collect();
    set.into_iter().collect()
}

/// The canonical representative of `f`'s P class: the member with the
/// smallest raw truth-table bits.
///
/// Two functions are P-equivalent iff their canonical representatives
/// are equal.
#[must_use]
pub fn canonical(f: TruthTable) -> TruthTable {
    let k = f.num_vars();
    Permutation::all(k)
        .map(|p| f.permute(&p))
        .min()
        .expect("at least the identity permutation exists")
}

/// Whether `f` and `g` are P-equivalent (related by an input
/// permutation).
///
/// Returns `false` when the variable counts differ.
#[must_use]
pub fn equivalent(f: TruthTable, g: TruthTable) -> bool {
    f.num_vars() == g.num_vars() && canonical(f) == canonical(g)
}

/// If `f` and `g` are P-equivalent, returns a permutation `p` such that
/// `f.permute(&p) == g`.
#[must_use]
pub fn witness(f: TruthTable, g: TruthTable) -> Option<Permutation> {
    if f.num_vars() != g.num_vars() {
        return None;
    }
    Permutation::all(f.num_vars()).find(|p| f.permute(p) == g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::var;

    #[test]
    fn canonical_is_class_invariant() {
        let f = (var(1) ^ var(2) ^ var(3)).truth_table(4) /* ignores a4 */;
        let c = canonical(f);
        for m in members(f) {
            assert_eq!(canonical(m), c);
        }
    }

    #[test]
    fn class_size_divides_factorial() {
        let f = ((var(1) ^ var(2)) & !var(3) & var(4)).truth_table(4);
        let n = members(f).len();
        assert_eq!(24 % n, 0, "orbit size {n} must divide 4!");
        assert!(n > 1);
    }

    #[test]
    fn equivalence_detects_permuted_functions() {
        let f = ((var(1) ^ var(2)) & var(3)).truth_table(3);
        let g = ((var(2) ^ var(3)) & var(1)).truth_table(3);
        assert!(equivalent(f, g));
        let h = ((var(1) | var(2)) & var(3)).truth_table(3);
        assert!(!equivalent(f, h));
    }

    #[test]
    fn witness_maps_f_to_g() {
        let f = ((var(1) ^ var(2)) & var(3)).truth_table(3);
        let g = ((var(2) ^ var(3)) & var(1)).truth_table(3);
        let p = witness(f, g).expect("equivalent");
        assert_eq!(f.permute(&p), g);
        assert!(witness(f, f.not()).is_none());
    }

    #[test]
    fn paper_f2_class_size() {
        // f2 = (a1^a2^a3) a4 a5 ~a6. The XOR block is symmetric in
        // {a1,a2,a3} and the AND block is symmetric in {a4,a5}; the
        // orbit size is 6!/(3!*2!) = 60.
        let f2 = ((var(1) ^ var(2) ^ var(3)) & var(4) & var(5) & !var(6)).truth_table(6);
        assert_eq!(members(f2).len(), 60);
    }
}
