//! A small Boolean expression builder.
//!
//! The paper's candidate functions (Table II / Table VI) are written as
//! algebraic expressions such as `f2 = (a1 ⊕ a2 ⊕ a3) a4 a5 ā6`. This
//! module lets the attack crate transcribe those formulas directly:
//!
//! ```
//! use boolfn::expr::var;
//!
//! let (a1, a2, a3, a4, a5, a6) = (var(1), var(2), var(3), var(4), var(5), var(6));
//! let f2 = (a1 ^ a2 ^ a3) & a4 & a5 & !a6;
//! assert_eq!(f2.truth_table(6).weight(), 4);
//! ```

use core::fmt;
use core::ops::{BitAnd, BitOr, BitXor, Not};
use core::str::FromStr;

use crate::TruthTable;

/// A Boolean expression over the variables `a1..a6`.
///
/// Expressions are small trees built with the `&`, `|`, `^` and `!`
/// operators and converted into a [`TruthTable`] with
/// [`Expr::truth_table`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A constant.
    Const(bool),
    /// The variable `a_n` (1-based, `1..=6`).
    Var(u8),
    /// Logical complement.
    Not(Box<Expr>),
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Exclusive or.
    Xor(Box<Expr>, Box<Expr>),
}

/// Returns the variable `a_n` as an expression (1-based).
///
/// # Panics
///
/// Panics if `n` is 0 or greater than 6.
#[must_use]
pub fn var(n: u8) -> Expr {
    assert!((1..=6).contains(&n), "variable index must be in 1..=6, got {n}");
    Expr::Var(n)
}

/// Returns a constant expression.
#[must_use]
pub fn constant(value: bool) -> Expr {
    Expr::Const(value)
}

impl Expr {
    /// Evaluates the expression for the input assignment `input`
    /// (variable `a_j` is bit `j-1`).
    #[must_use]
    pub fn eval(&self, input: u8) -> bool {
        match self {
            Expr::Const(b) => *b,
            Expr::Var(n) => (input >> (n - 1)) & 1 == 1,
            Expr::Not(e) => !e.eval(input),
            Expr::And(l, r) => l.eval(input) && r.eval(input),
            Expr::Or(l, r) => l.eval(input) || r.eval(input),
            Expr::Xor(l, r) => l.eval(input) ^ r.eval(input),
        }
    }

    /// Converts the expression to a `k`-variable truth table.
    ///
    /// # Panics
    ///
    /// Panics if `k > 6` or the expression references a variable above
    /// `a_k`.
    #[must_use]
    pub fn truth_table(&self, k: u8) -> TruthTable {
        assert!(self.max_var() <= k, "expression references a variable above a{k}");
        TruthTable::from_fn(k, |i| self.eval(i))
    }

    /// The highest variable index referenced (0 for constants).
    #[must_use]
    pub fn max_var(&self) -> u8 {
        match self {
            Expr::Const(_) => 0,
            Expr::Var(n) => *n,
            Expr::Not(e) => e.max_var(),
            Expr::And(l, r) | Expr::Or(l, r) | Expr::Xor(l, r) => l.max_var().max(r.max_var()),
        }
    }
}

impl Not for Expr {
    type Output = Expr;
    fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }
}

impl BitAnd for Expr {
    type Output = Expr;
    fn bitand(self, rhs: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(rhs))
    }
}

impl BitOr for Expr {
    type Output = Expr;
    fn bitor(self, rhs: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(rhs))
    }
}

impl BitXor for Expr {
    type Output = Expr;
    fn bitxor(self, rhs: Expr) -> Expr {
        Expr::Xor(Box::new(self), Box::new(rhs))
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(b) => write!(f, "{}", u8::from(*b)),
            Expr::Var(n) => write!(f, "a{n}"),
            Expr::Not(e) => match e.as_ref() {
                Expr::Var(n) => write!(f, "~a{n}"),
                other => write!(f, "~({other})"),
            },
            Expr::And(l, r) => {
                fn factor(f: &mut fmt::Formatter<'_>, e: &Expr) -> fmt::Result {
                    match e {
                        Expr::Or(..) | Expr::Xor(..) => write!(f, "({e})"),
                        _ => write!(f, "{e}"),
                    }
                }
                factor(f, l)?;
                write!(f, " & ")?;
                factor(f, r)
            }
            Expr::Or(l, r) => write!(f, "{l} | {r}"),
            Expr::Xor(l, r) => {
                fn term(f: &mut fmt::Formatter<'_>, e: &Expr) -> fmt::Result {
                    match e {
                        Expr::Or(..) => write!(f, "({e})"),
                        _ => write!(f, "{e}"),
                    }
                }
                term(f, l)?;
                write!(f, " ^ ")?;
                term(f, r)
            }
        }
    }
}

/// An error from parsing a Boolean formula.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseExprError {
    /// Byte offset of the problem.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseExprError {}

/// Parses a Boolean formula over `a1..a6`.
///
/// Grammar (loosest binding first):
///
/// ```text
/// expr   := xor ( '|' xor )*
/// xor    := term ( '^' term )*
/// term   := factor ( '&' factor )*       -- '&' may be omitted: "a1 a2" = a1 & a2
/// factor := '~' factor | '!' factor | '(' expr ')' | 'a'[1-6] | '0' | '1'
/// ```
///
/// This matches the notation of the paper's Table II, e.g.
/// `"(a1^a2^a3) a4 a5 ~a6"` is its `f2`.
///
/// # Example
///
/// ```
/// use boolfn::expr::{parse, var};
///
/// let f2 = parse("(a1^a2^a3) a4 a5 ~a6")?;
/// let built = (var(1) ^ var(2) ^ var(3)) & var(4) & var(5) & !var(6);
/// assert_eq!(f2.truth_table(6), built.truth_table(6));
/// # Ok::<(), boolfn::expr::ParseExprError>(())
/// ```
///
/// # Errors
///
/// Returns [`ParseExprError`] on malformed input.
pub fn parse(input: &str) -> Result<Expr, ParseExprError> {
    let mut p = Parser { bytes: input.as_bytes(), at: 0 };
    let e = p.expr()?;
    p.skip_ws();
    if p.at != p.bytes.len() {
        return Err(p.error("trailing input"));
    }
    Ok(e)
}

impl FromStr for Expr {
    type Err = ParseExprError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        parse(s)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> ParseExprError {
        ParseExprError { at: self.at, message: message.to_string() }
    }

    fn skip_ws(&mut self) {
        while self.bytes.get(self.at).is_some_and(|b| b.is_ascii_whitespace()) {
            self.at += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.at).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.at += 1;
            true
        } else {
            false
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseExprError> {
        let mut e = self.xor()?;
        while self.eat(b'|') {
            e = e | self.xor()?;
        }
        Ok(e)
    }

    fn xor(&mut self) -> Result<Expr, ParseExprError> {
        let mut e = self.term()?;
        while self.eat(b'^') {
            e = e ^ self.term()?;
        }
        Ok(e)
    }

    fn term(&mut self) -> Result<Expr, ParseExprError> {
        let mut e = self.factor()?;
        loop {
            if self.eat(b'&') {
                e = e & self.factor()?;
                continue;
            }
            // Implicit conjunction: a factor directly follows.
            match self.peek() {
                Some(b'~' | b'!' | b'(' | b'a' | b'0' | b'1') => {
                    e = e & self.factor()?;
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn factor(&mut self) -> Result<Expr, ParseExprError> {
        match self.peek() {
            Some(b'~') | Some(b'!') => {
                self.at += 1;
                Ok(!self.factor()?)
            }
            Some(b'(') => {
                self.at += 1;
                let e = self.expr()?;
                if !self.eat(b')') {
                    return Err(self.error("expected ')'"));
                }
                Ok(e)
            }
            Some(b'a') => {
                self.at += 1;
                match self.bytes.get(self.at) {
                    Some(d @ b'1'..=b'6') => {
                        self.at += 1;
                        Ok(var(d - b'0'))
                    }
                    _ => Err(self.error("expected a variable index 1..6 after 'a'")),
                }
            }
            Some(b'0') => {
                self.at += 1;
                Ok(constant(false))
            }
            Some(b'1') => {
                self.at += 1;
                Ok(constant(true))
            }
            _ => Err(self.error("expected a factor")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operators_build_expected_tables() {
        let f = (var(1) ^ var(2)) & !var(3);
        let tt = f.truth_table(3);
        let want =
            TruthTable::var(3, 1).xor(TruthTable::var(3, 2)).and(TruthTable::var(3, 3).not());
        assert_eq!(tt, want);
    }

    #[test]
    fn constants() {
        assert_eq!(constant(false).truth_table(4), TruthTable::zero(4));
        assert_eq!(constant(true).truth_table(4), TruthTable::one(4));
    }

    #[test]
    fn paper_f2_properties() {
        // f2 = (a1 ^ a2 ^ a3) a4 a5 ~a6: weight 4 (of the 8 assignments
        // with a4 a5 ~a6 true, the 3-input XOR is 1 on half).
        let f2 = (var(1) ^ var(2) ^ var(3)) & var(4) & var(5) & !var(6);
        let tt = f2.truth_table(6);
        assert_eq!(tt.weight(), 4);
        assert_eq!(tt.support(), 0b111111);
    }

    #[test]
    fn mux2_expression() {
        // f_MUX2 = a6(a1 a2 + ~a1 a3) + ~a6(a1 a4 + ~a1 a5)
        let f = (var(6) & ((var(1) & var(2)) | (!var(1) & var(3))))
            | (!var(6) & ((var(1) & var(4)) | (!var(1) & var(5))));
        let tt = f.truth_table(6);
        assert_eq!(tt.support(), 0b111111);
        // With a6=1, a1=1 the output equals a2.
        assert!(tt.eval(0b100011));
        assert!(!tt.eval(0b100001));
    }

    #[test]
    fn display_roundtrips_visually() {
        let f = (var(1) ^ var(2)) & !var(4) | (var(3) & var(6));
        assert_eq!(format!("{f}"), "(a1 ^ a2) & ~a4 | a3 & a6");
    }

    #[test]
    #[should_panic(expected = "references a variable above")]
    fn truth_table_checks_max_var() {
        let _ = var(5).truth_table(3);
    }

    #[test]
    fn parse_paper_f2() {
        let parsed: Expr = "(a1^a2^a3) a4 a5 ~a6".parse().unwrap();
        let built = (var(1) ^ var(2) ^ var(3)) & var(4) & var(5) & !var(6);
        assert_eq!(parsed.truth_table(6), built.truth_table(6));
    }

    #[test]
    fn parse_paper_f19() {
        let parsed: Expr = "(a1^a2)~a4 ^ a3&a6".parse().unwrap();
        let built = ((var(1) ^ var(2)) & !var(4)) ^ (var(3) & var(6));
        assert_eq!(parsed.truth_table(6), built.truth_table(6));
    }

    #[test]
    fn parse_precedence() {
        // '&' binds tighter than '^' binds tighter than '|'.
        let parsed: Expr = "a1 | a2 ^ a3 & a4".parse().unwrap();
        let built = var(1) | (var(2) ^ (var(3) & var(4)));
        assert_eq!(parsed.truth_table(4), built.truth_table(4));
    }

    #[test]
    fn parse_constants_and_bang() {
        let parsed: Expr = "!(a1 ^ 1) & !0".parse().unwrap();
        let built = !(var(1) ^ constant(true)) & !constant(false);
        assert_eq!(parsed.truth_table(1), built.truth_table(1));
    }

    #[test]
    fn parse_display_roundtrip() {
        for src in ["(a1 ^ a2) & ~a4 | a3 & a6", "a1 ^ (a2 & a3)", "~a1 & a2"] {
            let e: Expr = src.parse().unwrap();
            let again: Expr = e.to_string().parse().unwrap();
            assert_eq!(e.truth_table(6), again.truth_table(6), "{src}");
        }
    }

    #[test]
    fn parse_errors() {
        assert!("a7".parse::<Expr>().is_err());
        assert!("a1 &".parse::<Expr>().is_err());
        assert!("(a1".parse::<Expr>().is_err());
        assert!("a1) ".parse::<Expr>().is_err());
        assert!("".parse::<Expr>().is_err());
        let err = "a1 @ a2".parse::<Expr>().unwrap_err();
        assert!(err.to_string().contains("parse error"));
    }
}
