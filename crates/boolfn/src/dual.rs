//! Dual-output (fracturable) 6-input LUT semantics.
//!
//! Xilinx 7-series LUTs (Fig. 4 of the paper) hold a 64-bit
//! configuration `INIT`. A LUT implements either
//!
//! * a single Boolean function of up to 6 independent variables on
//!   output `O6`, or
//! * two Boolean functions of up to 5 *shared* variables: `O5` is read
//!   from the low half of `INIT` and `O6` from the high half, with the
//!   sixth input pin tied high to steer the output multiplexer.
//!
//! The countermeasure analysis of Section VII-B searches bitstreams for
//! LUTs with "the 2-input XOR in one half of their truth table and any
//! Boolean function of up to 5 dependent variables in another half";
//! [`DualOutputInit::xor_half`] is that predicate.

use core::fmt;

use crate::TruthTable;

/// The 64-bit configuration of a dual-output 6-input LUT.
///
/// # Example
///
/// ```
/// use boolfn::{DualOutputInit, TruthTable};
///
/// let xor2 = TruthTable::var(5, 1).xor(TruthTable::var(5, 2));
/// let other = TruthTable::var(5, 3).and(TruthTable::var(5, 4));
/// let init = DualOutputInit::from_pair(xor2, other);
/// assert_eq!(init.o5(), xor2);
/// assert_eq!(init.o6_fractured(), other);
/// assert_eq!(init.xor_half(), Some((1, 2)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DualOutputInit(u64);

impl DualOutputInit {
    /// Wraps a raw 64-bit INIT value.
    #[must_use]
    pub fn new(init: u64) -> Self {
        Self(init)
    }

    /// Configures the LUT as a single 6-input function on `O6`.
    ///
    /// # Panics
    ///
    /// Panics if `f` has fewer than 6 variables (extend it first with
    /// [`TruthTable::extend`]).
    #[must_use]
    pub fn from_single(f: TruthTable) -> Self {
        assert_eq!(f.num_vars(), 6, "single-output configuration requires a 6-variable table");
        Self(f.bits())
    }

    /// Configures the LUT in fractured mode: `o5` in the low half,
    /// `o6` in the high half, both functions of the shared inputs
    /// `a1..a5`.
    ///
    /// # Panics
    ///
    /// Panics if either function has more than 5 variables.
    #[must_use]
    pub fn from_pair(o5: TruthTable, o6: TruthTable) -> Self {
        assert!(
            o5.num_vars() <= 5 && o6.num_vars() <= 5,
            "fractured halves take at most 5 variables"
        );
        let lo = o5.extend(5).bits() & 0xffff_ffff;
        let hi = o6.extend(5).bits() & 0xffff_ffff;
        Self(lo | (hi << 32))
    }

    /// The raw 64-bit INIT value.
    #[must_use]
    pub fn init(self) -> u64 {
        self.0
    }

    /// The full 6-input function seen on `O6` in single-output mode.
    #[must_use]
    pub fn o6(self) -> TruthTable {
        TruthTable::new(6, self.0)
    }

    /// The `O5` output in fractured mode: the low half of INIT as a
    /// 5-variable function.
    #[must_use]
    pub fn o5(self) -> TruthTable {
        TruthTable::new(5, self.0 & 0xffff_ffff)
    }

    /// The `O6` output in fractured mode (sixth input tied high): the
    /// high half of INIT as a 5-variable function.
    #[must_use]
    pub fn o6_fractured(self) -> TruthTable {
        TruthTable::new(5, self.0 >> 32)
    }

    /// Whether this INIT encodes a genuinely fractured LUT, i.e. the
    /// 6-input function on `O6` actually depends on `a6` (the two
    /// halves differ).
    #[must_use]
    pub fn is_fractured(self) -> bool {
        (self.0 & 0xffff_ffff) != (self.0 >> 32)
    }

    /// The Section VII-B countermeasure-scan predicate: if either half
    /// of the truth table is exactly a 2-input XOR of two of the five
    /// shared variables, returns that pair (1-based).
    ///
    /// Checks the `O5` half first, then the `O6` half.
    #[must_use]
    pub fn xor_half(self) -> Option<(u8, u8)> {
        self.o5().as_xor_pair().or_else(|| self.o6_fractured().as_xor_pair())
    }
}

impl fmt::Debug for DualOutputInit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DualOutputInit(0x{:016x})", self.0)
    }
}

impl fmt::Display for DualOutputInit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "64'h{:016x}", self.0)
    }
}

impl fmt::LowerHex for DualOutputInit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for DualOutputInit {
    fn from(init: u64) -> Self {
        Self(init)
    }
}

impl From<DualOutputInit> for u64 {
    fn from(d: DualOutputInit) -> u64 {
        d.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::var;

    #[test]
    fn single_output_roundtrip() {
        let f = ((var(1) ^ var(2) ^ var(3)) & var(4) & var(5) & !var(6)).truth_table(6);
        let init = DualOutputInit::from_single(f);
        assert_eq!(init.o6(), f);
    }

    #[test]
    fn fractured_pair_roundtrip() {
        let g = (var(1) ^ var(4)).truth_table(5);
        let h = (var(2) & var(3) & var(5)).truth_table(5);
        let init = DualOutputInit::from_pair(g, h);
        assert_eq!(init.o5(), g);
        assert_eq!(init.o6_fractured(), h);
        assert!(init.is_fractured());
    }

    #[test]
    fn unfractured_when_halves_match() {
        let g = (var(1) & var(2)).truth_table(5);
        let init = DualOutputInit::from_pair(g, g);
        assert!(!init.is_fractured());
        // The equivalent 6-input function ignores a6.
        assert!(!init.o6().depends_on(6));
    }

    #[test]
    fn xor_half_predicate() {
        let xor = (var(2) ^ var(5)).truth_table(5);
        let other = (var(1) | (var(3) & var(4))).truth_table(5);
        assert_eq!(DualOutputInit::from_pair(xor, other).xor_half(), Some((2, 5)));
        assert_eq!(DualOutputInit::from_pair(other, xor).xor_half(), Some((2, 5)));
        assert_eq!(DualOutputInit::from_pair(other, other).xor_half(), None);
        // Both XOR halves: the countermeasure's "both outputs implement
        // the 2-input XOR" case still reports a pair.
        assert!(DualOutputInit::from_pair(xor, xor).xor_half().is_some());
    }

    #[test]
    fn o6_mode_combines_halves_via_a6() {
        let g = (var(1) & var(2)).truth_table(5);
        let h = (var(1) | var(2)).truth_table(5);
        let init = DualOutputInit::from_pair(g, h);
        let full = init.o6();
        // a6 = 0 selects the low half, a6 = 1 the high half.
        assert_eq!(full.restrict(6, false).bits() & 0xffff_ffff, g.bits());
        assert_eq!(full.restrict(6, true).bits() & 0xffff_ffff, h.bits());
    }
}
