//! Permutations of LUT input positions.
//!
//! Algorithm 1 of the paper iterates over "all permutations of `k`
//! elements" (the set `P_k`) when matching a candidate function against
//! the bitstream, because the synthesis tool is free to wire a gate's
//! nets to any LUT pin. This module provides the [`Permutation`] type
//! and an iterator over all `k!` permutations.

use core::fmt;

/// An error produced when constructing a [`Permutation`] from a slice
/// that is not a permutation of `0..n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParsePermutationError;

impl fmt::Display for ParsePermutationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slice is not a permutation of 0..n")
    }
}

impl std::error::Error for ParsePermutationError {}

/// A permutation of `n <= 6` elements, stored inline.
///
/// `perm[j]` is the source index mapped to position `j`; see
/// [`crate::TruthTable::permute`] for the precise semantics when
/// applied to a truth table.
///
/// # Example
///
/// ```
/// use boolfn::Permutation;
///
/// let id = Permutation::identity(3);
/// assert_eq!(id.as_slice(), &[0, 1, 2]);
/// assert_eq!(Permutation::all(3).count(), 6);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Permutation {
    map: [u8; 6],
    len: u8,
}

impl Permutation {
    /// The identity permutation on `n` elements.
    ///
    /// # Panics
    ///
    /// Panics if `n > 6`.
    #[must_use]
    pub fn identity(n: u8) -> Self {
        assert!(n <= 6, "at most 6 elements supported");
        let mut map = [0u8; 6];
        for (i, m) in map.iter_mut().enumerate().take(n as usize) {
            *m = i as u8;
        }
        Self { map, len: n }
    }

    /// Builds a permutation from a slice.
    ///
    /// # Errors
    ///
    /// Returns [`ParsePermutationError`] if the slice is longer than 6
    /// elements or is not a permutation of `0..len`.
    pub fn from_slice(s: &[u8]) -> Result<Self, ParsePermutationError> {
        if s.len() > 6 {
            return Err(ParsePermutationError);
        }
        let mut seen = [false; 6];
        for &x in s {
            if x as usize >= s.len() || seen[x as usize] {
                return Err(ParsePermutationError);
            }
            seen[x as usize] = true;
        }
        let mut map = [0u8; 6];
        map[..s.len()].copy_from_slice(s);
        Ok(Self { map, len: s.len() as u8 })
    }

    /// Number of elements this permutation acts on.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the permutation acts on zero elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The permutation as a slice: `slice[j]` is the source index for
    /// position `j`.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.map[..self.len as usize]
    }

    /// The image of `j` under the permutation.
    ///
    /// # Panics
    ///
    /// Panics if `j >= len`.
    #[must_use]
    pub fn apply(&self, j: u8) -> u8 {
        self.as_slice()[j as usize]
    }

    /// The inverse permutation.
    #[must_use]
    pub fn inverse(&self) -> Self {
        let mut map = [0u8; 6];
        for (j, &p) in self.as_slice().iter().enumerate() {
            map[p as usize] = j as u8;
        }
        Self { map, len: self.len }
    }

    /// Composition `self ∘ other` (apply `other` first).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[must_use]
    pub fn compose(&self, other: &Self) -> Self {
        assert_eq!(self.len, other.len, "length mismatch");
        let mut map = [0u8; 6];
        for j in 0..self.len {
            map[j as usize] = self.apply(other.apply(j));
        }
        Self { map, len: self.len }
    }

    /// Iterates over all `n!` permutations of `n` elements in
    /// lexicographic order. This realises `COMPUTEPERMUTATIONS` from
    /// Algorithm 1 of the paper.
    ///
    /// # Panics
    ///
    /// Panics if `n > 6`.
    pub fn all(n: u8) -> All {
        assert!(n <= 6, "at most 6 elements supported");
        All { next: Some(Permutation::identity(n)) }
    }
}

impl fmt::Debug for Permutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Permutation{:?}", self.as_slice())
    }
}

impl fmt::Display for Permutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, x) in self.as_slice().iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{x}")?;
        }
        write!(f, ")")
    }
}

/// Iterator over all permutations of `n` elements, produced by
/// [`Permutation::all`].
#[derive(Debug, Clone)]
pub struct All {
    next: Option<Permutation>,
}

impl Iterator for All {
    type Item = Permutation;

    fn next(&mut self) -> Option<Permutation> {
        let cur = self.next?;
        // Compute the lexicographic successor in place.
        let mut v: Vec<u8> = cur.as_slice().to_vec();
        self.next = next_lex(&mut v).then(|| Permutation::from_slice(&v).expect("valid"));
        Some(cur)
    }
}

/// Advances `v` to its lexicographic successor; returns `false` when
/// `v` was the last permutation.
fn next_lex(v: &mut [u8]) -> bool {
    if v.len() < 2 {
        return false;
    }
    let mut i = v.len() - 1;
    while i > 0 && v[i - 1] >= v[i] {
        i -= 1;
    }
    if i == 0 {
        return false;
    }
    let mut j = v.len() - 1;
    while v[j] <= v[i - 1] {
        j -= 1;
    }
    v.swap(i - 1, j);
    v[i..].reverse();
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_are_factorials() {
        for (n, f) in [(0u8, 1usize), (1, 1), (2, 2), (3, 6), (4, 24), (5, 120), (6, 720)] {
            assert_eq!(Permutation::all(n).count(), f, "n = {n}");
        }
    }

    #[test]
    fn all_distinct() {
        let mut seen = std::collections::HashSet::new();
        for p in Permutation::all(4) {
            assert!(seen.insert(p.as_slice().to_vec()));
        }
        assert_eq!(seen.len(), 24);
    }

    #[test]
    fn inverse_roundtrip() {
        for p in Permutation::all(5) {
            let q = p.inverse();
            assert_eq!(p.compose(&q), Permutation::identity(5));
            assert_eq!(q.compose(&p), Permutation::identity(5));
        }
    }

    #[test]
    fn from_slice_rejects_non_permutations() {
        assert!(Permutation::from_slice(&[0, 0]).is_err());
        assert!(Permutation::from_slice(&[1, 2]).is_err());
        assert!(Permutation::from_slice(&[0, 1, 2, 3, 4, 5, 6]).is_err());
        assert!(Permutation::from_slice(&[2, 0, 1]).is_ok());
    }

    #[test]
    fn lexicographic_order() {
        let perms: Vec<_> = Permutation::all(3).map(|p| p.as_slice().to_vec()).collect();
        assert_eq!(
            perms,
            vec![
                vec![0, 1, 2],
                vec![0, 2, 1],
                vec![1, 0, 2],
                vec![1, 2, 0],
                vec![2, 0, 1],
                vec![2, 1, 0],
            ]
        );
    }
}
