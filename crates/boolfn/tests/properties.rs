//! Property tests on the Boolean-function substrate.

use boolfn::expr::var;
use boolfn::{pclass, DualOutputInit, Permutation, TruthTable};
use proptest::prelude::*;

fn arb_perm(k: u8) -> impl Strategy<Value = Permutation> {
    Just(()).prop_perturb(move |(), mut rng| {
        let mut v: Vec<u8> = (0..k).collect();
        for i in (1..v.len()).rev() {
            let j = (rng.next_u32() as usize) % (i + 1);
            v.swap(i, j);
        }
        Permutation::from_slice(&v).expect("valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn permute_respects_composition(bits in any::<u64>(), p in arb_perm(6), q in arb_perm(6)) {
        let f = TruthTable::new(6, bits);
        // f.permute(p).permute(q) applies p "inside" q.
        let lhs = f.permute(&p).permute(&q);
        let rhs = f.permute(&p.compose(&q));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn permute_inverse_roundtrip(bits in any::<u64>(), p in arb_perm(6)) {
        let f = TruthTable::new(6, bits);
        prop_assert_eq!(f.permute(&p).permute(&p.inverse()), f);
    }

    #[test]
    fn permutation_preserves_weight_and_support_size(bits in any::<u64>(), p in arb_perm(6)) {
        let f = TruthTable::new(6, bits);
        let g = f.permute(&p);
        prop_assert_eq!(f.weight(), g.weight());
        prop_assert_eq!(f.support().count_ones(), g.support().count_ones());
    }

    #[test]
    fn canonical_is_invariant_under_permutation(bits in any::<u64>(), p in arb_perm(6)) {
        let f = TruthTable::new(6, bits);
        prop_assert_eq!(pclass::canonical(f), pclass::canonical(f.permute(&p)));
        prop_assert!(pclass::equivalent(f, f.permute(&p)));
    }

    #[test]
    fn class_members_contains_all_permutations(bits in any::<u32>()) {
        // 5-var functions keep the orbit enumeration fast.
        let f = TruthTable::new(5, u64::from(bits));
        let members = pclass::members(f);
        for p in Permutation::all(5) {
            prop_assert!(members.contains(&f.permute(&p)));
        }
        // Orbit size divides 5!.
        prop_assert_eq!(120 % members.len(), 0);
    }

    #[test]
    fn witness_maps_between_equivalents(bits in any::<u64>(), p in arb_perm(6)) {
        let f = TruthTable::new(6, bits);
        let g = f.permute(&p);
        let w = pclass::witness(f, g).expect("equivalent by construction");
        prop_assert_eq!(f.permute(&w), g);
    }

    #[test]
    fn shannon_expansion(bits in any::<u64>(), v in 1u8..=6) {
        let f = TruthTable::new(6, bits);
        let (lo, hi) = f.cofactors(v);
        let sel = TruthTable::var(6, v);
        let recon = sel.not().and(lo).or(sel.and(hi));
        prop_assert_eq!(recon, f);
        prop_assert!(!lo.depends_on(v));
        prop_assert!(!hi.depends_on(v));
    }

    #[test]
    fn support_is_exact(bits in any::<u64>()) {
        let f = TruthTable::new(6, bits);
        let support = f.support();
        for v in 1u8..=6 {
            let in_support = (support >> (v - 1)) & 1 == 1;
            prop_assert_eq!(in_support, f.depends_on(v));
            if !in_support {
                prop_assert_eq!(f.restrict(v, false), f.restrict(v, true));
            }
        }
    }

    #[test]
    fn extend_preserves_evaluation(bits in any::<u16>(), input in 0u8..16) {
        let f = TruthTable::new(4, u64::from(bits));
        let g = f.extend(6);
        prop_assert_eq!(g.eval(input), f.eval(input));
        // High inputs are don't-cares.
        prop_assert_eq!(g.eval(input | 0b110000), f.eval(input));
    }

    #[test]
    fn dual_output_roundtrip(lo in any::<u32>(), hi in any::<u32>()) {
        let o5 = TruthTable::new(5, u64::from(lo));
        let o6 = TruthTable::new(5, u64::from(hi));
        let init = DualOutputInit::from_pair(o5, o6);
        prop_assert_eq!(init.o5(), o5);
        prop_assert_eq!(init.o6_fractured(), o6);
        prop_assert_eq!(init.is_fractured(), lo != hi);
    }

    #[test]
    fn xor_pair_detection_is_sound(a in 1u8..=5, b in 1u8..=5) {
        prop_assume!(a != b);
        let f = TruthTable::var(5, a).xor(TruthTable::var(5, b));
        let (x, y) = f.as_xor_pair().expect("is an xor pair");
        prop_assert_eq!((x, y), (a.min(b), a.max(b)));
        // And soundness: a reported pair really is the function.
        prop_assert!(f.is_xor_of(x, y));
    }

    #[test]
    fn xor_pair_detection_rejects_non_xors(bits in any::<u32>()) {
        let f = TruthTable::new(5, u64::from(bits));
        if let Some((x, y)) = f.as_xor_pair() {
            prop_assert!(f.is_xor_of(x, y));
        } else {
            // No pair may satisfy it.
            for x in 1u8..=5 {
                for y in x + 1..=5 {
                    prop_assert!(!f.is_xor_of(x, y));
                }
            }
        }
    }
}

#[test]
fn expression_algebra_sanity() {
    // (a ^ b) ^ b == a, De Morgan, distribution — via truth tables.
    let a = var(1).truth_table(3);
    let b = var(2).truth_table(3);
    let c = var(3).truth_table(3);
    assert_eq!(a.xor(b).xor(b), a);
    assert_eq!(a.and(b).not(), a.not().or(b.not()));
    assert_eq!(a.and(b.or(c)), a.and(b).or(a.and(c)));
}
