//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no network access, so the real `criterion`
//! cannot be fetched. This crate implements the subset of the 0.5 API
//! the workspace's benches use — groups, `bench_function`,
//! `bench_with_input`, `iter`, `iter_batched`, `Throughput`,
//! `BenchmarkId`, `sample_size` — over a simple but honest measurement
//! loop: each benchmark is warmed up, then timed over `sample_size`
//! samples whose iteration counts are auto-calibrated; the median
//! sample is reported, with throughput when configured.
//!
//! Statistical analysis, plotting, and baselines are out of scope;
//! relative comparisons (the only thing the repo's EXPERIMENTS.md
//! records) are meaningful.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target duration of one measurement sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(20);

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// How `iter_batched` amortises setup cost. The shim runs one routine
/// call per setup call regardless of the hint.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// A parameterised benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered
    /// `name/param`.
    pub fn new(name: impl core::fmt::Display, parameter: impl core::fmt::Display) -> Self {
        Self { id: format!("{name}/{parameter}") }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl core::fmt::Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    /// Iterations per sample (calibrated by the harness).
    iters: u64,
    /// Accumulated duration of the last `iter` call.
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, called `iters` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Runs one benchmark closure to a median-of-samples estimate.
fn measure<F: FnMut(&mut Bencher)>(
    label: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Warm-up / calibration: grow the iteration count until one
    // sample takes TARGET_SAMPLE.
    let mut iters = 1u64;
    let per_iter = loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= TARGET_SAMPLE || iters >= 1 << 20 {
            break b.elapsed.as_secs_f64() / iters as f64;
        }
        let grow = if b.elapsed.is_zero() {
            16.0
        } else {
            (TARGET_SAMPLE.as_secs_f64() / b.elapsed.as_secs_f64()).clamp(1.5, 16.0)
        };
        iters = ((iters as f64 * grow).ceil() as u64).max(iters + 1);
    };
    // Long benchmarks: a single calibrated sample is the estimate.
    let mut estimates = vec![per_iter];
    if per_iter < TARGET_SAMPLE.as_secs_f64() {
        for _ in 1..samples {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            estimates.push(b.elapsed.as_secs_f64() / iters as f64);
        }
    }
    estimates.sort_by(f64::total_cmp);
    let median = estimates[estimates.len() / 2];
    let time = format_seconds(median);
    match throughput {
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / median / (1024.0 * 1024.0);
            println!("{label:<50} time: {time:>12}   thrpt: {rate:>10.2} MiB/s");
        }
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / median;
            println!("{label:<50} time: {time:>12}   thrpt: {rate:>10.0} elem/s");
        }
        None => println!("{label:<50} time: {time:>12}"),
    }
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// A group of related benchmarks sharing throughput and sampling
    /// settings.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _c: self, name: name.into(), sample_size: 10, throughput: None }
    }

    /// A standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        measure(id, 10, None, |b| f(b));
        self
    }
}

/// See [`Criterion::benchmark_group`].
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measurement samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the per-iteration throughput annotation.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().id);
        measure(&label, self.sample_size, self.throughput, |b| f(b));
        self
    }

    /// Benchmarks `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().id);
        measure(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (prints nothing; provided for API parity).
    pub fn finish(self) {}
}

/// Declares a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_prints() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.throughput(Throughput::Bytes(1024));
        let mut count = 0u64;
        g.bench_function("spin", |b| {
            b.iter(|| {
                count = count.wrapping_add(1);
                black_box(count)
            })
        });
        g.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &x| {
            b.iter_batched(|| x, |v| v * 2, BatchSize::LargeInput)
        });
        g.finish();
        assert!(count > 0);
    }

    #[test]
    fn id_rendering() {
        assert_eq!(BenchmarkId::new("f2", "10MB").id, "f2/10MB");
        assert_eq!(BenchmarkId::from_parameter(8).id, "8");
    }
}
